#!/usr/bin/env python3
"""Quickstart: run the two-phase tomography method on a two-site network.

This is the smallest end-to-end use of the library:

1. build a Grid'5000-like topology (Grenoble + Toulouse over a Renater-like
   backbone);
2. run a few synchronized, instrumented BitTorrent broadcasts (phase 1);
3. cluster the aggregated fragment metric with the Louvain method (phase 2);
4. compare the recovered logical clusters against the ground truth (NMI).

Run with:  python examples/quickstart.py
"""

from repro.analysis.visualize import ascii_cluster_table, metric_summary
from repro.experiments.datasets import dataset_gt
from repro.tomography.pipeline import TomographyPipeline, default_swarm_config


def main() -> None:
    # A scaled-down version of the paper's G-T dataset: 8 nodes per site.
    ds = dataset_gt(per_site=8)
    print(f"dataset {ds.name}: {ds.num_hosts} hosts on sites "
          f"{sorted(set(ds.site_of.values()))}")

    pipeline = TomographyPipeline(
        ds.topology,
        hosts=ds.hosts,
        ground_truth=ds.ground_truth,
        config=default_swarm_config(600),   # ~10 MB broadcast file
        seed=42,
    )

    result = pipeline.run(iterations=6)

    print("\n--- measurement phase ---")
    print(metric_summary(result.metric))
    print(f"total simulated measurement time: {result.measurement_time:.1f} s")

    print("\n--- analysis phase ---")
    print(f"logical clusters found: {result.num_clusters}")
    print(f"modularity of the clustering: {result.modularity:.3f}")
    print(f"overlapping NMI vs ground truth: {result.nmi:.3f}")
    print(f"NMI after each iteration: {[round(v, 2) for v in result.nmi_per_iteration]}")

    print("\n--- recovered clusters ---")
    print(ascii_cluster_table(result.partition, ground_truth=ds.ground_truth))


if __name__ == "__main__":
    main()
