#!/usr/bin/env python3
"""Finding an intra-site bandwidth bottleneck (the paper's Bordeaux scenario).

The Bordeaux site of Grid'5000 contains three physical compute clusters
(Bordeplage, Bordereau, Borderline); the link between the Dell and Cisco
switches is a single 1 GbE connection, invisible to isolated point-to-point
measurements but a severe bottleneck under all-to-all load.  The paper's
method places Bordeplage in its own logical cluster because of it.

This example reproduces that experiment end-to-end (at reduced scale) and also
shows what the classical approaches see:

* NetPIPE-style isolated probes measure ~890 Mb/s both inside a cluster and
  across the bottleneck — the bottleneck is invisible;
* the BitTorrent fragment metric makes it obvious: edges crossing the
  bottleneck carry far fewer fragments (Fig. 4), and modularity clustering
  recovers the two logical clusters (Fig. 8).

Run with:  python examples/bordeaux_bottleneck.py
"""

from repro.analysis.visualize import ascii_cluster_table, render_dot, render_fig4_bars
from repro.experiments.datasets import dataset_b
from repro.tomography.bottleneck import describe_bottlenecks, find_bottleneck_links
from repro.tomography.metric import local_remote_split
from repro.tomography.netpipe import NetPipeProbe
from repro.tomography.pipeline import TomographyPipeline, default_swarm_config


def main() -> None:
    # Scaled-down Bordeaux: 8 Bordeplage + 6 Bordereau + 2 Borderline nodes.
    ds = dataset_b(bordeplage=8, bordereau=6, borderline=2)
    bordeplage = [h for h in ds.hosts if ds.topology.host(h).cluster == "bordeplage"]
    bordereau = [h for h in ds.hosts if ds.topology.host(h).cluster == "bordereau"]

    # --- what point-to-point probing sees -------------------------------- #
    probe = NetPipeProbe(ds.topology)
    intra = probe.probe(bordeplage[0], bordeplage[1])
    across = probe.probe(bordeplage[0], bordereau[0])
    print("NetPIPE-style isolated probes (the traditional first step):")
    print(f"  within Bordeplage:          {intra.peak_megabits:7.1f} Mb/s")
    print(f"  Bordeplage -> Bordereau:    {across.peak_megabits:7.1f} Mb/s")
    print("  -> the 1 GbE inter-switch bottleneck is invisible to isolated probes\n")

    # --- the paper's method ---------------------------------------------- #
    pipeline = TomographyPipeline(
        ds.topology,
        hosts=ds.hosts,
        ground_truth=ds.ground_truth,
        config=default_swarm_config(600),
        seed=7,
    )
    result = pipeline.run(iterations=10)

    focus = bordeplage[-1]
    local, remote = local_remote_split(result.metric, focus, ds.local_cluster_of(focus))
    print(f"Fragment metric around node {focus} (cf. Fig. 4):")
    print(render_fig4_bars(local, remote))

    print("\nRecovered logical clusters (cf. Fig. 8):")
    print(ascii_cluster_table(result.partition, ground_truth=ds.ground_truth))
    print(f"\nclusters: {result.num_clusters}, NMI vs ground truth: {result.nmi:.2f}")

    # Diagnosis step (paper's conclusion): the clusters point at the physical
    # bottleneck link once topology knowledge is brought back in.
    reports = find_bottleneck_links(ds.topology, result.partition)
    print("\nBottleneck diagnosis (clusters + routing):")
    print(describe_bottlenecks(ds.topology, reports))

    dot = render_dot(result.graph, ground_truth=ds.ground_truth)
    out_path = "bordeaux_measurement.dot"
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(dot)
    print(f"\nGraphviz rendering written to {out_path} (render with: neato -Tpng)")


if __name__ == "__main__":
    main()
