#!/usr/bin/env python3
"""Closing the loop: use the recovered clusters to speed up collectives.

The paper's motivation (§I) is topology-aware collective communication: MPI
broadcasts and all-to-all exchanges on heterogeneous networks run much faster
when the communication schedule respects the logical bandwidth clusters.  Its
future work proposes integrating the tomography output into communication
libraries.  This example does exactly that on the simulated substrate:

1. run the tomography pipeline on the Bordeaux dataset (1 GbE bottleneck);
2. feed the recovered clusters to cluster-aware broadcast / allgather
   schedules;
3. compare their completion times against topology-agnostic schedules.

Run with:  python examples/topology_aware_collectives.py
"""

from repro.applications.collectives import (
    cluster_aware_allgather,
    cluster_aware_broadcast,
    flat_broadcast,
    naive_allgather,
)
from repro.experiments.datasets import dataset_b
from repro.tomography.pipeline import TomographyPipeline, default_swarm_config


def main() -> None:
    ds = dataset_b(bordeplage=8, bordereau=6, borderline=2)
    print(f"dataset {ds.name}: {ds.num_hosts} hosts "
          f"(Bordeplage behind a scaled 1 GbE bottleneck)\n")

    # Phase 1+2: discover the logical clusters with the paper's method.
    pipeline = TomographyPipeline(
        ds.topology,
        hosts=ds.hosts,
        ground_truth=ds.ground_truth,
        config=default_swarm_config(600),
        seed=2012,
    )
    result = pipeline.run(iterations=6, track_convergence=False)
    print(f"tomography: {result.num_clusters} logical clusters recovered "
          f"(NMI vs ground truth {result.nmi:.2f})")
    for i, cluster in enumerate(result.partition.clusters):
        sample = sorted(cluster)[:3]
        print(f"  cluster {i}: {len(cluster)} nodes, e.g. {', '.join(sample)}")

    # Application: schedule collectives with and without that knowledge.
    root = ds.hosts[0]
    message = 50e6
    block = 5e6

    flat_bcast = flat_broadcast(ds.topology, ds.hosts, root, message)
    aware_bcast = cluster_aware_broadcast(
        ds.topology, ds.hosts, root, message, result.partition
    )
    naive_ag = naive_allgather(ds.topology, ds.hosts, block)
    aware_ag = cluster_aware_allgather(ds.topology, ds.hosts, block, result.partition)

    print(f"\nbroadcast of {message / 1e6:.0f} MB from {root}:")
    print(f"  topology-agnostic : {flat_bcast.completion_time:6.2f} s")
    print(f"  cluster-aware     : {aware_bcast.completion_time:6.2f} s "
          f"({flat_bcast.completion_time / aware_bcast.completion_time:.1f}x faster)")

    print(f"\nallgather of {block / 1e6:.0f} MB blocks:")
    print(f"  topology-agnostic : {naive_ag.completion_time:6.2f} s")
    print(f"  cluster-aware     : {aware_ag.completion_time:6.2f} s "
          f"({naive_ag.completion_time / aware_ag.completion_time:.1f}x faster)")

    print("\nThe cluster-aware schedules push bulk data across the bottleneck only")
    print("once per cluster instead of once per destination — the benefit the")
    print("paper's introduction attributes to topology-aware collectives.")


if __name__ == "__main__":
    main()
