#!/usr/bin/env python3
"""NMI convergence across multi-site datasets (the paper's Fig. 13).

Runs the measurement campaign on several of the paper's datasets, clusters the
cumulative aggregate after every iteration, and prints the NMI-vs-iterations
curves as an ASCII chart.  Simpler topologies converge in a couple of
iterations; the four-site setting needs the most; the B-T dataset saturates
below 1 because its ground truth is hierarchical.

Run with:  python examples/multisite_convergence.py
"""

from repro.experiments.runners import run_fig13


def ascii_curve(values, width=40):
    """Render a 0..1 curve as one ASCII line per iteration."""
    lines = []
    for i, value in enumerate(values, start=1):
        bar = "#" * int(round(value * width))
        lines.append(f"  iter {i:2d} |{bar:<{width}}| {value:.2f}")
    return "\n".join(lines)


def main() -> None:
    studies = run_fig13(
        datasets=["B", "B-T", "G-T", "B-G-T", "B-G-T-L"],
        per_site=8,
        iterations=10,
        num_fragments=500,
        seed=5,
    )

    print("NMI between the recovered clustering and the ground truth, as a")
    print("function of the number of aggregated BitTorrent broadcasts:\n")
    for name, study in studies.items():
        reached = study.iterations_to_reach(0.99)
        print(f"dataset {name}  (final NMI {study.final_nmi:.2f}, "
              f"perfect after {reached if reached else '>10'} iterations)")
        print(ascii_curve(study.curve))
        print()

    print("Paper reference (Fig. 13): B, G-T, B-G-T converge to NMI=1 within ~2")
    print("iterations, B-G-T-L needs ~15, and B-T saturates around 0.7 because")
    print("the single-level clustering cannot express its hierarchical ground truth.")


if __name__ == "__main__":
    main()
