#!/usr/bin/env python3
"""Using the library on your own network model, and comparing with baselines.

The tomography pipeline is not tied to the Grid'5000 builders: any
:class:`repro.network.topology.Topology` works.  This example builds a small
"clusters of clusters" network by hand (three racks behind an oversubscribed
core switch), runs the BitTorrent tomography, and compares its measurement
cost and clustering quality against the classical pairwise and triplet
saturation baselines on the same network.

Run with:  python examples/custom_topology.py
"""

from repro.clustering.nmi import overlapping_nmi
from repro.clustering.partition import Partition
from repro.network.topology import GBPS, MBPS, Host, Switch, Topology
from repro.tomography.baselines import (
    PairwiseSaturationTomography,
    TripletSaturationTomography,
)
from repro.tomography.pipeline import TomographyPipeline, default_swarm_config


def build_three_rack_network(nodes_per_rack: int = 5) -> Topology:
    """Three racks of GigE nodes behind an oversubscribed core switch."""
    topo = Topology(name="three-racks")
    core = topo.add_switch(Switch(name="core"))
    for rack in range(3):
        rack_switch = topo.add_switch(Switch(name=f"rack{rack}.switch"))
        # The rack uplink is the shared resource: 2 Gb/s for 5 GigE nodes.
        topo.add_link(rack_switch.name, core.name, capacity=2 * GBPS, latency=1e-4)
        for i in range(nodes_per_rack):
            host = topo.add_host(
                Host(name=f"rack{rack}.node{i}", site="dc", cluster=f"rack{rack}")
            )
            topo.add_link(host.name, rack_switch.name, capacity=900 * MBPS, latency=5e-5)
    topo.validate_connected()
    return topo


def main() -> None:
    topology = build_three_rack_network()
    ground_truth = Partition(
        [
            {h.name for h in topology.hosts if h.cluster == f"rack{r}"}
            for r in range(3)
        ]
    )

    # --- BitTorrent tomography ------------------------------------------- #
    pipeline = TomographyPipeline(
        topology,
        ground_truth=ground_truth,
        config=default_swarm_config(500),
        seed=11,
    )
    bt_result = pipeline.run(iterations=8)
    print("BitTorrent tomography:")
    print(f"  clusters found:        {bt_result.num_clusters}")
    print(f"  NMI vs ground truth:   {bt_result.nmi:.2f}")
    print(f"  measurement time:      {bt_result.measurement_time:.1f} simulated s")

    # --- classical baselines --------------------------------------------- #
    pairwise = PairwiseSaturationTomography(topology, probe_size=32e6, seed=1).run()
    triplet = TripletSaturationTomography(
        topology, hosts=topology.host_names[:9], probe_size=32e6, seed=1
    ).run()

    print("\nPairwise saturation baseline (O(N^2) probes):")
    print(f"  probes:                {pairwise.probes}")
    print(f"  measurement time:      {pairwise.measurement_time:.1f} simulated s")
    print(f"  NMI vs ground truth:   {overlapping_nmi(pairwise.partition, ground_truth):.2f}")

    truth_9 = ground_truth.restrict(topology.host_names[:9])
    print("\nTriplet saturation baseline (O(N^3) probes, first 9 hosts only):")
    print(f"  probes:                {triplet.probes}")
    print(f"  measurement time:      {triplet.measurement_time:.1f} simulated s")
    print(f"  NMI vs ground truth:   {overlapping_nmi(triplet.partition, truth_9):.2f}")
    print(f"  interfering pair-pairs detected: {len(triplet.interference)}")

    print("\nThe BitTorrent campaign measures every edge of the network in a")
    print("handful of broadcasts, while the baselines' cost grows polynomially")
    print("with the node count (the paper's efficiency argument, Section II-B).")


if __name__ == "__main__":
    main()
