"""Command-line interface: ``python -m repro <command> [options]``.

The CLI exposes the experiment runners so that every figure of the paper can
be regenerated without writing Python:

* ``python -m repro list-datasets`` — the available named datasets;
* ``python -m repro run-dataset B-G-T --per-site 8 --iterations 10`` — run the
  full two-phase method on one dataset and print the recovered clusters;
* ``python -m repro fig4 | fig5 | fig13`` — the corresponding figure runners;
* ``python -m repro efficiency`` — broadcast-efficiency and baseline-cost rows;
* ``python -m repro netpipe`` — the NetPIPE reference probes.

All commands print human-readable text to stdout and return a process exit
code of 0 on success, so they compose with shell scripts.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.visualize import ascii_cluster_table, render_fig4_bars
from repro.experiments.datasets import DATASETS, dataset, dataset_b
from repro.experiments.runners import (
    run_baseline_cost,
    run_broadcast_efficiency,
    run_dataset_clustering,
    run_fig4,
    run_fig5,
    run_fig13,
    run_netpipe_reference,
)


def _build_dataset(name: str, per_site: int):
    """Instantiate a named dataset at the requested per-site scale."""
    if name == "2x2":
        return dataset("2x2")
    if name == "B":
        return dataset_b(
            bordeplage=per_site,
            bordereau=max(per_site - per_site // 4, 1),
            borderline=max(per_site // 4, 1),
        )
    return dataset(name, per_site=per_site)


def _cmd_list_datasets(_args: argparse.Namespace) -> int:
    print("available datasets (named as in the paper's Fig. 13):")
    for name in DATASETS:
        ds = _build_dataset(name, 4)
        print(
            f"  {name:8s} {ds.expectation.description} "
            f"(expected clusters: {ds.expectation.expected_clusters})"
        )
    return 0


def _cmd_run_dataset(args: argparse.Namespace) -> int:
    ds = _build_dataset(args.dataset, args.per_site)
    summary = run_dataset_clustering(
        ds,
        iterations=args.iterations,
        num_fragments=args.fragments,
        seed=args.seed,
        track_convergence=True,
    )
    result = summary["result"]
    print(f"dataset {ds.name}: {summary['hosts']} hosts, {args.iterations} iterations")
    print(f"clusters found: {summary['found_clusters']} "
          f"(paper: {summary['expected_clusters']})")
    print(f"overlapping NMI vs ground truth: {summary['measured_nmi']:.3f} "
          f"(paper: {summary['paper_nmi']})")
    print(f"modularity: {summary['modularity']:.3f}")
    print(f"NMI per iteration: {[round(v, 2) for v in summary['nmi_per_iteration']]}")
    print(f"simulated measurement time: {summary['measurement_time_s']:.1f} s")
    print()
    print(ascii_cluster_table(result.partition, ground_truth=ds.ground_truth))
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    outcome = run_fig4(
        bordeplage=args.per_site,
        bordereau=max(args.per_site - args.per_site // 4, 1),
        borderline=max(args.per_site // 4, 1),
        iterations=args.iterations,
        num_fragments=args.fragments,
        seed=args.seed,
    )
    print(f"focus host: {outcome['focus_host']} ({args.iterations} iterations)")
    print(render_fig4_bars(outcome["local_edges"], outcome["remote_edges"]))
    print(f"paper totals: local 22533 / remote 6337")
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    outcome = run_fig5(
        cluster_nodes=args.per_site * 2,
        iterations=args.iterations,
        num_fragments=args.fragments,
        seed=args.seed,
    )
    print(f"edge {outcome['edge'][0]} -- {outcome['edge'][1]} over "
          f"{outcome['iterations']} independent runs:")
    print(f"  zero-fragment runs: {outcome['zero_runs']}")
    print(f"  nonzero range: {outcome['nonzero_min']:.0f}..{outcome['nonzero_max']:.0f}")
    print(f"  mean {outcome['mean']:.1f}, std {outcome['std']:.1f} "
          f"(coefficient of variation {outcome['coefficient_of_variation']:.2f})")
    print("paper: 23/36 runs zero, nonzero range 3..6304")
    return 0


def _cmd_fig13(args: argparse.Namespace) -> int:
    studies = run_fig13(
        per_site=args.per_site,
        iterations=args.iterations,
        num_fragments=args.fragments,
        seed=args.seed,
    )
    for name, study in studies.items():
        reached = study.iterations_to_reach(0.99)
        print(f"{name:8s} final NMI {study.final_nmi:.2f} "
              f"(>=0.99 after {reached if reached else '-'} iterations) "
              f"curve {[round(v, 2) for v in study.curve]}")
    return 0


def _cmd_efficiency(args: argparse.Namespace) -> int:
    broadcast = run_broadcast_efficiency(num_fragments=args.fragments, seed=args.seed)
    print("broadcast duration by swarm size (s):")
    for nodes, duration in sorted(broadcast["durations_by_nodes"].items()):
        print(f"  {nodes:4d} nodes  {duration:.2f}")
    print("broadcast duration by file size (fragments -> s):")
    for fragments, duration in sorted(broadcast["durations_by_fragments"].items()):
        print(f"  {fragments:5d} fragments  {duration:.2f}")
    cost = run_baseline_cost(seed=args.seed)
    print("measurement cost comparison (simulated seconds):")
    for row in cost["rows"]:
        print(
            f"  N={row['nodes']:3d}  BitTorrent {row['bittorrent_time_s']:7.1f}   "
            f"pairwise {row['pairwise_time_s']:7.1f} ({row['pairwise_probes']} probes)   "
            f"triplet {row['triplet_time_s']:8.1f} ({row['triplet_probes']} probes)"
        )
    return 0


def _cmd_netpipe(_args: argparse.Namespace) -> int:
    outcome = run_netpipe_reference()
    print(f"intra-cluster peak bandwidth: {outcome['intra_cluster_mbps']:.0f} Mb/s "
          f"(paper: {outcome['paper_intra_cluster_mbps']:.0f})")
    print(f"inter-site peak bandwidth:    {outcome['inter_site_mbps']:.0f} Mb/s "
          f"(paper: {outcome['paper_inter_site_mbps']:.0f})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of BitTorrent-based bandwidth tomography (SC 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scale_args(p: argparse.ArgumentParser, iterations: int = 8) -> None:
        p.add_argument("--per-site", type=int, default=8,
                       help="nodes per site (paper: 32)")
        p.add_argument("--iterations", type=int, default=iterations,
                       help="measurement iterations (paper: 30-36)")
        p.add_argument("--fragments", type=int, default=600,
                       help="fragments per broadcast (paper: 15259)")
        p.add_argument("--seed", type=int, default=2012, help="experiment seed")

    sub.add_parser("list-datasets", help="list the paper's named datasets")

    run_parser = sub.add_parser("run-dataset", help="run the tomography pipeline on a dataset")
    run_parser.add_argument("dataset", choices=sorted(DATASETS), help="dataset name")
    add_scale_args(run_parser)

    fig4 = sub.add_parser("fig4", help="per-edge metric of a fixed node (Fig. 4)")
    add_scale_args(fig4, iterations=12)

    fig5 = sub.add_parser("fig5", help="single-edge variance across runs (Fig. 5)")
    add_scale_args(fig5, iterations=24)

    fig13 = sub.add_parser("fig13", help="NMI convergence for all datasets (Fig. 13)")
    add_scale_args(fig13, iterations=10)

    efficiency = sub.add_parser("efficiency", help="broadcast efficiency and baseline cost (Sec. II-B)")
    efficiency.add_argument("--fragments", type=int, default=400)
    efficiency.add_argument("--seed", type=int, default=2012)

    sub.add_parser("netpipe", help="NetPIPE reference bandwidths")

    return parser


_COMMANDS = {
    "list-datasets": _cmd_list_datasets,
    "run-dataset": _cmd_run_dataset,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "fig13": _cmd_fig13,
    "efficiency": _cmd_efficiency,
    "netpipe": _cmd_netpipe,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
