"""Command-line interface: ``python -m repro <command> [options]``.

The CLI is a thin shell over the scenario registry
(:mod:`repro.scenarios`): every experiment — the paper's datasets and
figures as well as the generated families beyond the paper — is a
registered scenario, reachable through three generic subcommands:

* ``python -m repro list`` — the registered scenarios, grouped by family;
* ``python -m repro run B-G-T --per-site 8 --iterations 10`` — run one
  scenario (``--executor process`` fans the campaign out over worker
  processes, bit-for-bit identical to serial; ``--workload cross-heavy``
  embeds every measured broadcast in a multi-tenant interference workload,
  see docs/workloads.md);
* ``python -m repro sweep HETERO-UPLINK --param squeeze --values 1.0,0.5,0.2``
  — run a scenario across a parameter grid and tabulate the outcomes.

Telemetry (docs/observability.md) surfaces through three more entries:
``run``/``sweep`` accept ``--trace PATH`` (structured JSONL tracing of the
whole run, ``--trace-detail full`` for per-step records), ``python -m repro
trace export|summary`` consumes such files (``export --chrome`` emits a
Chrome/Perfetto-loadable trace), and ``python -m repro metrics`` prints the
metric catalogue every run records into.

Every subcommand accepts ``--json <path>`` to write a machine-readable
record of what it printed.  Commands exit 0 on success, 2 on unknown
scenarios/parameters, so they compose with shell scripts.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.bittorrent.swarm import STEPPING_MODES
from repro.scenarios import (
    EXECUTOR_NAMES,
    all_scenarios,
    executor_from_name,
    families,
    get_scenario,
    jsonable_summary,
)
from repro.faults import FAULT_NAMES
from repro.observability import (
    METRIC_CATALOGUE,
    METRICS,
    TRACE_DETAILS,
    TraceConfigError,
    configure_tracing,
)
from repro.scenarios.spec import CAMPAIGN_PARAMS
from repro.workloads import WORKLOAD_NAMES

#: Keys preferred for the one-line-per-run sweep table (first ones present win).
_SWEEP_COLUMNS = (
    "found_clusters",
    "expected_clusters",
    "measured_nmi",
    "modularity",
    "measurement_time_s",
    "time_to_detect_s",
    "time_to_localize_s",
    "node_scaling_ratio",
    "size_scaling_ratio",
    "zero_runs",
)


def _parse_value(raw: str):
    """Parse a ``--set``/``--values`` token: int, float, bool, list or str."""
    text = raw.strip()
    if "," in text:
        return tuple(_parse_value(part) for part in text.split(",") if part.strip())
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_overrides(pairs: Optional[Sequence[str]]) -> Dict[str, object]:
    overrides: Dict[str, object] = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise ValueError(f"--set expects key=value, got {pair!r}")
        key, _, raw = pair.partition("=")
        overrides[key.strip().replace("-", "_")] = _parse_value(raw)
    return overrides


def _make_executor(args: argparse.Namespace):
    """Executor instance for ``--executor`` (``None`` → serial inline path)."""
    if args.executor in (None, "serial"):
        return None
    return executor_from_name(args.executor, workers=args.workers)


def _write_json(path: Optional[str], payload: Dict[str, object]) -> None:
    if not path:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"wrote {path}")


def _setup_tracing(args: argparse.Namespace) -> Optional[int]:
    """Configure ``--trace`` before a run; ``2`` on a bad destination.

    Failing here — before the first iteration — is the fail-fast contract:
    an unwritable path must not surface hours into a campaign.
    """
    if not getattr(args, "trace", None):
        return None
    try:
        configure_tracing(args.trace, detail=args.trace_detail)
    except TraceConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return None


def _validate_detection_args(args: argparse.Namespace, spec) -> Optional[str]:
    """Fail-fast checks on the detection/quorum knobs, before any run.

    A bad threshold or an unsatisfiable quorum must surface immediately,
    not after the campaign burned its measurement budget (or, worse,
    silently detect nothing because the factor was below 1).
    """
    if args.detect_factor is not None and args.detect_factor <= 1.0:
        return (
            f"--detect-factor must exceed 1.0 (a duration-spike *ratio*), "
            f"got {args.detect_factor:g}"
        )
    if args.quorum is not None:
        if args.quorum < 1:
            return f"--quorum must be at least 1, got {args.quorum}"
        iterations = (
            args.iterations if args.iterations is not None else spec.iterations
        )
        if args.quorum > iterations:
            return (
                f"--quorum ({args.quorum}) cannot exceed the campaign's "
                f"iterations ({iterations}): the quorum could never be met"
            )
    return None


def _campaign_kwargs(args: argparse.Namespace) -> Dict[str, object]:
    kwargs: Dict[str, object] = {}
    if args.iterations is not None:
        kwargs["iterations"] = args.iterations
    if args.fragments is not None:
        kwargs["num_fragments"] = args.fragments
    if args.seed is not None:
        kwargs["seed"] = args.seed
    return kwargs


# ---------------------------------------------------------------------- #
# subcommands
# ---------------------------------------------------------------------- #
def _cmd_list(args: argparse.Namespace) -> int:
    if args.family is not None and args.family not in families():
        print(
            f"unknown family {args.family!r}; available: {', '.join(families())}",
            file=sys.stderr,
        )
        return 2
    specs = all_scenarios(family=args.family)
    listing = []
    current_family = None
    for spec in specs:
        if spec.family != current_family:
            current_family = spec.family
            print(f"family {current_family}:")
        print(f"  {spec.describe()}")
        listing.append(
            {
                "name": spec.name,
                "family": spec.family,
                "kind": spec.kind,
                "description": spec.description,
                "tags": list(spec.tags),
                "iterations": spec.iterations,
                "num_fragments": spec.num_fragments,
                "seed": spec.seed,
            }
        )
    _write_json(args.json, {"command": "list", "scenarios": listing})
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = get_scenario(args.scenario)
    except KeyError as exc:
        print(str(exc.args[0]), file=sys.stderr)
        return 2
    try:
        overrides = _parse_overrides(args.set)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.per_site is not None:
        overrides.setdefault("per_site", args.per_site)
    unknown = spec.unknown_overrides(overrides)
    if unknown:
        print(
            f"bad override for scenario {spec.name!r}: "
            f"unknown tunables {', '.join(unknown)}",
            file=sys.stderr,
        )
        return 2
    problem = _validate_detection_args(args, spec)
    if problem:
        print(problem, file=sys.stderr)
        return 2
    status = _setup_tracing(args)
    if status is not None:
        return status
    before = METRICS.snapshot()
    try:
        summary = spec.run(
            executor=_make_executor(args),
            stepping=args.stepping,
            workload=args.workload,
            faults=args.faults,
            quorum=args.quorum,
            detect_factor=args.detect_factor,
            **_campaign_kwargs(args),
            **overrides,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    metrics = METRICS.snapshot().delta_since(before)
    print(spec.format(summary))
    _write_json(
        args.json,
        {
            "command": "run",
            **jsonable_summary(summary),
            "metrics": metrics.jsonable(),
        },
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        spec = get_scenario(args.scenario)
    except KeyError as exc:
        print(str(exc.args[0]), file=sys.stderr)
        return 2
    values = _parse_value(args.values)
    if not isinstance(values, tuple):
        values = (values,)
    try:
        base_overrides = _parse_overrides(args.set)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.per_site is not None:
        base_overrides.setdefault("per_site", args.per_site)
    param = args.param.replace("-", "_")
    param_is_campaign = param in CAMPAIGN_PARAMS
    probe = dict(base_overrides)
    if not param_is_campaign:
        probe[param] = values[0]
    unknown = spec.unknown_overrides(probe)
    if unknown:
        print(
            f"bad sweep parameter(s) for scenario {spec.name!r}: "
            f"unknown tunables {', '.join(unknown)}",
            file=sys.stderr,
        )
        return 2
    problem = _validate_detection_args(args, spec)
    if problem:
        print(problem, file=sys.stderr)
        return 2
    status = _setup_tracing(args)
    if status is not None:
        return status
    executor = _make_executor(args)
    rows: List[Dict[str, object]] = []
    print(f"sweep {spec.name} over {param} = {list(values)}")
    for value in values:
        overrides = dict(base_overrides)
        kwargs = _campaign_kwargs(args)
        if param_is_campaign:
            kwargs[param] = value
        else:
            overrides[param] = value
        before = METRICS.snapshot()
        try:
            summary = spec.run(executor=executor, stepping=args.stepping,
                               workload=args.workload, faults=args.faults,
                               quorum=args.quorum,
                               detect_factor=args.detect_factor,
                               **kwargs, **overrides)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        row = jsonable_summary(summary)
        row["metrics"] = METRICS.snapshot().delta_since(before).jsonable()
        row[param] = value if not isinstance(value, tuple) else list(value)
        rows.append(row)
        cells = [f"{param}={value}"]
        for key in _SWEEP_COLUMNS:
            if key in row and isinstance(row[key], (int, float)):
                cells.append(f"{key}={row[key]:.4g}")
        print("  " + "  ".join(cells))
    _write_json(
        args.json,
        {
            "command": "sweep",
            "scenario": spec.name,
            "param": param,
            "values": [list(v) if isinstance(v, tuple) else v for v in values],
            "rows": rows,
        },
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.observability import export_chrome, load_records, summarize, trace_meta

    try:
        if args.action == "export":
            if not args.chrome:
                print("trace export currently requires --chrome", file=sys.stderr)
                return 2
            out = args.output or (args.trace_file + ".chrome.json")
            count = export_chrome(args.trace_file, out)
            print(f"wrote {out} ({count} trace events); load it in "
                  f"chrome://tracing or https://ui.perfetto.dev")
            return 0
        # summary
        records = load_records(args.trace_file)
        meta = trace_meta(records)
        summary = summarize(records)
        if meta is not None:
            print(f"trace {args.trace_file}: schema {meta.get('schema')}, "
                  f"detail {meta.get('detail')}, pid {meta.get('pid')}")
        if not summary:
            print("no span/event records")
        else:
            width = max(len(name) for name in summary) + 2
            for name in sorted(summary):
                entry = summary[name]
                line = (f"  {name:<{width}} {entry['type']:<6} "
                        f"count={entry['count']}")
                if "wall_s" in entry:
                    line += f"  wall={entry['wall_s']:.4f}s"
                print(line)
        _write_json(
            args.json,
            {"command": "trace-summary", "file": args.trace_file,
             "meta": meta, "summary": summary},
        )
        return 0
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2


def _cmd_faults(args: argparse.Namespace) -> int:
    """Enumerate the fault-plan presets ``--faults`` accepts."""
    from repro.faults import FAULT_PRESETS

    width = max(len(name) for name in FAULT_PRESETS) + 2
    listing = []
    for name in sorted(FAULT_PRESETS):
        plan = FAULT_PRESETS[name]
        kinds = ", ".join(
            f"{kind} x{count}"
            for kind, count in sorted(plan.counts_by_kind().items())
        ) or "no injectors"
        print(f"  {name:<{width}} intensity={plan.intensity:g}  {kinds}")
        print(f"  {'':<{width}} {plan.description or '(empty plan)'}")
        listing.append(
            {
                "name": name,
                "description": plan.description,
                "injectors": plan.fault_count,
                "kinds": plan.counts_by_kind(),
                "intensity": plan.intensity,
            }
        )
    _write_json(args.json, {"command": "faults-list", "presets": listing})
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Print the metric catalogue (the names every run records under)."""
    width = max(len(name) for name in METRIC_CATALOGUE) + 2
    listing = []
    for name in sorted(METRIC_CATALOGUE):
        kind, description = METRIC_CATALOGUE[name]
        print(f"  {name:<{width}} {kind:<10} {description}")
        listing.append({"name": name, "kind": kind, "description": description})
    _write_json(args.json, {"command": "metrics", "catalogue": listing})
    return 0


# ---------------------------------------------------------------------- #
# parser
# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of BitTorrent-based bandwidth tomography (SC 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--iterations", type=int, default=None,
                       help="measurement iterations (default: scenario's)")
        p.add_argument("--fragments", type=int, default=None,
                       help="fragments per broadcast (default: scenario's)")
        p.add_argument("--seed", type=int, default=None,
                       help="experiment seed (default: scenario's)")
        p.add_argument("--per-site", type=int, default=None,
                       help="nodes per site, for scenarios that scale by site")
        p.add_argument("--set", action="append", metavar="KEY=VALUE",
                       help="extra scenario tunable (repeatable); "
                            "comma-separated values parse as lists")
        p.add_argument("--executor", choices=EXECUTOR_NAMES, default="serial",
                       help="campaign backend (process = fan out over cores, "
                            "batched = run all seeds lock-step as one array "
                            "program; records are bit-identical to serial)")
        p.add_argument("--stepping", choices=STEPPING_MODES, default=None,
                       help="swarm control-loop policy (event = jump between "
                            "state changes; results are bit-identical to "
                            "fixed, see docs/simulation.md)")
        p.add_argument("--workload", choices=WORKLOAD_NAMES, default=None,
                       help="run the measurement campaign inside a multi-"
                            "tenant interference workload (concurrent "
                            "broadcasts, cross traffic, churn, capacity "
                            "drift on one shared clock; docs/workloads.md)")
        p.add_argument("--faults", choices=FAULT_NAMES, default=None,
                       help="inject a deterministic fault plan into every "
                            "measurement iteration (link failures, route "
                            "flaps, tracker outages, tenant cycling; "
                            "docs/faults.md)")
        p.add_argument("--quorum", type=int, default=None,
                       help="proceed with >=k surviving iterations instead "
                            "of aborting on the first failed one (the "
                            "summary is then flagged degraded)")
        p.add_argument("--detect-factor", type=float, default=None,
                       help="duration-spike ratio over the rolling baseline "
                            "that counts as a detected failure (fault-"
                            "injection scenarios; must exceed 1.0)")
        p.add_argument("--workers", type=int, default=None,
                       help="worker processes for --executor process")
        p.add_argument("--trace", metavar="PATH", default=None,
                       help="write a structured telemetry trace (JSONL) of "
                            "the run to PATH; under --executor process "
                            "workers write per-worker sibling files "
                            "(docs/observability.md)")
        p.add_argument("--trace-detail", choices=TRACE_DETAILS,
                       default="summary",
                       help="trace verbosity: summary = per-broadcast/phase "
                            "records, full = per-step jumps, conversion "
                            "passes, dispatches (bigger files)")
        p.add_argument("--json", metavar="PATH", default=None,
                       help="also write a machine-readable record to PATH")

    list_parser = sub.add_parser("list", help="list the registered scenarios")
    list_parser.add_argument("--family", default=None,
                             help="only one scenario family")
    list_parser.add_argument("--json", metavar="PATH", default=None,
                             help="also write a machine-readable record to PATH")

    run_parser = sub.add_parser("run", help="run one registered scenario")
    run_parser.add_argument("scenario", help="scenario name (see `repro list`)")
    add_common(run_parser)

    sweep_parser = sub.add_parser(
        "sweep", help="run a scenario across a parameter grid"
    )
    sweep_parser.add_argument("scenario", help="scenario name (see `repro list`)")
    sweep_parser.add_argument("--param", required=True,
                              help="name of the parameter to sweep")
    sweep_parser.add_argument("--values", required=True,
                              help="comma-separated parameter values")
    add_common(sweep_parser)

    trace_parser = sub.add_parser(
        "trace", help="consume a telemetry trace written with --trace"
    )
    trace_parser.add_argument("action", choices=("export", "summary"),
                              help="export = convert to another format, "
                                   "summary = per-record-name rollup")
    trace_parser.add_argument("trace_file", help="trace JSONL file to read")
    trace_parser.add_argument("--chrome", action="store_true",
                              help="export to the Chrome trace-event format "
                                   "(chrome://tracing / Perfetto)")
    trace_parser.add_argument("-o", "--output", default=None,
                              help="export destination (default: "
                                   "<trace>.chrome.json)")
    trace_parser.add_argument("--json", metavar="PATH", default=None,
                              help="also write the summary to PATH")

    metrics_parser = sub.add_parser(
        "metrics", help="print the metric catalogue runs record into"
    )
    metrics_parser.add_argument("--json", metavar="PATH", default=None,
                                help="also write the catalogue to PATH")

    faults_parser = sub.add_parser(
        "faults", help="inspect the fault-plan presets --faults accepts"
    )
    faults_parser.add_argument("action", choices=("list",),
                               help="list = enumerate the registered presets")
    faults_parser.add_argument("--json", metavar="PATH", default=None,
                               help="also write the listing to PATH")

    return parser


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "faults": _cmd_faults,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    try:
        return handler(args)
    finally:
        # A --trace sink must be complete on exit whatever path the command
        # took; close() is a no-op when tracing was never enabled.
        from repro.observability import TRACER

        TRACER.close()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
