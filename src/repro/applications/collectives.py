"""Topology-aware collective communication using the recovered clusters.

The paper's motivation (§I) is that MPI-style collectives on heterogeneous
networks profit substantially from knowing the logical bandwidth clusters, and
its future work (§V) proposes feeding the tomography output into communication
libraries.  This module closes that loop on the simulated substrate with two
collectives:

* **broadcast** — a root distributes an ``m``-byte message to every host;
* **allgather** — every host contributes an ``m``-byte block and must end up
  with all blocks.

For each collective a *topology-agnostic* schedule (every transfer goes
directly between the endpoints) is compared with a *cluster-aware* schedule
that routes data through one representative per logical cluster, so bulk data
crosses each inter-cluster bottleneck once instead of once per destination.
Completion times come from the same max-min fair fluid model used by the
measurement phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.clustering.partition import Partition
from repro.network.fluid import FluidNetwork
from repro.network.routing import RoutingTable
from repro.network.topology import Topology


@dataclass(frozen=True)
class CollectiveResult:
    """Outcome of one collective schedule.

    Attributes
    ----------
    operation:
        ``"broadcast"`` or ``"allgather"``.
    schedule:
        ``"flat"`` (topology-agnostic) or ``"cluster-aware"``.
    completion_time:
        Simulated seconds until the last host holds its full payload.
    phases:
        Per-phase makespans (a flat schedule has a single phase).
    total_bytes:
        Total bytes injected into the network by the schedule.
    """

    operation: str
    schedule: str
    completion_time: float
    phases: Tuple[float, ...]
    total_bytes: float


def _run_phase(
    topology: Topology,
    routing: RoutingTable,
    transfers: Sequence[Tuple[str, str, float]],
) -> Tuple[float, float]:
    """Run one phase of concurrent transfers; return (makespan, bytes)."""
    if not transfers:
        return 0.0, 0.0
    network = FluidNetwork(topology, routing)
    total = 0.0
    for src, dst, size in transfers:
        if src == dst or size <= 0:
            continue
        network.start_transfer(src, dst, float(size))
        total += float(size)
    network.run_until_complete()
    return network.now, total


def _representatives(partition: Partition, hosts: Sequence[str]) -> Dict[int, str]:
    """Pick one representative host per cluster (the lexicographically first)."""
    reps: Dict[int, str] = {}
    for host in sorted(hosts):
        idx = partition.cluster_index(host)
        reps.setdefault(idx, host)
    return reps


def _validate(topology: Topology, hosts: Sequence[str], message_size: float) -> List[str]:
    hosts = list(hosts)
    if len(hosts) < 2:
        raise ValueError("collectives need at least two hosts")
    unknown = [h for h in hosts if not topology.is_host(h)]
    if unknown:
        raise ValueError(f"unknown hosts: {unknown}")
    if message_size <= 0:
        raise ValueError("message_size must be positive")
    return hosts


# ---------------------------------------------------------------------- #
# broadcast
# ---------------------------------------------------------------------- #
def flat_broadcast(
    topology: Topology,
    hosts: Sequence[str],
    root: str,
    message_size: float,
    routing: Optional[RoutingTable] = None,
) -> CollectiveResult:
    """Topology-agnostic broadcast: the root sends to every host directly."""
    hosts = _validate(topology, hosts, message_size)
    if root not in hosts:
        raise ValueError(f"root {root!r} is not among the hosts")
    routing = routing or RoutingTable(topology)
    transfers = [(root, host, message_size) for host in hosts if host != root]
    makespan, total = _run_phase(topology, routing, transfers)
    return CollectiveResult(
        operation="broadcast",
        schedule="flat",
        completion_time=makespan,
        phases=(makespan,),
        total_bytes=total,
    )


def cluster_aware_broadcast(
    topology: Topology,
    hosts: Sequence[str],
    root: str,
    message_size: float,
    partition: Partition,
    routing: Optional[RoutingTable] = None,
) -> CollectiveResult:
    """Cluster-aware broadcast: inter-cluster once, then intra-cluster fan-out.

    Phase 1: the root sends the message to one representative per *other*
    logical cluster.  Phase 2: within every cluster, the local holder (root or
    representative) sends to the remaining members.  Bulk data therefore
    crosses each inter-cluster bottleneck exactly once.
    """
    hosts = _validate(topology, hosts, message_size)
    if root not in hosts:
        raise ValueError(f"root {root!r} is not among the hosts")
    missing = [h for h in hosts if h not in partition]
    if missing:
        raise ValueError(f"partition does not cover hosts: {missing[:3]}")
    routing = routing or RoutingTable(topology)

    reps = _representatives(partition, hosts)
    root_cluster = partition.cluster_index(root)
    reps[root_cluster] = root

    phase1 = [
        (root, rep, message_size)
        for cluster, rep in reps.items()
        if cluster != root_cluster
    ]
    makespan1, bytes1 = _run_phase(topology, routing, phase1)

    phase2 = []
    for host in hosts:
        cluster = partition.cluster_index(host)
        holder = reps[cluster]
        if host != holder:
            phase2.append((holder, host, message_size))
    makespan2, bytes2 = _run_phase(topology, routing, phase2)

    return CollectiveResult(
        operation="broadcast",
        schedule="cluster-aware",
        completion_time=makespan1 + makespan2,
        phases=(makespan1, makespan2),
        total_bytes=bytes1 + bytes2,
    )


# ---------------------------------------------------------------------- #
# allgather
# ---------------------------------------------------------------------- #
def naive_allgather(
    topology: Topology,
    hosts: Sequence[str],
    message_size: float,
    routing: Optional[RoutingTable] = None,
) -> CollectiveResult:
    """Topology-agnostic allgather: every host sends its block to every other."""
    hosts = _validate(topology, hosts, message_size)
    routing = routing or RoutingTable(topology)
    transfers = [
        (src, dst, message_size) for src in hosts for dst in hosts if src != dst
    ]
    makespan, total = _run_phase(topology, routing, transfers)
    return CollectiveResult(
        operation="allgather",
        schedule="flat",
        completion_time=makespan,
        phases=(makespan,),
        total_bytes=total,
    )


def cluster_aware_allgather(
    topology: Topology,
    hosts: Sequence[str],
    message_size: float,
    partition: Partition,
    routing: Optional[RoutingTable] = None,
) -> CollectiveResult:
    """Cluster-aware allgather via per-cluster representatives.

    Phase 1 (intra-cluster gather): members send their block to their cluster
    representative.  Phase 2 (inter-cluster exchange): representatives exchange
    their clusters' aggregated blocks.  Phase 3 (intra-cluster broadcast): each
    representative distributes the blocks of all *other* clusters to its
    members.  Only aggregated cluster blocks cross the inter-cluster links, so
    the data volume over a bottleneck drops from ``|A|·|B|`` blocks to
    ``|A| + |B|`` blocks.
    """
    hosts = _validate(topology, hosts, message_size)
    missing = [h for h in hosts if h not in partition]
    if missing:
        raise ValueError(f"partition does not cover hosts: {missing[:3]}")
    routing = routing or RoutingTable(topology)

    reps = _representatives(partition, hosts)
    members: Dict[int, List[str]] = {}
    for host in hosts:
        members.setdefault(partition.cluster_index(host), []).append(host)

    # Phase 1: gather each member's block at the representative.
    phase1 = []
    for cluster, rep in reps.items():
        for host in members[cluster]:
            if host != rep:
                phase1.append((host, rep, message_size))
    makespan1, bytes1 = _run_phase(topology, routing, phase1)

    # Phase 2: representatives exchange aggregated cluster blocks.
    phase2 = []
    for cluster_a, rep_a in reps.items():
        for cluster_b, rep_b in reps.items():
            if cluster_a == cluster_b:
                continue
            phase2.append((rep_a, rep_b, message_size * len(members[cluster_a])))
    makespan2, bytes2 = _run_phase(topology, routing, phase2)

    # Phase 3: representatives distribute the remote blocks inside the cluster.
    phase3 = []
    for cluster, rep in reps.items():
        remote_blocks = sum(len(m) for c, m in members.items() if c != cluster)
        for host in members[cluster]:
            if host != rep:
                phase3.append((rep, host, message_size * remote_blocks))
    makespan3, bytes3 = _run_phase(topology, routing, phase3)

    return CollectiveResult(
        operation="allgather",
        schedule="cluster-aware",
        completion_time=makespan1 + makespan2 + makespan3,
        phases=(makespan1, makespan2, makespan3),
        total_bytes=bytes1 + bytes2 + bytes3,
    )
