"""Applications of the tomography output.

The paper motivates bandwidth tomography by topology-aware collective
communication (MPI-style broadcasts and all-to-all exchanges on grids); its
future-work section proposes integrating the recovered clustering into
communication libraries.  This package provides that integration on the
simulated substrate: cluster-aware collective schedules that use the logical
clusters found by the tomography pipeline, and their topology-agnostic
counterparts for comparison.
"""

from repro.applications.collectives import (
    CollectiveResult,
    cluster_aware_allgather,
    cluster_aware_broadcast,
    flat_broadcast,
    naive_allgather,
)

__all__ = [
    "CollectiveResult",
    "flat_broadcast",
    "cluster_aware_broadcast",
    "naive_allgather",
    "cluster_aware_allgather",
]
