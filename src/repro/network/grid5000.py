"""Synthetic Grid'5000 topologies modelled on the paper's description.

The paper evaluates on the Grid'5000 testbed: nine French sites connected by
the Renater optical backbone (10 Gb/s), each site containing one or more
Ethernet compute clusters.  The experiments use four sites — Bordeaux,
Toulouse, Grenoble and Lyon — and the Bordeaux site is the interesting one: it
contains three physical clusters (Bordeplage, Bordereau, Borderline) where the
link between the Dell and Cisco switches is a single 1 GbE bottleneck, so
Bordeplage forms its own *logical* cluster under all-to-all load while
Bordereau and Borderline merge into one.

This module builds :class:`~repro.network.topology.Topology` objects with the
same structure and with capacities/latencies chosen so that the two reference
numbers quoted in the paper hold on the simulator:

* NetPIPE-style point-to-point bandwidth inside an Ethernet cluster
  ≈ 890 Mb/s (the node access links);
* point-to-point bandwidth between two sites ≈ 787 Mb/s (TCP window of
  ~1 MiB over a ~10 ms RTT WAN path — see :func:`tcp_rate_cap`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.network.routing import RoutingTable
from repro.network.topology import GBPS, MBPS, Host, Switch, Topology, TopologyError

#: Effective point-to-point capacity of a node's GigE access link (bytes/s).
NODE_ACCESS_CAPACITY = 890 * MBPS

#: Capacity of the single inter-switch bottleneck link inside Bordeaux.
BORDEAUX_BOTTLENECK_CAPACITY = 1.0 * GBPS

#: Capacity of intra-site switch interconnects that are *not* bottlenecks.
FAST_INTERCONNECT_CAPACITY = 10.0 * GBPS

#: Capacity of a site's uplink into the Renater backbone.
RENATER_CAPACITY = 10.0 * GBPS

#: One-way latency of a node access link (seconds).
ACCESS_LATENCY = 50e-6

#: One-way latency of an intra-site switch-to-switch link (seconds).
INTRA_SITE_LATENCY = 50e-6

#: Default TCP window used for the per-flow WAN rate cap (bytes).
DEFAULT_TCP_WINDOW = 1_048_576.0


@dataclass(frozen=True)
class SiteSpec:
    """Declarative description of one Grid'5000 site.

    Attributes
    ----------
    name:
        Site name, e.g. ``"bordeaux"``.
    clusters:
        Mapping ``cluster name -> node count``.
    bottleneck_clusters:
        Clusters that sit behind the site's internal bottleneck link (only
        Bordeaux/Bordeplage in the paper).  Empty for flat sites.
    wan_latency:
        One-way latency from the site router to the Renater core (seconds).
        Chosen per-site so that inter-site RTTs are on the order of 10 ms.
    """

    name: str
    clusters: Mapping[str, int]
    bottleneck_clusters: Tuple[str, ...] = ()
    wan_latency: float = 2.6e-3


#: Reference site catalogue (node counts far exceed what experiments request;
#: builders trim to the requested sizes).
GRID5000_SITES: Dict[str, SiteSpec] = {
    "bordeaux": SiteSpec(
        name="bordeaux",
        clusters={"bordeplage": 51, "bordereau": 93, "borderline": 10},
        bottleneck_clusters=("bordeplage",),
        wan_latency=2.7e-3,
    ),
    "toulouse": SiteSpec(
        name="toulouse", clusters={"pastel": 140}, wan_latency=2.6e-3
    ),
    "grenoble": SiteSpec(
        name="grenoble", clusters={"genepi": 136}, wan_latency=2.4e-3
    ),
    "lyon": SiteSpec(name="lyon", clusters={"sagittaire": 79}, wan_latency=1.2e-3),
    "lille": SiteSpec(name="lille", clusters={"chinqchint": 46}, wan_latency=2.2e-3),
    "nancy": SiteSpec(name="nancy", clusters={"griffon": 92}, wan_latency=2.0e-3),
    "orsay": SiteSpec(name="orsay", clusters={"gdx": 180}, wan_latency=1.8e-3),
    "rennes": SiteSpec(name="rennes", clusters={"paravent": 99}, wan_latency=2.8e-3),
    "sophia": SiteSpec(name="sophia", clusters={"suno": 45}, wan_latency=3.0e-3),
}


def host_name(site: str, cluster: str, index: int) -> str:
    """Canonical host naming used by all builders: ``site.cluster-<index>``."""
    return f"{site}.{cluster}-{index}"


def tcp_rate_cap(rtt: float, window: float = DEFAULT_TCP_WINDOW) -> float:
    """Per-flow TCP throughput cap ``window / RTT`` in bytes/second.

    The paper's inter-site point-to-point bandwidth (≈787 Mb/s between
    Bordeaux and Toulouse) is below the 10 Gb/s Renater capacity because a
    single TCP stream is window-limited over the WAN round-trip time.  The
    fluid model reproduces that with this cap; intra-site RTTs are so small
    that the cap never binds there.
    """
    if rtt <= 0:
        return float("inf")
    return float(window) / float(rtt)


class Grid5000Builder:
    """Builds single- and multi-site Grid'5000-like topologies."""

    def __init__(
        self,
        site_specs: Optional[Mapping[str, SiteSpec]] = None,
        node_capacity: float = NODE_ACCESS_CAPACITY,
        bottleneck_capacity: float = BORDEAUX_BOTTLENECK_CAPACITY,
        interconnect_capacity: float = FAST_INTERCONNECT_CAPACITY,
        renater_capacity: float = RENATER_CAPACITY,
    ) -> None:
        self.site_specs = dict(site_specs or GRID5000_SITES)
        self.node_capacity = node_capacity
        self.bottleneck_capacity = bottleneck_capacity
        self.interconnect_capacity = interconnect_capacity
        self.renater_capacity = renater_capacity

    # ------------------------------------------------------------------ #
    # single site
    # ------------------------------------------------------------------ #
    def build_site(
        self,
        topology: Topology,
        site: str,
        nodes_per_cluster: Mapping[str, int],
    ) -> str:
        """Add one site to ``topology`` and return the name of its site router."""
        if site not in self.site_specs:
            raise TopologyError(f"unknown Grid'5000 site {site!r}")
        spec = self.site_specs[site]
        router = f"{site}.router"
        topology.add_switch(Switch(name=router, site=site))

        for cluster, count in nodes_per_cluster.items():
            if cluster not in spec.clusters:
                raise TopologyError(f"site {site!r} has no cluster {cluster!r}")
            if count < 0:
                raise TopologyError("node counts must be non-negative")
            if count > spec.clusters[cluster]:
                raise TopologyError(
                    f"cluster {site}/{cluster} has only {spec.clusters[cluster]} nodes, "
                    f"requested {count}"
                )
            switch = f"{site}.{cluster}.switch"
            topology.add_switch(Switch(name=switch, site=site))
            for i in range(count):
                host = topology.add_host(
                    Host(name=host_name(site, cluster, i), site=site, cluster=cluster)
                )
                topology.add_link(
                    host.name,
                    switch,
                    capacity=self.node_capacity,
                    latency=ACCESS_LATENCY,
                )
            if cluster in spec.bottleneck_clusters:
                # e.g. Bordeplage's Cisco switch reaches the rest of the site
                # through a single 1 GbE link (the paper's bottleneck).
                topology.add_link(
                    switch,
                    router,
                    capacity=self.bottleneck_capacity,
                    latency=INTRA_SITE_LATENCY,
                    name=f"{site}.{cluster}.bottleneck",
                )
            else:
                topology.add_link(
                    switch,
                    router,
                    capacity=self.interconnect_capacity,
                    latency=INTRA_SITE_LATENCY,
                )
        return router

    def build_single_site(
        self, site: str, nodes_per_cluster: Mapping[str, int], name: Optional[str] = None
    ) -> Topology:
        """Build a topology containing a single site (no WAN)."""
        topology = Topology(name=name or f"grid5000-{site}")
        self.build_site(topology, site, nodes_per_cluster)
        topology.validate_connected()
        return topology

    # ------------------------------------------------------------------ #
    # multi site
    # ------------------------------------------------------------------ #
    def build_multi_site(
        self,
        nodes: Mapping[str, Mapping[str, int]],
        name: Optional[str] = None,
    ) -> Topology:
        """Build several sites joined by a Renater-like star backbone.

        Parameters
        ----------
        nodes:
            ``site -> {cluster -> node count}``.
        """
        if not nodes:
            raise TopologyError("at least one site is required")
        topology = Topology(name=name or "grid5000-" + "-".join(sorted(nodes)))
        core = "renater.core"
        topology.add_switch(Switch(name=core, site="renater"))
        for site, clusters in nodes.items():
            router = self.build_site(topology, site, clusters)
            spec = self.site_specs[site]
            topology.add_link(
                router,
                core,
                capacity=self.renater_capacity,
                latency=spec.wan_latency,
                name=f"renater.{site}",
            )
        topology.validate_connected()
        return topology


# ---------------------------------------------------------------------- #
# convenience constructors used throughout tests / experiments
# ---------------------------------------------------------------------- #
def build_bordeaux_site(
    bordeplage: int = 32, bordereau: int = 27, borderline: int = 5
) -> Topology:
    """The paper's 64-node Bordeaux configuration (Fig. 7 / Fig. 8, dataset B)."""
    builder = Grid5000Builder()
    return builder.build_single_site(
        "bordeaux",
        {"bordeplage": bordeplage, "bordereau": bordereau, "borderline": borderline},
    )


def build_flat_site(site: str, count: int) -> Topology:
    """A site with a flat Ethernet hierarchy (Grenoble, Toulouse, Lyon)."""
    builder = Grid5000Builder()
    spec = GRID5000_SITES[site]
    cluster = next(iter(spec.clusters))
    return builder.build_single_site(site, {cluster: count})


def build_multi_site(nodes: Mapping[str, Mapping[str, int]]) -> Topology:
    """Multi-site topology over the Renater-like backbone."""
    return Grid5000Builder().build_multi_site(nodes)


def default_cluster_of(site: str) -> str:
    """First (default) cluster name of a site in the catalogue."""
    return next(iter(GRID5000_SITES[site].clusters))


def path_rtt(routing: RoutingTable, src: str, dst: str) -> float:
    """Round-trip time between two hosts (twice the one-way path latency)."""
    return 2.0 * routing.path_latency(src, dst)


def flow_rate_cap(
    routing: RoutingTable, src: str, dst: str, window: float = DEFAULT_TCP_WINDOW
) -> float:
    """Per-flow rate cap for a host pair, from the TCP window / RTT model."""
    return tcp_rate_cap(path_rtt(routing, src, dst), window)
