"""Shortest-path routing over a :class:`~repro.network.topology.Topology`.

Grid'5000-style networks are trees or near-trees of switches, so plain
latency-weighted shortest paths (Dijkstra) reproduce the real forwarding
behaviour.  Routes are computed once per source and cached; the fluid engine
then only needs the per-flow list of link names.
"""

from __future__ import annotations

import heapq
import warnings
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.network.topology import Link, Topology, TopologyError
from repro.observability.metrics import METRICS


class RoutingTable:
    """All-pairs host routes, computed lazily per source element.

    Besides the name-based routes, the table maintains a dense integer index
    over the topology's links (:attr:`link_index`) and interns each route as
    an immutable ``int32`` array of link indices (:meth:`route_indices`).
    The fluid engine keeps only these interned arrays, so route lookups and
    flow-set updates never touch link-name strings on the hot path.

    A table may be built with ``avoid`` — a set of link names excluded from
    path computation — to model routing around failed or flapping links.
    Pairs left unreachable by the exclusion fall back to the ``fallback``
    table's route (real control planes keep forwarding over a flapping link
    when it is the only path), or raise if no fallback is given.
    """

    def __init__(
        self,
        topology: Topology,
        avoid: Optional[frozenset] = None,
        fallback: Optional["RoutingTable"] = None,
    ) -> None:
        self.topology = topology
        self.avoid = frozenset(avoid) if avoid else frozenset()
        self.fallback = fallback
        known = {link.name for link in topology.links}
        unknown = [n for n in self.avoid if n not in known]
        if unknown:
            raise TopologyError(f"cannot avoid unknown links {sorted(unknown)}")
        self._paths: Dict[str, Dict[str, List[str]]] = {}
        links = topology.links
        #: ``link name -> dense index`` in topology declaration order.
        self.link_index: Dict[str, int] = {
            link.name: i for i, link in enumerate(links)
        }
        self._capacity_vector = np.array(
            [link.capacity for link in links], dtype=np.float64
        )
        self._index_routes: Dict[Tuple[str, str], np.ndarray] = {}
        self._name_routes: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        self._warned_fallback = False

    def capacity_vector(self) -> np.ndarray:
        """Per-link capacities aligned with :attr:`link_index` (a copy)."""
        return self._capacity_vector.copy()

    def route_indices(self, src: str, dst: str) -> np.ndarray:
        """The route as an interned, read-only array of dense link indices.

        Repeated calls for the same pair return the same array object, so
        route storage across thousands of transfers costs one array per pair.
        """
        key = (src, dst)
        cached = self._index_routes.get(key)
        if cached is None:
            index = self.link_index
            cached = np.array(
                [index[name] for name in self.route(src, dst)], dtype=np.int32
            )
            cached.setflags(write=False)
            self._index_routes[key] = cached
        return cached

    def route_tuple(self, src: str, dst: str) -> Tuple[str, ...]:
        """The route as an interned tuple of link names (no per-call copy)."""
        key = (src, dst)
        cached = self._name_routes.get(key)
        if cached is None:
            cached = self._name_routes[key] = tuple(self.route(src, dst))
        return cached

    def _dijkstra(self, source: str) -> Dict[str, List[str]]:
        """Return, for every reachable element, the list of link names from ``source``."""
        if not self.topology.has_element(source):
            raise TopologyError(f"unknown routing source {source!r}")
        dist: Dict[str, float] = {source: 0.0}
        prev: Dict[str, Tuple[str, Link]] = {}
        heap: List[Tuple[float, str]] = [(0.0, source)]
        visited = set()
        while heap:
            d, element = heapq.heappop(heap)
            if element in visited:
                continue
            visited.add(element)
            for nbr, link in self.topology.neighbors(element):
                # Hosts never forward transit traffic: a path may only pass
                # through a host if that host is the source itself.
                if self.topology.is_host(element) and element != source:
                    continue
                if link.name in self.avoid:
                    continue
                cost = d + max(link.latency, 1e-9)
                if nbr not in dist or cost < dist[nbr] - 1e-15:
                    dist[nbr] = cost
                    prev[nbr] = (element, link)
                    heapq.heappush(heap, (cost, nbr))
        routes: Dict[str, List[str]] = {}
        for target in dist:
            if target == source:
                routes[target] = []
                continue
            path: List[str] = []
            element = target
            while element != source:
                parent, link = prev[element]
                path.append(link.name)
                element = parent
            path.reverse()
            routes[target] = path
        return routes

    def route(self, src: str, dst: str) -> List[str]:
        """Return the list of link names traversed from ``src`` to ``dst``."""
        if src == dst:
            return []
        if src not in self._paths:
            self._paths[src] = self._dijkstra(src)
        try:
            return list(self._paths[src][dst])
        except KeyError as exc:
            if self.fallback is not None:
                # The avoided link is the only path for this pair: real
                # control planes keep forwarding over it.  Silent once,
                # counted always — a study that believes it routed *around*
                # a failure can audit how often it actually could not.
                METRICS.count("routing.fallback_hits")
                if not self._warned_fallback:
                    self._warned_fallback = True
                    warnings.warn(
                        f"routing table avoiding {sorted(self.avoid)} has no "
                        f"path {src!r} -> {dst!r}; serving the fallback route "
                        "(the avoided link is the only path for at least one "
                        "pair)",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                return self.fallback.route(src, dst)
            raise TopologyError(f"no route from {src!r} to {dst!r}") from exc

    def route_links(self, src: str, dst: str) -> List[Link]:
        return [self.topology.link(name) for name in self.route(src, dst)]

    def path_latency(self, src: str, dst: str) -> float:
        return sum(link.latency for link in self.route_links(src, dst))

    def bottleneck_capacity(self, src: str, dst: str) -> float:
        """Minimum link capacity on the route (the isolated achievable bandwidth)."""
        links = self.route_links(src, dst)
        if not links:
            return float("inf")
        return min(link.capacity for link in links)

    def shared_links(self, pair_a: Tuple[str, str], pair_b: Tuple[str, str]) -> List[str]:
        """Link names common to the routes of two host pairs (interference test)."""
        route_a = set(self.route(*pair_a))
        route_b = set(self.route(*pair_b))
        return sorted(route_a & route_b)
