"""Physical network topology: hosts, switches and capacity-annotated links.

Units
-----
* capacities are expressed in **bytes per second** (so a "1 GbE" link is
  ``1e9 / 8 = 125e6`` B/s);
* latencies in seconds;
* all helper constants below convert from the conventional Mb/s / Gb/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

MBPS = 1e6 / 8.0
"""Megabit per second, expressed in bytes/second."""

GBPS = 1e9 / 8.0
"""Gigabit per second, expressed in bytes/second."""


class TopologyError(ValueError):
    """Raised on malformed topology construction or lookups."""


@dataclass(frozen=True)
class Host:
    """An end host (compute node) that can source and sink traffic.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"bordeaux.bordeplage-3"``.
    site:
        Grid site this host belongs to (``"bordeaux"``, ``"toulouse"``, ...).
    cluster:
        Physical compute-cluster within the site (``"bordeplage"``, ...).
    """

    name: str
    site: str = ""
    cluster: str = ""


@dataclass(frozen=True)
class Switch:
    """A forwarding element; never sources or sinks application traffic."""

    name: str
    site: str = ""


@dataclass
class Link:
    """An undirected full-duplex link between two topology elements.

    The fluid model treats the link as a single shared resource of
    ``capacity`` bytes/second in each direction, which matches the paper's
    description of 1 GbE bottleneck links saturating under all-to-all load.
    """

    a: str
    b: str
    capacity: float
    latency: float = 1e-4
    name: str = ""

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise TopologyError(f"link {self.a}--{self.b} must have positive capacity")
        if self.latency < 0:
            raise TopologyError(f"link {self.a}--{self.b} must have non-negative latency")
        if not self.name:
            self.name = f"{self.a}--{self.b}"

    def endpoints(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def other(self, element: str) -> str:
        if element == self.a:
            return self.b
        if element == self.b:
            return self.a
        raise TopologyError(f"{element!r} is not an endpoint of link {self.name}")


class Topology:
    """A network of hosts, switches and links.

    The class validates element uniqueness and exposes the adjacency needed by
    :class:`repro.network.routing.RoutingTable`.
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._hosts: Dict[str, Host] = {}
        self._switches: Dict[str, Switch] = {}
        self._links: Dict[str, Link] = {}
        self._adjacency: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_host(self, host: Host) -> Host:
        self._check_new_name(host.name)
        self._hosts[host.name] = host
        self._adjacency.setdefault(host.name, [])
        return host

    def add_switch(self, switch: Switch) -> Switch:
        self._check_new_name(switch.name)
        self._switches[switch.name] = switch
        self._adjacency.setdefault(switch.name, [])
        return switch

    def add_link(self, a: str, b: str, capacity: float, latency: float = 1e-4,
                 name: str = "") -> Link:
        """Connect two existing elements with a link of ``capacity`` B/s."""
        for end in (a, b):
            if end not in self._adjacency:
                raise TopologyError(f"cannot link unknown element {end!r}")
        if a == b:
            raise TopologyError("self-links are not allowed")
        link = Link(a=a, b=b, capacity=capacity, latency=latency, name=name)
        if link.name in self._links:
            raise TopologyError(f"duplicate link name {link.name!r}")
        self._links[link.name] = link
        self._adjacency[a].append(link.name)
        self._adjacency[b].append(link.name)
        return link

    def _check_new_name(self, name: str) -> None:
        if name in self._hosts or name in self._switches:
            raise TopologyError(f"duplicate element name {name!r}")
        if not name:
            raise TopologyError("element names must be non-empty")

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def hosts(self) -> List[Host]:
        return list(self._hosts.values())

    @property
    def host_names(self) -> List[str]:
        return list(self._hosts.keys())

    @property
    def switches(self) -> List[Switch]:
        return list(self._switches.values())

    @property
    def links(self) -> List[Link]:
        return list(self._links.values())

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError as exc:
            raise TopologyError(f"unknown host {name!r}") from exc

    def link(self, name: str) -> Link:
        try:
            return self._links[name]
        except KeyError as exc:
            raise TopologyError(f"unknown link {name!r}") from exc

    def has_element(self, name: str) -> bool:
        return name in self._adjacency

    def is_host(self, name: str) -> bool:
        return name in self._hosts

    def incident_links(self, element: str) -> List[Link]:
        if element not in self._adjacency:
            raise TopologyError(f"unknown element {element!r}")
        return [self._links[link_name] for link_name in self._adjacency[element]]

    def neighbors(self, element: str) -> List[Tuple[str, Link]]:
        """Return ``(neighbour, link)`` pairs for every link incident to ``element``."""
        return [(link.other(element), link) for link in self.incident_links(element)]

    def hosts_in_site(self, site: str) -> List[Host]:
        return [h for h in self._hosts.values() if h.site == site]

    def hosts_in_cluster(self, site: str, cluster: str) -> List[Host]:
        return [h for h in self._hosts.values() if h.site == site and h.cluster == cluster]

    def sites(self) -> List[str]:
        return sorted({h.site for h in self._hosts.values() if h.site})

    def ground_truth_by(self, level: str = "site") -> Dict[str, Set[str]]:
        """Group host names by ``"site"`` or ``"cluster"`` membership.

        This is the *physical* grouping; experiment datasets refine it into the
        logical ground truth (e.g. merging Bordereau and Borderline, which the
        paper's administrator identified as one logical cluster).
        """
        groups: Dict[str, Set[str]] = {}
        for host in self._hosts.values():
            if level == "site":
                key = host.site or "unknown"
            elif level == "cluster":
                key = f"{host.site}/{host.cluster}" if host.cluster else (host.site or "unknown")
            else:
                raise TopologyError(f"unknown grouping level {level!r}")
            groups.setdefault(key, set()).add(host.name)
        return groups

    def validate_connected(self) -> None:
        """Raise :class:`TopologyError` unless every host can reach every other."""
        if not self._hosts:
            return
        start = next(iter(self._hosts))
        seen = {start}
        stack = [start]
        while stack:
            element = stack.pop()
            for nbr, _ in self.neighbors(element):
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        unreachable = set(self._hosts) - seen
        if unreachable:
            raise TopologyError(
                f"topology {self.name!r} is disconnected; unreachable hosts: "
                f"{sorted(unreachable)[:5]}..."
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(name={self.name!r}, hosts={len(self._hosts)}, "
            f"switches={len(self._switches)}, links={len(self._links)})"
        )
