"""Fluid (rate-based) transfer engine on top of the max-min allocator.

Two usage styles are supported:

* **event-driven** (:meth:`FluidNetwork.run_until_complete`,
  :meth:`FluidNetwork.next_transition`) — rates are recomputed whenever a
  transfer starts or finishes and the next completion is scheduled exactly;
  this is the classic flow-level simulation used for NetPIPE probes and the
  saturation-tomography baselines, and what the event-stepped BitTorrent
  swarm builds its jump targets from.
* **time-stepped** (:meth:`FluidNetwork.advance` /
  :meth:`FluidNetwork.advance_to`) — the caller advances the clock and the
  engine credits ``rate × elapsed`` bytes to every active transfer; the
  BitTorrent swarm uses this mode because its own control loop (choking
  rounds, piece selection) runs on a discretized schedule.

Internally the network keeps a :class:`~repro.network.solver.FlowSet` whose
slots index contiguous ``remaining``/``rate``/``size`` vectors.  The byte
state is **anchored**: ``_remaining`` is only materialized at *transition
points* — flow arrivals/cancellations and in-flight completions — and every
read in between is the analytic ``remaining - rate × (t - anchor)``.  Because
the allocation is piecewise-constant between transitions, the value observed
at any time ``t`` is a pure function of the last transition state: it does
not depend on how many intermediate ``advance_to`` calls the caller made.
That property is what lets the swarm's event-stepped mode skip over inert
control steps while remaining bit-for-bit identical to the fixed-step loop.

:class:`FluidTransfer` objects are thin views: their ``transferred``/``rate``
properties read the vectors, so per-step state is never copied back onto
Python objects.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.network.routing import RoutingTable
from repro.network.solver import FlowSet
from repro.network.topology import Topology

#: Rate assigned to loopback / unconstrained transfers (local-memory speed).
LOOPBACK_RATE = 100e9


class FluidTransfer:
    """A unidirectional bulk transfer between two hosts.

    Attributes
    ----------
    transfer_id:
        Unique integer id assigned by the network.
    src, dst:
        Host names.
    size:
        Total bytes to move.
    transferred:
        Bytes moved so far (live view onto the network's state vectors).
    rate:
        Current allocated rate (bytes/second); updated on every reallocation.
    on_complete:
        Optional callback invoked (with the transfer) when it finishes.
    """

    __slots__ = (
        "transfer_id",
        "src",
        "dst",
        "size",
        "links",
        "rate_cap",
        "start_time",
        "finish_time",
        "on_complete",
        "_net",
        "_slot",
        "_final_transferred",
        "_final_rate",
    )

    def __init__(
        self,
        transfer_id: int,
        src: str,
        dst: str,
        size: float,
        links: Tuple[str, ...],
        rate_cap: Optional[float] = None,
        start_time: float = 0.0,
        on_complete: Optional[Callable[["FluidTransfer"], None]] = None,
    ) -> None:
        self.transfer_id = transfer_id
        self.src = src
        self.dst = dst
        self.size = size
        self.links = links
        self.rate_cap = rate_cap
        self.start_time = start_time
        self.finish_time: Optional[float] = None
        self.on_complete = on_complete
        self._net: Optional["FluidNetwork"] = None
        self._slot = -1
        self._final_transferred = 0.0
        self._final_rate = 0.0

    @property
    def transferred(self) -> float:
        if self._slot >= 0:
            net = self._net
            remaining = float(net._remaining[self._slot])
            elapsed = net.now - net._anchor
            if elapsed > 0.0:
                remaining -= float(net._rate[self._slot]) * elapsed
            return self.size - max(remaining, 0.0)
        return self._final_transferred

    @property
    def rate(self) -> float:
        if self._slot >= 0:
            return float(self._net._rate[self._slot])
        return self._final_rate

    @property
    def remaining(self) -> float:
        return max(self.size - self.transferred, 0.0)

    @property
    def done(self) -> bool:
        return self.remaining <= 1e-9

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FluidTransfer(id={self.transfer_id}, {self.src!r}->{self.dst!r}, "
            f"{self.transferred:.0f}/{self.size:.0f}B)"
        )


class FluidNetwork:
    """Tracks active transfers over a topology and shares bandwidth max-min fairly."""

    def __init__(self, topology: Topology, routing: Optional[RoutingTable] = None) -> None:
        self.topology = topology
        self.routing = routing or RoutingTable(topology)
        self._flows = FlowSet(self.routing.capacity_vector())
        self._active: Dict[int, FluidTransfer] = {}
        self._ids = itertools.count(1)
        self._dirty = True
        self.now = 0.0
        #: Absolute time at which ``_remaining`` was last materialized; the
        #: current ``_rate`` vector governs ``[_anchor, next transition)``.
        self._anchor = 0.0
        self.completed: List[FluidTransfer] = []
        #: Whether finished transfers are appended to :attr:`completed`.
        #: Long-running multi-tenant workloads (hours of generative cross
        #: traffic) switch this off so memory stays O(active transfers).
        self.retain_completed = True
        #: Monotone count of flow-set transitions (arrivals, cancellations,
        #: completions); callers snapshot it to detect rate changes.
        self.transitions = 0
        # Slot-aligned state vectors (grown in lockstep with the FlowSet pool).
        pool = self._flows.pool_size
        self._remaining = np.zeros(pool, dtype=np.float64)
        self._rate = np.zeros(pool, dtype=np.float64)
        self._size = np.zeros(pool, dtype=np.float64)
        self._by_slot: Dict[int, FluidTransfer] = {}
        self._slots_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # anchored byte state
    # ------------------------------------------------------------------ #
    def _materialize(self, t: float) -> None:
        """Integrate ``_remaining`` from the anchor up to ``t``.

        Must only be called with ``t`` at or before the next in-flight
        completion; transitions in between are handled by :meth:`advance_to`.
        """
        if t <= self._anchor:
            return
        if self._dirty:
            # A mutation at the anchor left the rates stale; they must be
            # recomputed before integrating past it.
            self._reallocate()
        slots = self._active_slots()
        if slots.size:
            credited = self._remaining[slots] - self._rate[slots] * (t - self._anchor)
            np.maximum(credited, 0.0, out=credited)
            self._remaining[slots] = credited
        self._anchor = t

    # ------------------------------------------------------------------ #
    # transfer management
    # ------------------------------------------------------------------ #
    def start_transfer(
        self,
        src: str,
        dst: str,
        size: float,
        rate_cap: Optional[float] = None,
        on_complete: Optional[Callable[[FluidTransfer], None]] = None,
    ) -> FluidTransfer:
        """Begin moving ``size`` bytes from ``src`` to ``dst``."""
        if size <= 0:
            raise ValueError(f"transfer size must be positive, got {size}")
        if not self.topology.is_host(src) or not self.topology.is_host(dst):
            raise ValueError(f"transfers must run between hosts ({src!r} -> {dst!r})")
        # The allocation changes now: settle the old rates' bytes first.
        self._materialize(self.now)
        route = self.routing.route_indices(src, dst)
        slot = self._flows.add(route, rate_cap, assume_unique=True)
        if slot >= self._remaining.size:
            grow = self._flows.pool_size - self._remaining.size
            self._remaining = np.concatenate([self._remaining, np.zeros(grow)])
            self._rate = np.concatenate([self._rate, np.zeros(grow)])
            self._size = np.concatenate([self._size, np.zeros(grow)])
        transfer = FluidTransfer(
            transfer_id=next(self._ids),
            src=src,
            dst=dst,
            size=float(size),
            links=self.routing.route_tuple(src, dst),
            rate_cap=rate_cap,
            start_time=self.now,
            on_complete=on_complete,
        )
        transfer._net = self
        transfer._slot = slot
        self._remaining[slot] = transfer.size
        self._size[slot] = transfer.size
        self._rate[slot] = 0.0
        self._active[transfer.transfer_id] = transfer
        self._by_slot[slot] = transfer
        self._slots_cache = None
        self._dirty = True
        self.transitions += 1
        return transfer

    def _detach(self, transfer: FluidTransfer) -> None:
        """Freeze a transfer's state and release its slot.

        The caller must have materialized the byte state at the detach time.
        """
        slot = transfer._slot
        transfer._final_transferred = transfer.size - max(float(self._remaining[slot]), 0.0)
        transfer._final_rate = float(self._rate[slot])
        transfer._slot = -1
        transfer._net = None
        self._flows.remove(slot)
        del self._by_slot[slot]
        self._slots_cache = None
        self._dirty = True
        self.transitions += 1

    def cancel_transfer(self, transfer: FluidTransfer) -> None:
        """Abort a transfer without firing its completion callback."""
        live = self._active.pop(transfer.transfer_id, None)
        if live is None:
            return
        self._materialize(self.now)
        self._detach(transfer)

    @property
    def active_transfers(self) -> List[FluidTransfer]:
        return list(self._active.values())

    @property
    def active_count(self) -> int:
        """Number of in-flight transfers (O(1))."""
        return len(self._active)

    def repin_routes(self, routing: RoutingTable) -> int:
        """Re-pin every in-flight transfer onto ``routing``'s current routes.

        A routing swap (:meth:`~repro.workloads.engine.WorkloadEngine
        .set_routing`) normally only steers *new* transfers; this method is
        the control plane's data-path convergence step: each active transfer
        whose route changed under ``routing`` is moved to its new link list,
        keeping its remaining bytes and per-flow rate cap.  The move is a
        single *transition* — byte state is materialized first and
        :attr:`transitions` is bumped once — so fixed and event stepping
        observe the same piecewise-constant rate windows.  Transfers whose
        route is unchanged are untouched.  Returns the number re-pinned.

        Iteration order over the active set is insertion order, which is a
        pure function of the simulation history, so re-pinning is
        deterministic and replays bit-for-bit.
        """
        if routing.topology is not self.topology:
            raise ValueError("re-pin routing table is over a different topology")
        moved = 0
        self._materialize(self.now)
        for transfer in self._active.values():
            new_links = routing.route_tuple(transfer.src, transfer.dst)
            if new_links == transfer.links:
                continue
            slot = transfer._slot
            remaining = float(self._remaining[slot])
            self._flows.remove(slot)
            del self._by_slot[slot]
            new_slot = self._flows.add(
                routing.route_indices(transfer.src, transfer.dst),
                transfer.rate_cap,
                assume_unique=True,
            )
            if new_slot >= self._remaining.size:
                grow = self._flows.pool_size - self._remaining.size
                self._remaining = np.concatenate([self._remaining, np.zeros(grow)])
                self._rate = np.concatenate([self._rate, np.zeros(grow)])
                self._size = np.concatenate([self._size, np.zeros(grow)])
            transfer._slot = new_slot
            transfer.links = new_links
            self._remaining[new_slot] = remaining
            self._size[new_slot] = transfer.size
            self._rate[new_slot] = 0.0
            self._by_slot[new_slot] = transfer
            moved += 1
        if moved:
            self._slots_cache = None
            self._dirty = True
            self.transitions += 1
        return moved

    def set_link_capacity(self, link: str, capacity: float) -> None:
        """Change one link's capacity, settling the byte state first.

        The change is a *transition*: bytes accumulated under the old rates
        are materialized at the current clock, the allocation is marked
        stale, and :attr:`transitions` is bumped so observers (the workload
        engine's interference wakeups, the swarm's jump predicates) know the
        piecewise-constant rate window ended here.  The capacity-drift
        actors of :mod:`repro.workloads` are the primary caller.
        """
        index = self.routing.link_index.get(link)
        if index is None:
            raise KeyError(f"unknown link {link!r}")
        if capacity == self._flows.link_capacity(index):
            return
        self._materialize(self.now)
        self._flows.set_link_capacity(index, capacity)
        self._dirty = True
        self.transitions += 1

    def link_capacity(self, link: str) -> float:
        """Current capacity of a link by name (bytes/second)."""
        index = self.routing.link_index.get(link)
        if index is None:
            raise KeyError(f"unknown link {link!r}")
        return self._flows.link_capacity(index)

    # ------------------------------------------------------------------ #
    # rate allocation
    # ------------------------------------------------------------------ #
    def _active_slots(self) -> np.ndarray:
        if self._slots_cache is None:
            self._slots_cache = np.fromiter(
                self._by_slot.keys(), dtype=np.int64, count=len(self._by_slot)
            )
        return self._slots_cache

    def _reallocate(self) -> None:
        rates = self._flows.solve()
        slots = self._active_slots()
        allocated = rates[slots]
        # Loopback / uncapped transfers: complete at local-memory speed.
        np.copyto(allocated, LOOPBACK_RATE, where=~np.isfinite(allocated))
        self._rate[slots] = allocated
        self._dirty = False

    def rates(self) -> Dict[int, float]:
        """Current allocation ``transfer_id -> bytes/second``."""
        if self._dirty:
            self._reallocate()
        return {tid: float(self._rate[t._slot]) for tid, t in self._active.items()}

    def transferred_at(self, slots: np.ndarray, t: float) -> np.ndarray:
        """Bulk analytic read of transferred bytes at absolute time ``t``.

        Valid for ``t`` between the last materialized transition and the next
        one (the window in which rates are constant); the swarm's control
        loop only reads at such times.
        """
        remaining = self._remaining[slots]
        elapsed = t - self._anchor
        if elapsed > 0.0:
            remaining = remaining - self._rate[slots] * elapsed
            np.maximum(remaining, 0.0, out=remaining)
        return self._size[slots] - remaining

    def transferred_for(self, slots: np.ndarray) -> np.ndarray:
        """Bulk read of transferred bytes at the current clock (hot path)."""
        return self.transferred_at(slots, self.now)

    # ------------------------------------------------------------------ #
    # time stepping
    # ------------------------------------------------------------------ #
    def next_transition(self) -> Optional[float]:
        """Earliest in-flight completion time under the current allocation.

        Returns ``None`` when nothing is moving.  Between now and the
        returned time the allocation is constant, so callers may safely
        extrapolate byte counts with :meth:`transferred_at`.
        """
        if not self._active:
            return None
        if self._dirty:
            self._reallocate()
        slots = self._active_slots()
        rates = self._rate[slots]
        moving = rates > 1e-12
        if not moving.any():
            return None
        eta = float((self._remaining[slots][moving] / rates[moving]).min())
        return self._anchor + eta

    def advance_to(self, target: float) -> List[FluidTransfer]:
        """Advance the fluid state to absolute time ``target``.

        In-flight completions up to ``target`` are processed at their exact
        (interpolated) times, redistributing the freed bandwidth for the rest
        of the interval.  Returns the transfers completed during the call, in
        completion order.
        """
        if target < self.now - 1e-12:
            raise ValueError(
                f"cannot advance backwards (now={self.now}, target={target})"
            )
        finished: List[FluidTransfer] = []
        guard = 0
        while self._active:
            guard += 1
            if guard > 10 * (len(self._active) + len(finished)) + 1000:
                raise RuntimeError("fluid advance failed to converge")
            if self._dirty:
                self._reallocate()
            slots = self._active_slots()
            rates = self._rate[slots]
            moving = rates > 1e-12
            if not moving.any():
                break
            eta = float((self._remaining[slots][moving] / rates[moving]).min())
            completion = self._anchor + eta
            if completion > target:
                break
            self._materialize(completion)
            credited = self._remaining[slots]
            # A residual that would drain within one representable clock tick
            # is done *now*: the clock cannot advance by less than an ulp, so
            # leaving it active would spin this loop at a frozen time.  (Such
            # residuals arise when another tenant's completion materializes
            # the byte state a hair before this flow's own finish.)
            tick = np.spacing(max(abs(completion), 1.0))
            done = np.flatnonzero(credited <= np.maximum(1e-9, rates * tick))
            for position in done:
                transfer = self._by_slot[int(slots[position])]
                transfer.finish_time = completion
                self._remaining[transfer._slot] = 0.0
                self._detach(transfer)
                del self._active[transfer.transfer_id]
                if self.retain_completed:
                    self.completed.append(transfer)
                finished.append(transfer)
        self.now = max(self.now, target)
        for transfer in finished:
            if transfer.on_complete is not None:
                transfer.on_complete(transfer)
        return finished

    def advance(self, dt: float) -> List[FluidTransfer]:
        """Advance the fluid state by ``dt`` seconds (relative-time wrapper)."""
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        return self.advance_to(self.now + dt)

    # ------------------------------------------------------------------ #
    # event-driven mode
    # ------------------------------------------------------------------ #
    def run_until_complete(self, max_time: float = float("inf")) -> float:
        """Run all active transfers to completion (or ``max_time``).

        Returns the simulated time at which the last transfer finished.
        """
        guard = 0
        while self._active and self.now < max_time - 1e-12:
            guard += 1
            if guard > 1_000_000:
                raise RuntimeError("run_until_complete exceeded event budget")
            transition = self.next_transition()
            if transition is None:
                raise RuntimeError(
                    "active transfers have zero allocated rate; topology is "
                    "disconnected or capacities are malformed"
                )
            self.advance_to(min(transition, max_time))
        return self.now

    def transfer_time(self, src: str, dst: str, size: float) -> float:
        """Time to move ``size`` bytes in isolation (no other active transfers)."""
        if self._active:
            raise RuntimeError("transfer_time requires an idle network")
        start = self.now
        self.start_transfer(src, dst, size)
        self.run_until_complete()
        return self.now - start
