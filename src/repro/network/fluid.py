"""Fluid (rate-based) transfer engine on top of the max-min allocator.

Two usage styles are supported:

* **event-driven** (:meth:`FluidNetwork.run_until_complete`) — rates are
  recomputed whenever a transfer starts or finishes and the next completion is
  scheduled exactly; this is the classic flow-level simulation used for
  NetPIPE probes and the saturation-tomography baselines.
* **time-stepped** (:meth:`FluidNetwork.advance`) — the caller advances the
  clock in fixed steps and the engine credits ``rate × dt`` bytes to every
  active transfer; the BitTorrent swarm uses this mode because its own control
  loop (choking rounds, piece selection) already runs on a periodic schedule.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.network.flows import FlowDemand, max_min_fair_allocation
from repro.network.routing import RoutingTable
from repro.network.topology import Topology


@dataclass
class FluidTransfer:
    """A unidirectional bulk transfer between two hosts.

    Attributes
    ----------
    transfer_id:
        Unique integer id assigned by the network.
    src, dst:
        Host names.
    size:
        Total bytes to move.
    transferred:
        Bytes moved so far.
    rate:
        Current allocated rate (bytes/second); updated on every reallocation.
    on_complete:
        Optional callback invoked (with the transfer) when it finishes.
    """

    transfer_id: int
    src: str
    dst: str
    size: float
    links: Tuple[str, ...]
    rate_cap: Optional[float] = None
    transferred: float = 0.0
    rate: float = 0.0
    start_time: float = 0.0
    finish_time: Optional[float] = None
    on_complete: Optional[Callable[["FluidTransfer"], None]] = None

    @property
    def remaining(self) -> float:
        return max(self.size - self.transferred, 0.0)

    @property
    def done(self) -> bool:
        return self.remaining <= 1e-9


class FluidNetwork:
    """Tracks active transfers over a topology and shares bandwidth max-min fairly."""

    def __init__(self, topology: Topology, routing: Optional[RoutingTable] = None) -> None:
        self.topology = topology
        self.routing = routing or RoutingTable(topology)
        self._capacity: Dict[str, float] = {
            link.name: link.capacity for link in topology.links
        }
        self._active: Dict[int, FluidTransfer] = {}
        self._ids = itertools.count(1)
        self._dirty = True
        self.now = 0.0
        self.completed: List[FluidTransfer] = []

    # ------------------------------------------------------------------ #
    # transfer management
    # ------------------------------------------------------------------ #
    def start_transfer(
        self,
        src: str,
        dst: str,
        size: float,
        rate_cap: Optional[float] = None,
        on_complete: Optional[Callable[[FluidTransfer], None]] = None,
    ) -> FluidTransfer:
        """Begin moving ``size`` bytes from ``src`` to ``dst``."""
        if size <= 0:
            raise ValueError(f"transfer size must be positive, got {size}")
        if not self.topology.is_host(src) or not self.topology.is_host(dst):
            raise ValueError(f"transfers must run between hosts ({src!r} -> {dst!r})")
        links = tuple(self.routing.route(src, dst))
        transfer = FluidTransfer(
            transfer_id=next(self._ids),
            src=src,
            dst=dst,
            size=float(size),
            links=links,
            rate_cap=rate_cap,
            start_time=self.now,
            on_complete=on_complete,
        )
        self._active[transfer.transfer_id] = transfer
        self._dirty = True
        return transfer

    def cancel_transfer(self, transfer: FluidTransfer) -> None:
        """Abort a transfer without firing its completion callback."""
        self._active.pop(transfer.transfer_id, None)
        self._dirty = True

    @property
    def active_transfers(self) -> List[FluidTransfer]:
        return list(self._active.values())

    # ------------------------------------------------------------------ #
    # rate allocation
    # ------------------------------------------------------------------ #
    def _reallocate(self) -> None:
        demands = [
            FlowDemand(flow_id=t.transfer_id, links=t.links, rate_cap=t.rate_cap)
            for t in self._active.values()
        ]
        rates = max_min_fair_allocation(demands, self._capacity)
        for transfer in self._active.values():
            rate = rates.get(transfer.transfer_id, 0.0)
            if not math.isfinite(rate):
                # Loopback / uncapped transfer: complete at local-memory speed.
                rate = 100e9
            transfer.rate = rate
        self._dirty = False

    def rates(self) -> Dict[int, float]:
        """Current allocation ``transfer_id -> bytes/second``."""
        if self._dirty:
            self._reallocate()
        return {tid: t.rate for tid, t in self._active.items()}

    # ------------------------------------------------------------------ #
    # time-stepped mode
    # ------------------------------------------------------------------ #
    def advance(self, dt: float) -> List[FluidTransfer]:
        """Advance the fluid state by ``dt`` seconds.

        Bytes are credited at the rate allocated at the *start* of the step;
        transfers that complete mid-step finish at the interpolated time and
        the freed bandwidth is redistributed for the remainder of the step.

        Returns the transfers completed during the step, in completion order.
        """
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        finished: List[FluidTransfer] = []
        remaining_dt = float(dt)
        guard = 0
        while remaining_dt > 1e-12 and self._active:
            guard += 1
            if guard > 10 * (len(self._active) + len(finished) + 10):
                raise RuntimeError("fluid advance failed to converge")
            if self._dirty:
                self._reallocate()
            # Earliest completion within the remaining step, if any.
            next_completion = remaining_dt
            for transfer in self._active.values():
                if transfer.rate > 1e-12:
                    eta = transfer.remaining / transfer.rate
                    next_completion = min(next_completion, eta)
            step = max(min(next_completion, remaining_dt), 0.0)
            if step <= 1e-15:
                step = min(remaining_dt, 1e-9)
            for transfer in self._active.values():
                transfer.transferred = min(
                    transfer.size, transfer.transferred + transfer.rate * step
                )
            self.now += step
            remaining_dt -= step
            newly_done = [t for t in self._active.values() if t.done]
            for transfer in newly_done:
                transfer.finish_time = self.now
                del self._active[transfer.transfer_id]
                self.completed.append(transfer)
                finished.append(transfer)
                self._dirty = True
            if newly_done:
                continue
            if step >= remaining_dt - 1e-15:
                break
        if not self._active and remaining_dt > 0:
            self.now += remaining_dt
        for transfer in finished:
            if transfer.on_complete is not None:
                transfer.on_complete(transfer)
        return finished

    # ------------------------------------------------------------------ #
    # event-driven mode
    # ------------------------------------------------------------------ #
    def run_until_complete(self, max_time: float = float("inf")) -> float:
        """Run all active transfers to completion (or ``max_time``).

        Returns the simulated time at which the last transfer finished.
        """
        guard = 0
        while self._active and self.now < max_time - 1e-12:
            guard += 1
            if guard > 1_000_000:
                raise RuntimeError("run_until_complete exceeded event budget")
            if self._dirty:
                self._reallocate()
            etas = [
                t.remaining / t.rate if t.rate > 1e-12 else float("inf")
                for t in self._active.values()
            ]
            eta = min(etas)
            if not math.isfinite(eta):
                raise RuntimeError(
                    "active transfers have zero allocated rate; topology is "
                    "disconnected or capacities are malformed"
                )
            self.advance(min(eta, max_time - self.now))
        return self.now

    def transfer_time(self, src: str, dst: str, size: float) -> float:
        """Time to move ``size`` bytes in isolation (no other active transfers)."""
        if self._active:
            raise RuntimeError("transfer_time requires an idle network")
        start = self.now
        self.start_transfer(src, dst, size)
        self.run_until_complete()
        return self.now - start
