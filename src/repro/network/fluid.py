"""Fluid (rate-based) transfer engine on top of the max-min allocator.

Two usage styles are supported:

* **event-driven** (:meth:`FluidNetwork.run_until_complete`) — rates are
  recomputed whenever a transfer starts or finishes and the next completion is
  scheduled exactly; this is the classic flow-level simulation used for
  NetPIPE probes and the saturation-tomography baselines.
* **time-stepped** (:meth:`FluidNetwork.advance`) — the caller advances the
  clock in fixed steps and the engine credits ``rate × dt`` bytes to every
  active transfer; the BitTorrent swarm uses this mode because its own control
  loop (choking rounds, piece selection) already runs on a periodic schedule.

Internally the network keeps a :class:`~repro.network.solver.FlowSet` whose
slots index contiguous ``remaining``/``rate``/``size`` vectors, so the
reallocation and the advance loop's ETA/credit scans are batched array
operations.  :class:`FluidTransfer` objects are thin views: their
``transferred``/``rate`` properties read the vectors, so per-step state is
never copied back onto Python objects.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.network.routing import RoutingTable
from repro.network.solver import FlowSet
from repro.network.topology import Topology

#: Rate assigned to loopback / unconstrained transfers (local-memory speed).
LOOPBACK_RATE = 100e9


class FluidTransfer:
    """A unidirectional bulk transfer between two hosts.

    Attributes
    ----------
    transfer_id:
        Unique integer id assigned by the network.
    src, dst:
        Host names.
    size:
        Total bytes to move.
    transferred:
        Bytes moved so far (live view onto the network's state vectors).
    rate:
        Current allocated rate (bytes/second); updated on every reallocation.
    on_complete:
        Optional callback invoked (with the transfer) when it finishes.
    """

    __slots__ = (
        "transfer_id",
        "src",
        "dst",
        "size",
        "links",
        "rate_cap",
        "start_time",
        "finish_time",
        "on_complete",
        "_net",
        "_slot",
        "_final_transferred",
        "_final_rate",
    )

    def __init__(
        self,
        transfer_id: int,
        src: str,
        dst: str,
        size: float,
        links: Tuple[str, ...],
        rate_cap: Optional[float] = None,
        start_time: float = 0.0,
        on_complete: Optional[Callable[["FluidTransfer"], None]] = None,
    ) -> None:
        self.transfer_id = transfer_id
        self.src = src
        self.dst = dst
        self.size = size
        self.links = links
        self.rate_cap = rate_cap
        self.start_time = start_time
        self.finish_time: Optional[float] = None
        self.on_complete = on_complete
        self._net: Optional["FluidNetwork"] = None
        self._slot = -1
        self._final_transferred = 0.0
        self._final_rate = 0.0

    @property
    def transferred(self) -> float:
        if self._slot >= 0:
            return self.size - max(float(self._net._remaining[self._slot]), 0.0)
        return self._final_transferred

    @property
    def rate(self) -> float:
        if self._slot >= 0:
            return float(self._net._rate[self._slot])
        return self._final_rate

    @property
    def remaining(self) -> float:
        return max(self.size - self.transferred, 0.0)

    @property
    def done(self) -> bool:
        return self.remaining <= 1e-9

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FluidTransfer(id={self.transfer_id}, {self.src!r}->{self.dst!r}, "
            f"{self.transferred:.0f}/{self.size:.0f}B)"
        )


class FluidNetwork:
    """Tracks active transfers over a topology and shares bandwidth max-min fairly."""

    def __init__(self, topology: Topology, routing: Optional[RoutingTable] = None) -> None:
        self.topology = topology
        self.routing = routing or RoutingTable(topology)
        self._flows = FlowSet(self.routing.capacity_vector())
        self._active: Dict[int, FluidTransfer] = {}
        self._ids = itertools.count(1)
        self._dirty = True
        self.now = 0.0
        self.completed: List[FluidTransfer] = []
        # Slot-aligned state vectors (grown in lockstep with the FlowSet pool).
        pool = self._flows.pool_size
        self._remaining = np.zeros(pool, dtype=np.float64)
        self._rate = np.zeros(pool, dtype=np.float64)
        self._size = np.zeros(pool, dtype=np.float64)
        self._by_slot: Dict[int, FluidTransfer] = {}
        self._slots_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # transfer management
    # ------------------------------------------------------------------ #
    def start_transfer(
        self,
        src: str,
        dst: str,
        size: float,
        rate_cap: Optional[float] = None,
        on_complete: Optional[Callable[[FluidTransfer], None]] = None,
    ) -> FluidTransfer:
        """Begin moving ``size`` bytes from ``src`` to ``dst``."""
        if size <= 0:
            raise ValueError(f"transfer size must be positive, got {size}")
        if not self.topology.is_host(src) or not self.topology.is_host(dst):
            raise ValueError(f"transfers must run between hosts ({src!r} -> {dst!r})")
        route = self.routing.route_indices(src, dst)
        slot = self._flows.add(route, rate_cap, assume_unique=True)
        if slot >= self._remaining.size:
            grow = self._flows.pool_size - self._remaining.size
            self._remaining = np.concatenate([self._remaining, np.zeros(grow)])
            self._rate = np.concatenate([self._rate, np.zeros(grow)])
            self._size = np.concatenate([self._size, np.zeros(grow)])
        transfer = FluidTransfer(
            transfer_id=next(self._ids),
            src=src,
            dst=dst,
            size=float(size),
            links=self.routing.route_tuple(src, dst),
            rate_cap=rate_cap,
            start_time=self.now,
            on_complete=on_complete,
        )
        transfer._net = self
        transfer._slot = slot
        self._remaining[slot] = transfer.size
        self._size[slot] = transfer.size
        self._rate[slot] = 0.0
        self._active[transfer.transfer_id] = transfer
        self._by_slot[slot] = transfer
        self._slots_cache = None
        self._dirty = True
        return transfer

    def _detach(self, transfer: FluidTransfer) -> None:
        """Freeze a transfer's state and release its slot."""
        slot = transfer._slot
        transfer._final_transferred = transfer.size - max(float(self._remaining[slot]), 0.0)
        transfer._final_rate = float(self._rate[slot])
        transfer._slot = -1
        transfer._net = None
        self._flows.remove(slot)
        del self._by_slot[slot]
        self._slots_cache = None
        self._dirty = True

    def cancel_transfer(self, transfer: FluidTransfer) -> None:
        """Abort a transfer without firing its completion callback."""
        live = self._active.pop(transfer.transfer_id, None)
        if live is None:
            return
        self._detach(transfer)

    @property
    def active_transfers(self) -> List[FluidTransfer]:
        return list(self._active.values())

    # ------------------------------------------------------------------ #
    # rate allocation
    # ------------------------------------------------------------------ #
    def _active_slots(self) -> np.ndarray:
        if self._slots_cache is None:
            self._slots_cache = np.fromiter(
                self._by_slot.keys(), dtype=np.int64, count=len(self._by_slot)
            )
        return self._slots_cache

    def _reallocate(self) -> None:
        rates = self._flows.solve()
        slots = self._active_slots()
        allocated = rates[slots]
        # Loopback / uncapped transfers: complete at local-memory speed.
        np.copyto(allocated, LOOPBACK_RATE, where=~np.isfinite(allocated))
        self._rate[slots] = allocated
        self._dirty = False

    def rates(self) -> Dict[int, float]:
        """Current allocation ``transfer_id -> bytes/second``."""
        if self._dirty:
            self._reallocate()
        return {tid: float(self._rate[t._slot]) for tid, t in self._active.items()}

    def transferred_for(self, slots: np.ndarray) -> np.ndarray:
        """Bulk read of transferred bytes for the given slots (hot path)."""
        return self._size[slots] - self._remaining[slots]

    # ------------------------------------------------------------------ #
    # time-stepped mode
    # ------------------------------------------------------------------ #
    def advance(self, dt: float) -> List[FluidTransfer]:
        """Advance the fluid state by ``dt`` seconds.

        Bytes are credited at the rate allocated at the *start* of the step;
        transfers that complete mid-step finish at the interpolated time and
        the freed bandwidth is redistributed for the remainder of the step.

        Returns the transfers completed during the step, in completion order.
        """
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        finished: List[FluidTransfer] = []
        remaining_dt = float(dt)
        guard = 0
        while remaining_dt > 1e-12 and self._active:
            guard += 1
            if guard > 10 * (len(self._active) + len(finished) + 10):
                raise RuntimeError("fluid advance failed to converge")
            if self._dirty:
                self._reallocate()
            slots = self._active_slots()
            rates = self._rate[slots]
            remaining = self._remaining[slots]
            # Earliest completion within the remaining step, if any.
            moving = rates > 1e-12
            if moving.any():
                eta = (remaining[moving] / rates[moving]).min()
                next_completion = min(float(eta), remaining_dt)
            else:
                next_completion = remaining_dt
            step = max(next_completion, 0.0)
            if step <= 1e-15:
                step = min(remaining_dt, 1e-9)
            credited = remaining - rates * step
            np.maximum(credited, 0.0, out=credited)
            self._remaining[slots] = credited
            self.now += step
            remaining_dt -= step
            done = np.flatnonzero(credited <= 1e-9)
            for position in done:
                transfer = self._by_slot[int(slots[position])]
                transfer.finish_time = self.now
                self._remaining[transfer._slot] = 0.0
                self._detach(transfer)
                del self._active[transfer.transfer_id]
                self.completed.append(transfer)
                finished.append(transfer)
            if done.size:
                continue
            if step >= remaining_dt - 1e-15:
                break
        if not self._active and remaining_dt > 0:
            self.now += remaining_dt
        for transfer in finished:
            if transfer.on_complete is not None:
                transfer.on_complete(transfer)
        return finished

    # ------------------------------------------------------------------ #
    # event-driven mode
    # ------------------------------------------------------------------ #
    def run_until_complete(self, max_time: float = float("inf")) -> float:
        """Run all active transfers to completion (or ``max_time``).

        Returns the simulated time at which the last transfer finished.
        """
        guard = 0
        while self._active and self.now < max_time - 1e-12:
            guard += 1
            if guard > 1_000_000:
                raise RuntimeError("run_until_complete exceeded event budget")
            if self._dirty:
                self._reallocate()
            slots = self._active_slots()
            rates = self._rate[slots]
            moving = rates > 1e-12
            if not moving.any():
                raise RuntimeError(
                    "active transfers have zero allocated rate; topology is "
                    "disconnected or capacities are malformed"
                )
            eta = float((self._remaining[slots][moving] / rates[moving]).min())
            self.advance(min(eta, max_time - self.now))
        return self.now

    def transfer_time(self, src: str, dst: str, size: float) -> float:
        """Time to move ``size`` bytes in isolation (no other active transfers)."""
        if self._active:
            raise RuntimeError("transfer_time requires an idle network")
        start = self.now
        self.start_transfer(src, dst, size)
        self.run_until_complete()
        return self.now - start
