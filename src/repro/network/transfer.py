"""Point-to-point transfer helpers used by NetPIPE probes and the baselines.

These wrap :class:`~repro.network.fluid.FluidNetwork` in a convenient
synchronous interface: "run these transfers concurrently, tell me how long
each took and what bandwidth it achieved".  The saturation-tomography
baselines use exactly this to detect link interference (Fig. 2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.network.fluid import FluidNetwork
from repro.network.routing import RoutingTable
from repro.network.topology import Topology


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one bulk transfer.

    Attributes
    ----------
    src, dst:
        Host names.
    size:
        Bytes transferred.
    duration:
        Wall-clock (simulated) seconds from common start to this transfer's
        completion.
    bandwidth:
        Achieved average bandwidth, bytes/second.
    """

    src: str
    dst: str
    size: float
    duration: float
    bandwidth: float


class PointToPointNetwork:
    """Synchronous facade for running sets of concurrent bulk transfers."""

    def __init__(self, topology: Topology, routing: Optional[RoutingTable] = None) -> None:
        self.topology = topology
        self.routing = routing or RoutingTable(topology)
        self.total_busy_time = 0.0
        self.total_bytes = 0.0
        self.measurements_run = 0

    def run_concurrent(
        self, requests: Sequence[Tuple[str, str, float]]
    ) -> List[TransferResult]:
        """Run ``(src, dst, size)`` transfers concurrently from a common start.

        Returns results in the order of ``requests``.  The simulated time
        consumed (completion of the slowest transfer) is accumulated in
        :attr:`total_busy_time`, which is how the baselines' measurement cost
        is accounted.
        """
        if not requests:
            return []
        network = FluidNetwork(self.topology, self.routing)
        transfers = []
        for src, dst, size in requests:
            transfers.append(network.start_transfer(src, dst, float(size)))
        network.run_until_complete()
        results = []
        makespan = 0.0
        for transfer in transfers:
            duration = (transfer.finish_time or network.now) - transfer.start_time
            duration = max(duration, 1e-12)
            results.append(
                TransferResult(
                    src=transfer.src,
                    dst=transfer.dst,
                    size=transfer.size,
                    duration=duration,
                    bandwidth=transfer.size / duration,
                )
            )
            makespan = max(makespan, duration)
            self.total_bytes += transfer.size
        self.total_busy_time += makespan
        self.measurements_run += 1
        return results

    def measure_pair(self, src: str, dst: str, size: float) -> TransferResult:
        """Measure a single pair in isolation (a NetPIPE-style saturation probe)."""
        return self.run_concurrent([(src, dst, size)])[0]

    def measure_pairs_concurrently(
        self, pairs: Sequence[Tuple[str, str]], size: float
    ) -> Dict[Tuple[str, str], TransferResult]:
        """Measure several pairs simultaneously; used for interference probing."""
        results = self.run_concurrent([(src, dst, size) for src, dst in pairs])
        return {(r.src, r.dst): r for r in results}

    def isolated_bandwidth(self, src: str, dst: str) -> float:
        """Theoretical single-flow bandwidth: the bottleneck capacity of the route."""
        return self.routing.bottleneck_capacity(src, dst)
