"""Flow-level network substrate standing in for the Grid'5000 testbed.

The paper measures real hardware; this package provides the synthetic
equivalent: explicit topologies (hosts, switches, links with capacities),
shortest-path routing, and max-min fair bandwidth sharing among concurrent
flows.  That fluid abstraction is exactly what produces the phenomenon the
paper's metric exploits — flows crossing a shared bottleneck get a small
share of it, so BitTorrent moves fewer fragments across the bottleneck.
"""

from repro.network.topology import Host, Link, Switch, Topology, TopologyError
from repro.network.routing import RoutingTable
from repro.network.flows import FlowDemand, max_min_fair_allocation
from repro.network.fluid import FluidNetwork, FluidTransfer
from repro.network.transfer import PointToPointNetwork, TransferResult
from repro.network.grid5000 import (
    GRID5000_SITES,
    Grid5000Builder,
    SiteSpec,
    build_bordeaux_site,
    build_flat_site,
    build_multi_site,
)

__all__ = [
    "Host",
    "Link",
    "Switch",
    "Topology",
    "TopologyError",
    "RoutingTable",
    "FlowDemand",
    "max_min_fair_allocation",
    "FluidNetwork",
    "FluidTransfer",
    "PointToPointNetwork",
    "TransferResult",
    "GRID5000_SITES",
    "Grid5000Builder",
    "SiteSpec",
    "build_bordeaux_site",
    "build_flat_site",
    "build_multi_site",
]
