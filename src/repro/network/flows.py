"""Max-min fair bandwidth allocation among concurrent flows.

This is the bandwidth-sharing model used by flow-level simulators such as
SimGrid (which the baseline tomography papers themselves use): each flow
traverses a fixed set of links; link capacity is divided among the flows
crossing it by *progressive filling* — all unfrozen flows grow their rate
together until some link saturates, the flows crossing that link are frozen
at the fair share, and the process repeats.

The allocation is what makes the BitTorrent fragment metric informative: many
flows squeezed through a 1 GbE bottleneck each get a small rate, so few
fragments cross it, while intra-cluster flows keep a large rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

FlowId = Hashable


@dataclass(frozen=True)
class FlowDemand:
    """A unidirectional flow demand between two hosts.

    Attributes
    ----------
    flow_id:
        Arbitrary hashable identifier (the fluid engine uses transfer ids).
    links:
        Names of the links the flow traverses (order irrelevant).
    rate_cap:
        Optional per-flow rate cap in bytes/second (e.g. an application limit
        or the NIC speed when it is not modelled as a link).
    """

    flow_id: FlowId
    links: Tuple[str, ...]
    rate_cap: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate_cap is not None and self.rate_cap <= 0:
            raise ValueError(f"rate_cap must be positive, got {self.rate_cap}")


#: Above this many flows the vectorized solver is dispatched; below it the
#: scalar reference implementation wins on constant factors.
VECTORIZE_THRESHOLD = 8


def max_min_fair_allocation(
    flows: Sequence[FlowDemand],
    link_capacity: Mapping[str, float],
) -> Dict[FlowId, float]:
    """Compute the max-min fair rate of every flow.

    Dispatches to the vectorized solver in :mod:`repro.network.solver` when
    the flow count exceeds :data:`VECTORIZE_THRESHOLD`; small instances run
    the scalar reference implementation directly.  Both paths produce the
    same allocation (see ``tests/test_solver.py``).

    Parameters
    ----------
    flows:
        Flow demands.  Flows with an empty link list (loopback transfers) are
        only limited by their ``rate_cap`` (infinite if none).
    link_capacity:
        Capacity in bytes/second for every link name referenced by the flows.

    Returns
    -------
    dict
        ``flow_id -> rate`` in bytes/second.

    Raises
    ------
    KeyError
        If a flow references a link absent from ``link_capacity``.
    ValueError
        If a referenced link has non-positive capacity.
    """
    if len(flows) > VECTORIZE_THRESHOLD:
        return _max_min_fair_allocation_vectorized(flows, link_capacity)
    return max_min_fair_allocation_scalar(flows, link_capacity)


def _max_min_fair_allocation_vectorized(
    flows: Sequence[FlowDemand],
    link_capacity: Mapping[str, float],
) -> Dict[FlowId, float]:
    """Vectorized path: index the referenced links, solve on a FlowSet."""
    from repro.network.solver import FlowSet

    link_index: Dict[str, int] = {}
    capacities: List[float] = []
    routes: List[List[int]] = []
    seen_ids = set()
    for flow in flows:
        if flow.flow_id in seen_ids:
            raise ValueError(f"duplicate flow id {flow.flow_id!r}")
        seen_ids.add(flow.flow_id)
        route: List[int] = []
        for link in flow.links:
            index = link_index.get(link)
            if index is None:
                if link not in link_capacity:
                    raise KeyError(
                        f"flow {flow.flow_id!r} references unknown link {link!r}"
                    )
                cap = float(link_capacity[link])
                if cap <= 0:
                    raise ValueError(
                        f"link {link!r} has non-positive capacity {cap}"
                    )
                index = link_index[link] = len(capacities)
                capacities.append(cap)
            route.append(index)
        routes.append(route)

    flow_set = FlowSet(capacities)
    slots = [
        flow_set.add(route, flow.rate_cap) for route, flow in zip(routes, flows)
    ]
    rates = flow_set.solve()
    return {flow.flow_id: float(rates[slot]) for flow, slot in zip(flows, slots)}


def max_min_fair_allocation_scalar(
    flows: Sequence[FlowDemand],
    link_capacity: Mapping[str, float],
) -> Dict[FlowId, float]:
    """Scalar progressive-filling reference implementation.

    Kept as the oracle the vectorized solver is property-tested against; the
    public entry point :func:`max_min_fair_allocation` chooses between the
    two automatically.
    """
    rates: Dict[FlowId, float] = {}
    unfrozen: Dict[FlowId, FlowDemand] = {}

    for flow in flows:
        if flow.flow_id in rates or flow.flow_id in unfrozen:
            raise ValueError(f"duplicate flow id {flow.flow_id!r}")
        if not flow.links:
            rates[flow.flow_id] = flow.rate_cap if flow.rate_cap is not None else float("inf")
        else:
            unfrozen[flow.flow_id] = flow

    # Remaining capacity per link, and which unfrozen flows cross it.
    remaining: Dict[str, float] = {}
    crossing: Dict[str, set] = {}
    for flow in unfrozen.values():
        for link in set(flow.links):
            if link not in link_capacity:
                raise KeyError(f"flow {flow.flow_id!r} references unknown link {link!r}")
            cap = float(link_capacity[link])
            if cap <= 0:
                raise ValueError(f"link {link!r} has non-positive capacity {cap}")
            remaining.setdefault(link, cap)
            crossing.setdefault(link, set()).add(flow.flow_id)

    allocated: Dict[FlowId, float] = {fid: 0.0 for fid in unfrozen}

    # Progressive filling.  Each round either freezes at least one flow
    # (rate-cap bound) or saturates at least one link, so it terminates in at
    # most ``len(flows) + len(links)`` rounds.
    while unfrozen:
        # The common increment is bounded by the tightest link fair-share and
        # by the smallest residual rate cap.
        best_increment = float("inf")
        for link, flow_ids in crossing.items():
            active = [fid for fid in flow_ids if fid in unfrozen]
            if not active:
                continue
            best_increment = min(best_increment, remaining[link] / len(active))
        # Rate caps can only tighten the increment; find the tightest first and
        # only then decide which flows actually reach their cap this round.
        for fid, flow in unfrozen.items():
            if flow.rate_cap is not None:
                residual = flow.rate_cap - allocated[fid]
                if residual < best_increment:
                    best_increment = residual
        capped: List[FlowId] = []
        for fid, flow in unfrozen.items():
            if flow.rate_cap is not None:
                residual = flow.rate_cap - allocated[fid]
                if residual <= best_increment + 1e-12:
                    capped.append(fid)
        if not np.isfinite(best_increment):
            # No links and no caps constrain the remaining flows.
            for fid in list(unfrozen):
                rates[fid] = float("inf")
                del unfrozen[fid]
            break
        best_increment = max(best_increment, 0.0)

        # Apply the increment to all unfrozen flows and update link residuals.
        for fid, flow in unfrozen.items():
            allocated[fid] += best_increment
        for link, flow_ids in crossing.items():
            active = sum(1 for fid in flow_ids if fid in unfrozen)
            if active:
                remaining[link] -= best_increment * active
                if remaining[link] < 0:
                    remaining[link] = 0.0

        # Freeze flows bound by a rate cap.
        for fid in capped:
            flow = unfrozen.pop(fid, None)
            if flow is not None:
                rates[fid] = allocated[fid]

        # Freeze flows crossing a saturated link.
        saturated = [link for link, rem in remaining.items() if rem <= 1e-9]
        for link in saturated:
            for fid in list(crossing.get(link, ())):
                if fid in unfrozen:
                    rates[fid] = allocated[fid]
                    del unfrozen[fid]

        if not capped and not saturated and unfrozen:
            # Defensive: numerical corner where nothing froze; freeze all at
            # the current allocation to guarantee termination.
            for fid in list(unfrozen):
                rates[fid] = allocated[fid]
                del unfrozen[fid]

    return rates


def link_utilisation(
    flows: Sequence[FlowDemand],
    rates: Mapping[FlowId, float],
    link_capacity: Mapping[str, float],
) -> Dict[str, float]:
    """Fraction of each link's capacity consumed by the allocated rates."""
    load: Dict[str, float] = {link: 0.0 for link in link_capacity}
    for flow in flows:
        rate = rates.get(flow.flow_id, 0.0)
        if not np.isfinite(rate):
            continue
        for link in set(flow.links):
            load[link] = load.get(link, 0.0) + rate
    return {
        link: (load.get(link, 0.0) / cap if cap > 0 else 0.0)
        for link, cap in link_capacity.items()
    }


def validate_allocation(
    flows: Sequence[FlowDemand],
    rates: Mapping[FlowId, float],
    link_capacity: Mapping[str, float],
    tol: float = 1e-6,
) -> None:
    """Assert that an allocation is feasible (no link over capacity, caps respected).

    Used by the property-based tests on the allocator.
    """
    for flow in flows:
        rate = rates[flow.flow_id]
        if flow.rate_cap is not None and rate > flow.rate_cap * (1 + tol) + tol:
            raise AssertionError(
                f"flow {flow.flow_id!r} exceeds its rate cap: {rate} > {flow.rate_cap}"
            )
    utilisation = link_utilisation(flows, rates, link_capacity)
    for link, frac in utilisation.items():
        if frac > 1.0 + tol:
            raise AssertionError(f"link {link!r} over capacity: utilisation {frac}")
