"""Vectorized max-min fair allocation over an indexed link set.

This is the batch counterpart of the scalar progressive-filling allocator in
:mod:`repro.network.flows`.  Links are identified by dense integer indices
(see :meth:`repro.network.routing.RoutingTable.link_index`) and the set of
concurrent flows is held in a :class:`FlowSet`: a link×flow incidence
structure stored as flat CSR-style index arrays that is maintained
*incrementally* as flows come and go, so a reallocation never rebuilds the
incidence from Python dicts.

Each progressive-filling round is a handful of NumPy array operations —
``bincount`` for the per-link crossing-flow counts, vector minima for the
common increment, boolean masks for freezing — so the cost per round is
O(entries) in C rather than O(flows × links) in Python.  The arithmetic
mirrors the scalar reference exactly (same increments, same freeze
tolerances), which is what the equivalence property tests in
``tests/test_solver.py`` assert.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

#: Saturation tolerance on residual link capacity (matches the scalar solver).
SATURATION_EPS = 1e-9

#: Tolerance used when deciding that a flow reached its rate cap.
CAP_EPS = 1e-12

class FlowSet:
    """A dynamic set of flows over a fixed, integer-indexed link universe.

    Parameters
    ----------
    link_capacities:
        Capacity (bytes/second) of link ``i`` at index ``i``.  All capacities
        must be positive.

    Notes
    -----
    Slots are recycled: :meth:`add` returns a small integer slot id that
    stays valid until :meth:`remove`.  The link×flow incidence is kept as two
    flat arrays ``(entry_link, entry_flow)``; adding a flow appends its route
    entries, removing one masks its entries out.  Both are single C-level
    array operations, so the structure survives thousands of open/close
    cycles without ever being rebuilt from scratch.
    """

    def __init__(self, link_capacities: Sequence[float]) -> None:
        caps = np.asarray(link_capacities, dtype=np.float64)
        if caps.ndim != 1:
            raise ValueError("link_capacities must be one-dimensional")
        if caps.size and not (caps > 0).all():
            bad = int(np.flatnonzero(caps <= 0)[0])
            raise ValueError(f"link {bad} has non-positive capacity {caps[bad]}")
        self._caps = caps
        self.num_links = int(caps.size)
        # Pool-sized (per-slot) state; grown geometrically.
        pool = 8
        self._active = np.zeros(pool, dtype=bool)
        self._has_links = np.zeros(pool, dtype=bool)
        self._rate_caps = np.full(pool, np.inf, dtype=np.float64)
        self._free: List[int] = list(range(pool - 1, -1, -1))
        # Flat incidence (only entries of active flows are present) stored in
        # oversized buffers; the valid prefix is ``[:_entry_count]``.
        self._entry_link = np.empty(64, dtype=np.int32)
        self._entry_flow = np.empty(64, dtype=np.int32)
        self._entry_count = 0
        self.num_flows = 0

    # ------------------------------------------------------------------ #
    # pool management
    # ------------------------------------------------------------------ #
    @property
    def pool_size(self) -> int:
        """Current slot-array length (valid slot ids are ``< pool_size``)."""
        return int(self._active.size)

    def _grow(self) -> None:
        old = self._active.size
        new = old * 2
        self._active = np.concatenate([self._active, np.zeros(old, dtype=bool)])
        self._has_links = np.concatenate([self._has_links, np.zeros(old, dtype=bool)])
        self._rate_caps = np.concatenate([self._rate_caps, np.full(old, np.inf)])
        self._free.extend(range(new - 1, old - 1, -1))

    def add(
        self,
        link_indices: Sequence[int],
        rate_cap: Optional[float] = None,
        assume_unique: bool = False,
    ) -> int:
        """Register a flow crossing ``link_indices`` and return its slot id.

        Duplicate links in the route count once, as in the scalar allocator;
        callers whose routes are simple paths (e.g. the fluid engine's
        shortest-path routes) pass ``assume_unique=True`` to skip the dedup.
        """
        if rate_cap is not None and rate_cap <= 0:
            raise ValueError(f"rate_cap must be positive, got {rate_cap}")
        route = np.asarray(link_indices, dtype=np.int32)
        if route.size:
            if not assume_unique:
                route = np.unique(route)
            if int(route.min()) < 0 or int(route.max()) >= self.num_links:
                raise IndexError("link index out of range")
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self._active[slot] = True
        self._has_links[slot] = route.size > 0
        self._rate_caps[slot] = np.inf if rate_cap is None else float(rate_cap)
        if route.size:
            end = self._entry_count + route.size
            if end > self._entry_link.size:
                capacity = max(self._entry_link.size * 2, end)
                grown_link = np.empty(capacity, dtype=np.int32)
                grown_flow = np.empty(capacity, dtype=np.int32)
                grown_link[: self._entry_count] = self._entry_link[: self._entry_count]
                grown_flow[: self._entry_count] = self._entry_flow[: self._entry_count]
                self._entry_link = grown_link
                self._entry_flow = grown_flow
            self._entry_link[self._entry_count : end] = route
            self._entry_flow[self._entry_count : end] = slot
            self._entry_count = end
        self.num_flows += 1
        return slot

    def remove(self, slot: int) -> None:
        """Drop the flow in ``slot``; its entries are masked out of the incidence."""
        if not (0 <= slot < self._active.size) or not self._active[slot]:
            raise KeyError(f"slot {slot} is not an active flow")
        self._active[slot] = False
        self._rate_caps[slot] = np.inf
        if self._has_links[slot]:
            count = self._entry_count
            keep = self._entry_flow[:count] != slot
            kept = int(keep.sum())
            if kept != count:
                self._entry_link[:kept] = self._entry_link[:count][keep]
                self._entry_flow[:kept] = self._entry_flow[:count][keep]
                self._entry_count = kept
            self._has_links[slot] = False
        self._free.append(slot)
        self.num_flows -= 1

    def active_slots(self) -> np.ndarray:
        """Slot ids of the active flows, ascending."""
        return np.flatnonzero(self._active)

    # ------------------------------------------------------------------ #
    # capacity changes
    # ------------------------------------------------------------------ #
    def link_capacity(self, link: int) -> float:
        """Current capacity of link ``link`` (bytes/second)."""
        if not 0 <= link < self.num_links:
            raise IndexError(f"link index {link} out of range")
        return float(self._caps[link])

    def set_link_capacity(self, link: int, capacity: float) -> None:
        """Change one link's capacity; takes effect at the next :meth:`solve`.

        Capacity drift is a first-class transition of the multi-tenant
        workload model: callers (``FluidNetwork.set_link_capacity``) must
        settle any anchored byte state *before* mutating, exactly as for a
        flow arrival.
        """
        if not 0 <= link < self.num_links:
            raise IndexError(f"link index {link} out of range")
        if capacity <= 0:
            raise ValueError(f"link capacity must be positive, got {capacity}")
        self._caps[link] = float(capacity)

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #
    def solve(self) -> np.ndarray:
        """Max-min fair rates, indexed by slot id.

        Inactive slots read 0.  Flows with no links and no rate cap read
        ``inf`` (loopback transfers are only bounded by the caller).

        The progressive filling works on arrays compacted to the active
        linked flows, and exploits the filling invariant that every unfrozen
        flow carries the same allocation: the common *fill level* is a
        scalar accumulating exactly the increments the scalar reference adds
        per flow, so the two implementations produce identical rates.
        """
        pool = self._active.size
        rates = np.zeros(pool, dtype=np.float64)
        # Link-free flows are bounded only by their cap.
        loop = self._active & ~self._has_links
        if loop.any():
            rates[loop] = self._rate_caps[loop]
        linked = self._active & self._has_links
        if not linked.any():
            return rates

        slots = np.flatnonzero(linked)
        flow_count = slots.size
        caps = self._rate_caps[slots]
        finite_cap = np.isfinite(caps)
        any_finite_cap = bool(finite_cap.any())
        entry_link = self._entry_link[: self._entry_count]
        # Entries reference pool slots; renumber them to the compact ids.
        entry_flow = np.searchsorted(slots, self._entry_flow[: self._entry_count])

        out = np.zeros(flow_count, dtype=np.float64)
        unfrozen = np.ones(flow_count, dtype=bool)
        remaining = self._caps.copy()
        fill = 0.0

        # Every unfrozen flow crosses at least one link, so some link always
        # has a positive crossing count and the common increment is finite.
        # Each round freezes at least one flow (defensively: all of them),
        # so the loop terminates after at most flow_count rounds.
        for _ in range(flow_count + self.num_links + 2):
            entry_live = unfrozen[entry_flow]
            counts = np.bincount(entry_link[entry_live], minlength=self.num_links)
            crossed = counts > 0
            increment = float((remaining[crossed] / counts[crossed]).min())
            frozen = np.zeros(flow_count, dtype=bool)
            if any_finite_cap:
                cap_flows = unfrozen & finite_cap
                if cap_flows.any():
                    residual = caps[cap_flows] - fill
                    res_min = float(residual.min())
                    if res_min < increment:
                        increment = res_min
                    frozen[np.flatnonzero(cap_flows)[residual <= increment + CAP_EPS]] = True
            if increment < 0.0:
                increment = 0.0

            fill += increment
            remaining -= increment * counts
            np.maximum(remaining, 0.0, out=remaining)

            saturated = crossed & (remaining <= SATURATION_EPS)
            if saturated.any():
                frozen[entry_flow[entry_live & saturated[entry_link]]] = True
            frozen &= unfrozen
            if not frozen.any():
                # Numerical corner: freeze everything to guarantee termination.
                frozen = unfrozen.copy()
            out[frozen] = fill
            unfrozen &= ~frozen
            if not unfrozen.any():
                break
        rates[slots] = out
        return rates

    def __len__(self) -> int:
        return self.num_flows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowSet(links={self.num_links}, flows={self.num_flows}, "
            f"entries={self._entry_count})"
        )


def solve_indexed(
    routes: Sequence[Sequence[int]],
    link_capacities: Sequence[float],
    rate_caps: Optional[Sequence[Optional[float]]] = None,
) -> np.ndarray:
    """One-shot vectorized allocation for pre-indexed routes.

    Convenience wrapper used by the functional dispatch path and the
    benchmarks: builds a transient :class:`FlowSet`, adds every route, and
    returns the rate vector aligned with ``routes``.
    """
    flow_set = FlowSet(link_capacities)
    slots = np.empty(len(routes), dtype=np.int64)
    for i, route in enumerate(routes):
        cap = None if rate_caps is None else rate_caps[i]
        slots[i] = flow_set.add(route, cap)
    rates = flow_set.solve()
    return rates[slots]
