"""repro — reproduction of Dichev, Reid & Lastovetsky (SC 2012).

*Efficient and reliable network tomography in heterogeneous networks using
BitTorrent broadcasts and clustering algorithms.*

The package provides:

* :mod:`repro.network` — a flow-level network simulator with Grid'5000-like
  topologies (the testbed substitute);
* :mod:`repro.bittorrent` — a synchronized, instrumented BitTorrent broadcast
  simulator (the measurement substrate);
* :mod:`repro.tomography` — the paper's contribution: the fragment metric,
  measurement campaigns, the end-to-end pipeline, NetPIPE probes and the
  classical saturation-tomography baselines;
* :mod:`repro.clustering` — Louvain modularity clustering, Infomap, and NMI
  evaluation measures;
* :mod:`repro.analysis` — layouts, convergence curves and rendering;
* :mod:`repro.experiments` — the paper's named datasets and per-figure
  runners;
* :mod:`repro.scenarios` — the declarative scenario registry and the
  pluggable campaign executors (serial / process-pool) behind
  ``python -m repro run <scenario>``.

Quickstart
----------
>>> from repro.experiments import dataset
>>> from repro.tomography.pipeline import TomographyPipeline, default_swarm_config
>>> ds = dataset("G-T", per_site=6)
>>> pipeline = TomographyPipeline(ds.topology, hosts=ds.hosts,
...                               ground_truth=ds.ground_truth,
...                               config=default_swarm_config(300), seed=1)
>>> result = pipeline.run(iterations=4)
>>> result.num_clusters
2
"""

from repro.tomography.pipeline import TomographyPipeline, TomographyResult, default_swarm_config
from repro.tomography.measurement import MeasurementCampaign
from repro.tomography.metric import EdgeMetric, aggregate_mean, metric_graph
from repro.bittorrent.swarm import BitTorrentBroadcast, SwarmConfig
from repro.bittorrent.torrent import TorrentMeta
from repro.clustering.louvain import louvain
from repro.clustering.nmi import normalized_mutual_information, overlapping_nmi
from repro.clustering.partition import Partition
from repro.graph.wgraph import WeightedGraph
from repro.network.grid5000 import Grid5000Builder, build_bordeaux_site, build_flat_site, build_multi_site
from repro.network.topology import Topology
from repro.scenarios import (
    CampaignExecutor,
    ProcessPoolExecutor,
    ScenarioSpec,
    SerialExecutor,
    all_scenarios,
    get_scenario,
    scenario_names,
)

__version__ = "1.0.0"

__all__ = [
    "TomographyPipeline",
    "TomographyResult",
    "default_swarm_config",
    "MeasurementCampaign",
    "EdgeMetric",
    "aggregate_mean",
    "metric_graph",
    "BitTorrentBroadcast",
    "SwarmConfig",
    "TorrentMeta",
    "louvain",
    "normalized_mutual_information",
    "overlapping_nmi",
    "Partition",
    "WeightedGraph",
    "Grid5000Builder",
    "build_bordeaux_site",
    "build_flat_site",
    "build_multi_site",
    "Topology",
    "CampaignExecutor",
    "ProcessPoolExecutor",
    "ScenarioSpec",
    "SerialExecutor",
    "all_scenarios",
    "get_scenario",
    "scenario_names",
    "__version__",
]
