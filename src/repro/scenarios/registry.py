"""Decorator-based scenario registry.

Scenarios register themselves at import time:

>>> @scenario("G-T", family="paper", description="Grenoble + Toulouse")
... def _gt(per_site: int = 8) -> Dataset:
...     return dataset_gt(per_site=per_site)

>>> @runner_scenario("netpipe", family="figure", description="NetPIPE probes")
... def _netpipe(iterations, num_fragments, seed, executor=None, **extra):
...     return run_netpipe_reference(**extra)

The CLI (``repro run/list/sweep``) and the benchmark harness resolve names
through :func:`get_scenario`; the built-in catalogue lives in
:mod:`repro.scenarios.catalog` and is imported by the package ``__init__``
so that every entry point sees the same registry.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.scenarios.spec import ScenarioSpec

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a spec to the registry; duplicate names are a programming error."""
    if spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a scenario (used by tests to keep the registry clean)."""
    _REGISTRY.pop(name, None)


def scenario(
    name: str,
    *,
    family: str,
    description: str = "",
    iterations: int = 8,
    num_fragments: int = 600,
    seed: int = 2012,
    rotate_root: bool = False,
    track_convergence: bool = True,
    tags: tuple = (),
    formatter: Optional[Callable] = None,
) -> Callable[[Callable], Callable]:
    """Register the decorated dataset factory as a campaign scenario."""

    def wrap(factory: Callable) -> Callable:
        register(
            ScenarioSpec(
                name=name,
                family=family,
                description=description or _first_doc_line(factory),
                dataset_factory=factory,
                iterations=iterations,
                num_fragments=num_fragments,
                seed=seed,
                rotate_root=rotate_root,
                track_convergence=track_convergence,
                tags=tuple(tags),
                formatter=formatter,
            )
        )
        return factory

    return wrap


def runner_scenario(
    name: str,
    *,
    family: str,
    description: str = "",
    iterations: int = 8,
    num_fragments: int = 600,
    seed: int = 2012,
    tags: tuple = (),
    formatter: Optional[Callable] = None,
) -> Callable[[Callable], Callable]:
    """Register the decorated callable as a custom-runner scenario."""

    def wrap(runner: Callable) -> Callable:
        register(
            ScenarioSpec(
                name=name,
                family=family,
                description=description or _first_doc_line(runner),
                runner=runner,
                iterations=iterations,
                num_fragments=num_fragments,
                seed=seed,
                tags=tuple(tags),
                formatter=formatter,
            )
        )
        return runner

    return wrap


def _first_doc_line(fn: Callable) -> str:
    doc = (fn.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


# ---------------------------------------------------------------------- #
# lookups
# ---------------------------------------------------------------------- #
_catalog_loaded = False


def _ensure_catalog() -> None:
    """Load the built-in catalogue on first lookup.

    The catalogue imports the experiment runners, which in turn import the
    executor backends from this package — loading it lazily (instead of in
    the package ``__init__``) keeps that cycle open.
    """
    global _catalog_loaded
    if not _catalog_loaded:
        _catalog_loaded = True
        from repro.scenarios import catalog  # noqa: F401  (import side effects)


def get_scenario(name: str) -> ScenarioSpec:
    """Resolve a registered scenario by name."""
    _ensure_catalog()
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(scenario_names())}"
        ) from exc


def scenario_names() -> List[str]:
    """All registered names, sorted."""
    _ensure_catalog()
    return sorted(_REGISTRY)


def all_scenarios(family: Optional[str] = None) -> List[ScenarioSpec]:
    """All specs (optionally one family), sorted by (family, name)."""
    _ensure_catalog()
    specs = [
        spec
        for spec in _REGISTRY.values()
        if family is None or spec.family == family
    ]
    return sorted(specs, key=lambda s: (s.family, s.name))


def families() -> List[str]:
    """The distinct scenario families, sorted."""
    _ensure_catalog()
    return sorted({spec.family for spec in _REGISTRY.values()})
