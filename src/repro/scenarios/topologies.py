"""Generated scenario families beyond the paper's Grid'5000 menu.

The paper evaluates on a fixed catalogue of Grid'5000 configurations.  The
factories here generate *families* of settings the paper never measured, to
exercise the tomography method on qualitatively different substrates:

* :func:`fat_tree_dataset` — a single-rooted fat-tree data centre with a
  configurable edge oversubscription ratio; oversubscribed racks become
  logical clusters, a non-blocking fabric collapses to one;
* :func:`random_bottleneck_dataset` — a flat site where a seeded layout RNG
  hides undersized uplinks behind randomly chosen clusters (the "find the
  bottleneck you didn't place" stress test);
* :func:`hetero_uplink_dataset` — several Grid'5000 sites whose Renater
  uplinks are provisioned heterogeneously, with a global ``squeeze`` knob
  made for parameter sweeps.

All three return the same :class:`~repro.experiments.datasets.Dataset`
bundle as the paper's factories, so the generic campaign pipeline, the CLI
and the benchmarks treat them identically.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.clustering.partition import Partition
from repro.experiments.datasets import (
    Dataset,
    PaperExpectation,
    REFERENCE_PER_SITE,
)
from repro.network.grid5000 import (
    ACCESS_LATENCY,
    GRID5000_SITES,
    INTRA_SITE_LATENCY,
    NODE_ACCESS_CAPACITY,
    RENATER_CAPACITY,
    Grid5000Builder,
    default_cluster_of,
)
from repro.network.topology import GBPS, MBPS, Host, Switch, Topology
from repro.simulation.rng import derive_seed

#: Edge oversubscription at or above which a rack's uplink is contended
#: enough under all-to-all load to form its own logical cluster.
FAT_TREE_SPLIT_OVERSUBSCRIPTION = 2.0


def fat_tree_dataset(
    racks: int = 4,
    hosts_per_rack: int = 4,
    oversubscription: float = 4.0,
) -> Dataset:
    """A single-rooted fat-tree site with oversubscribed rack uplinks.

    Each rack's edge switch reaches the core through an uplink of capacity
    ``hosts_per_rack * access / oversubscription``.  With
    ``oversubscription >= 2`` the uplink saturates under all-to-all load and
    every rack is a logical cluster; a non-blocking fabric
    (``oversubscription <= 1``) has no internal contrast and the logical
    ground truth is a single cluster.
    """
    if racks < 2:
        raise ValueError("a fat-tree scenario needs at least two racks")
    if hosts_per_rack < 2:
        raise ValueError("each rack needs at least two hosts")
    if oversubscription <= 0:
        raise ValueError("oversubscription must be positive")

    uplink = hosts_per_rack * NODE_ACCESS_CAPACITY / oversubscription
    topology = Topology(name=f"fat-tree-{racks}x{hosts_per_rack}")
    topology.add_switch(Switch(name="core", site="dc"))
    rack_members: List[List[str]] = []
    for r in range(racks):
        edge = topology.add_switch(Switch(name=f"edge-{r}", site="dc"))
        topology.add_link(edge.name, "core", capacity=uplink, latency=INTRA_SITE_LATENCY)
        members: List[str] = []
        for i in range(hosts_per_rack):
            host = topology.add_host(
                Host(name=f"dc.rack{r}-{i}", site="dc", cluster=f"rack{r}")
            )
            topology.add_link(
                host.name, edge.name, capacity=NODE_ACCESS_CAPACITY, latency=ACCESS_LATENCY
            )
            members.append(host.name)
        rack_members.append(members)
    topology.validate_connected()

    hosts = topology.host_names
    split = oversubscription >= FAT_TREE_SPLIT_OVERSUBSCRIPTION
    if split:
        ground_truth = Partition([set(members) for members in rack_members])
        expected = racks
        shape = f"{racks} oversubscribed racks, one logical cluster each"
    else:
        ground_truth = Partition.whole(hosts)
        expected = 1
        shape = "non-blocking fabric, single logical cluster"
    expectation = PaperExpectation(
        expected_clusters=expected,
        paper_nmi=1.0,
        paper_iterations_to_converge=4,
        description=f"fat-tree {racks}x{hosts_per_rack}, "
        f"{oversubscription:g}:1 edge oversubscription — {shape}",
    )
    return Dataset(
        name=f"FATTREE-{racks}x{hosts_per_rack}",
        topology=topology,
        hosts=hosts,
        ground_truth=ground_truth,
        expectation=expectation,
        site_of={h: "dc" for h in hosts},
    )


def random_bottleneck_dataset(
    clusters: int = 5,
    hosts_per_cluster: int = 4,
    num_bottlenecks: int = 2,
    layout_seed: int = 1,
    bottleneck_capacity: float = 250 * MBPS,
    fast_capacity: float = 10 * GBPS,
) -> Dataset:
    """A flat site whose bottlenecks are placed by a seeded layout RNG.

    ``num_bottlenecks`` of the ``clusters`` Ethernet clusters are picked (by
    a stream derived from ``layout_seed``, independent of the measurement
    seed) to sit behind a severely undersized uplink.  The logical ground
    truth is one cluster per bottlenecked group plus a single merged cluster
    of all well-connected groups — the tomography has to find bottlenecks
    whose placement the experimenter did not choose.
    """
    if clusters < 2:
        raise ValueError("need at least two clusters")
    if hosts_per_cluster < 2:
        raise ValueError("each cluster needs at least two hosts")
    if not 1 <= num_bottlenecks <= clusters:
        raise ValueError("num_bottlenecks must be in [1, clusters]")

    rng = np.random.default_rng(derive_seed(layout_seed, "random-bottleneck"))
    slow = set(int(i) for i in rng.choice(clusters, size=num_bottlenecks, replace=False))

    topology = Topology(name=f"random-bottleneck-s{layout_seed}")
    topology.add_switch(Switch(name="core", site="dc"))
    members: Dict[int, List[str]] = {}
    for c in range(clusters):
        switch = topology.add_switch(Switch(name=f"c{c}.switch", site="dc"))
        capacity = bottleneck_capacity if c in slow else fast_capacity
        topology.add_link(
            switch.name,
            "core",
            capacity=capacity,
            latency=INTRA_SITE_LATENCY,
            name=f"c{c}.uplink" + (".bottleneck" if c in slow else ""),
        )
        members[c] = []
        for i in range(hosts_per_cluster):
            host = topology.add_host(
                Host(name=f"dc.c{c}-{i}", site="dc", cluster=f"c{c}")
            )
            topology.add_link(
                host.name, switch.name, capacity=NODE_ACCESS_CAPACITY, latency=ACCESS_LATENCY
            )
            members[c].append(host.name)
    topology.validate_connected()

    hosts = topology.host_names
    groups = [set(members[c]) for c in sorted(slow)]
    open_hosts = {h for c, names in members.items() if c not in slow for h in names}
    if open_hosts:
        groups.append(open_hosts)
    ground_truth = Partition(groups)
    expectation = PaperExpectation(
        expected_clusters=len(groups),
        paper_nmi=1.0,
        paper_iterations_to_converge=4,
        description=f"{clusters} clusters, {num_bottlenecks} random bottlenecks "
        f"(layout seed {layout_seed}: clusters {sorted(slow)})",
    )
    return Dataset(
        name=f"RANDBOT-{layout_seed}",
        topology=topology,
        hosts=hosts,
        ground_truth=ground_truth,
        expectation=expectation,
        site_of={h: "dc" for h in hosts},
    )


def hetero_uplink_dataset(
    per_site: int = 6,
    sites: Sequence[str] = ("grenoble", "toulouse", "lyon"),
    uplink_scales: Sequence[float] = (1.0, 0.45, 0.15),
    squeeze: float = 1.0,
) -> Dataset:
    """Grid'5000 sites with heterogeneously provisioned Renater uplinks.

    Site ``i`` joins the backbone through an uplink of capacity
    ``RENATER * uplink_scales[i] * squeeze`` (scaled to the requested
    per-site node count, as the paper-dataset factories do).  ``squeeze``
    uniformly tightens every uplink and is the natural axis for
    ``repro sweep HETERO-UPLINK --param squeeze``: large values leave the
    WAN uncontended (sites split only by TCP-window latency caps), small
    values progressively strangle the slowest sites.
    """
    if len(sites) < 2:
        raise ValueError("need at least two sites")
    if len(uplink_scales) != len(sites):
        raise ValueError("uplink_scales must match sites")
    if any(s <= 0 for s in uplink_scales) or squeeze <= 0:
        raise ValueError("uplink scales and squeeze must be positive")
    unknown = [s for s in sites if s not in GRID5000_SITES]
    if unknown:
        raise ValueError(f"unknown Grid'5000 sites: {unknown}")

    builder = Grid5000Builder()
    topology = Topology(name="hetero-uplink-" + "-".join(sites))
    core = "renater.core"
    topology.add_switch(Switch(name=core, site="renater"))
    base = RENATER_CAPACITY * min(per_site / float(REFERENCE_PER_SITE), 1.0)
    members: Dict[str, List[str]] = {}
    for site, scale in zip(sites, uplink_scales):
        router = builder.build_site(topology, site, {default_cluster_of(site): per_site})
        spec = GRID5000_SITES[site]
        topology.add_link(
            router,
            core,
            capacity=base * scale * squeeze,
            latency=spec.wan_latency,
            name=f"renater.{site}",
        )
        members[site] = [h for h in topology.host_names if topology.host(h).site == site]
    topology.validate_connected()

    hosts = topology.host_names
    ground_truth = Partition([set(names) for names in members.values()])
    expectation = PaperExpectation(
        expected_clusters=len(sites),
        paper_nmi=1.0,
        paper_iterations_to_converge=6,
        description="heterogeneous uplinks "
        + ", ".join(f"{s}×{u:g}" for s, u in zip(sites, uplink_scales))
        + f" (squeeze {squeeze:g})",
    )
    return Dataset(
        name="HETERO-UPLINK",
        topology=topology,
        hosts=hosts,
        ground_truth=ground_truth,
        expectation=expectation,
        site_of={h: topology.host(h).site for h in hosts},
    )
