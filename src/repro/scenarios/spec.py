"""Declarative scenario specifications.

A :class:`ScenarioSpec` bundles everything needed to reproduce one
experimental setting: how to build the substrate (topology + hosts + ground
truth, via a :class:`~repro.experiments.datasets.Dataset` factory), the
campaign parameters (iterations, fragments per broadcast, seed, root
rotation), and the expectations recorded on the dataset.  Specs are frozen:
running one never mutates it, so the same spec can be executed repeatedly,
swept over parameter grids, and fanned out across executor backends.

Two flavours exist:

* *campaign scenarios* carry a ``dataset_factory`` and run the standard
  measure → aggregate → cluster → evaluate pipeline;
* *runner scenarios* carry a custom ``runner`` callable for experiments that
  do not fit the single-campaign mould (Fig. 4/5/13, broadcast efficiency,
  baseline cost, NetPIPE probes).

Both produce a plain summary dictionary; :func:`to_jsonable` strips it down
to what can be written with ``json.dump`` (the CLI's ``--json`` output).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.datasets import Dataset
from repro.scenarios.executors import CampaignExecutor

#: Campaign parameters every scenario understands; ``ScenarioSpec.run``
#: resolves them from spec defaults and per-run overrides.
CAMPAIGN_PARAMS = ("iterations", "num_fragments", "seed")


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered experimental scenario.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"B-G-T"`` or ``"FATTREE-4x4"``.
    family:
        Scenario family (``"paper"``, ``"figure"``, ``"fat-tree"``, ...);
        used for grouping in ``repro list`` and for sweep selection.
    description:
        One-line human description.
    dataset_factory:
        Builds the topology/hosts/ground-truth bundle; keyword arguments are
        the scenario's tunables (e.g. ``per_site``).  Exactly one of
        ``dataset_factory`` and ``runner`` must be set.
    runner:
        Custom experiment body for scenarios that are not a single campaign.
        Called as ``runner(iterations=..., num_fragments=..., seed=...,
        executor=..., **extra_overrides)`` and must return a summary dict.
    iterations / num_fragments / seed:
        Campaign defaults, overridable per run.
    rotate_root:
        Whether the campaign rotates the seeding root across iterations.
    track_convergence:
        Whether the default pipeline records the NMI-vs-iterations curve.
    stepping:
        Swarm control-loop stepping policy (``"fixed"``/``"event"``) the
        scenario pins, or ``None`` to follow the environment default
        (``REPRO_STEPPING``, ultimately ``"event"``).  Both policies produce
        bit-for-bit identical measurements (docs/simulation.md).
    tags:
        Free-form labels (``"beyond-paper"``, ``"sweepable"``, ...).
    formatter:
        Optional summary → human-readable text renderer used by the CLI.
    """

    name: str
    family: str
    description: str = ""
    dataset_factory: Optional[Callable[..., Dataset]] = None
    runner: Optional[Callable[..., Dict[str, object]]] = None
    iterations: int = 8
    num_fragments: int = 600
    seed: int = 2012
    rotate_root: bool = False
    track_convergence: bool = True
    stepping: Optional[str] = None
    tags: Tuple[str, ...] = ()
    formatter: Optional[Callable[[Dict[str, object]], str]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if (self.dataset_factory is None) == (self.runner is None):
            raise ValueError(
                f"scenario {self.name!r} needs exactly one of "
                "dataset_factory or runner"
            )
        if self.iterations < 1:
            raise ValueError("iterations must be at least 1")
        if self.num_fragments < 1:
            raise ValueError("num_fragments must be at least 1")

    # ------------------------------------------------------------------ #
    @property
    def kind(self) -> str:
        return "campaign" if self.dataset_factory is not None else "runner"

    def build_dataset(self, **overrides) -> Dataset:
        """Instantiate the scenario's dataset (campaign scenarios only)."""
        if self.dataset_factory is None:
            raise ValueError(f"scenario {self.name!r} has no dataset (custom runner)")
        return self.dataset_factory(**overrides)

    def unknown_overrides(self, overrides: Mapping[str, object]) -> List[str]:
        """Override names the scenario's tunable surface does not accept.

        Campaign overrides go to the dataset factory, runner overrides to
        the runner; a ``**kwargs`` in either accepts everything.  Used by
        the CLI to reject typos up front instead of catching ``TypeError``
        around the whole run (which would swallow genuine bugs).
        """
        target = self.dataset_factory or self.runner
        parameters = inspect.signature(target).parameters
        if any(p.kind == p.VAR_KEYWORD for p in parameters.values()):
            return []
        return sorted(k for k in overrides if k not in parameters)

    def run(
        self,
        executor: Optional[CampaignExecutor] = None,
        iterations: Optional[int] = None,
        num_fragments: Optional[int] = None,
        seed: Optional[int] = None,
        track_convergence: Optional[bool] = None,
        stepping: Optional[str] = None,
        workload: Optional[object] = None,
        faults: Optional[object] = None,
        quorum: Optional[int] = None,
        detect_factor: Optional[float] = None,
        **overrides,
    ) -> Dict[str, object]:
        """Execute the scenario and return its summary dictionary.

        ``overrides`` are forwarded to the dataset factory (campaign
        scenarios) or the custom runner; campaign parameters default to the
        spec's values.  ``workload`` (a preset name or
        :class:`~repro.workloads.WorkloadSpec`) layers a multi-tenant
        interference workload under the measurement campaign; ``faults``
        (a preset name or :class:`~repro.faults.FaultPlan`) injects
        deterministic failures, and ``quorum`` lets the campaign proceed
        with ≥k surviving iterations.  The summary always carries
        ``scenario``, ``family``, ``executor`` and ``stepping`` keys so
        downstream records know what produced them.
        """
        iterations = self.iterations if iterations is None else iterations
        num_fragments = self.num_fragments if num_fragments is None else num_fragments
        seed = self.seed if seed is None else seed
        track = self.track_convergence if track_convergence is None else track_convergence
        stepping = self.stepping if stepping is None else stepping

        if self.runner is not None:
            if track_convergence is not None:
                # Only forward an *explicit* request: runners that have no
                # convergence notion then raise a clear TypeError instead of
                # silently ignoring the caller's toggle.
                overrides = {**overrides, "track_convergence": track_convergence}
            parameters = inspect.signature(self.runner).parameters
            accepts_kwargs = any(
                p.kind == p.VAR_KEYWORD for p in parameters.values()
            )
            if stepping is not None:
                # Forward the stepping policy only to runners that take it:
                # swarm-less experiments (e.g. the NetPIPE probes) have no
                # control loop, so a suite-wide default must not break them.
                if "stepping" in parameters or accepts_kwargs:
                    overrides = {**overrides, "stepping": stepping}
            if workload is not None:
                # Same contract for the interference workload: an explicit
                # request against a runner with no measurement campaign
                # (NetPIPE) raises instead of being silently dropped.
                overrides = {**overrides, "workload": workload}
            if faults is not None:
                # And for fault plans — explicit-only, never silently lost.
                overrides = {**overrides, "faults": faults}
            if quorum is not None:
                overrides = {**overrides, "quorum": quorum}
            if detect_factor is not None:
                # The detector threshold only means something to runners
                # with a failure-detection stage; anywhere else an explicit
                # request is an error, not a silently ignored knob.
                if "detect_factor" not in parameters and not accepts_kwargs:
                    raise ValueError(
                        f"scenario {self.name} has no failure detector; "
                        "--detect-factor only applies to fault-injection "
                        "scenarios"
                    )
                overrides = {**overrides, "detect_factor": detect_factor}
            summary = self.runner(
                iterations=iterations,
                num_fragments=num_fragments,
                seed=seed,
                executor=executor,
                **overrides,
            )
        else:
            from repro.experiments.runners import run_dataset_clustering

            if detect_factor is not None:
                raise ValueError(
                    f"scenario {self.name} has no failure detector; "
                    "--detect-factor only applies to fault-injection "
                    "scenarios"
                )
            ds = self.build_dataset(**overrides)
            summary = run_dataset_clustering(
                ds,
                iterations=iterations,
                num_fragments=num_fragments,
                seed=seed,
                track_convergence=track,
                rotate_root=self.rotate_root,
                executor=executor,
                stepping=stepping,
                workload=workload,
                faults=faults,
                quorum=quorum,
            )
        from repro.bittorrent.swarm import default_stepping

        summary["scenario"] = self.name
        summary["family"] = self.family
        # Runners that cannot fan out (workload campaigns are serial-only)
        # pre-stamp their actual backend; everything else records the one it
        # was handed.
        summary.setdefault(
            "executor", executor.name if executor is not None else "serial"
        )
        summary.setdefault("stepping", stepping or default_stepping())
        summary["iterations_run"] = iterations
        summary["seed_used"] = seed
        return summary

    def format(self, summary: Mapping[str, object]) -> str:
        """Render a summary for terminal output."""
        if self.formatter is not None:
            return self.formatter(dict(summary))
        return default_format(dict(summary))

    def describe(self) -> str:
        """One-line listing entry."""
        kind = "campaign" if self.dataset_factory is not None else "runner"
        return f"{self.name:16s} [{self.family}/{kind}] {self.description}"


# ---------------------------------------------------------------------- #
# summary rendering and JSON conversion
# ---------------------------------------------------------------------- #
def default_format(summary: Dict[str, object]) -> str:
    """Generic fallback rendering: every scalar entry, one per line."""
    lines = [f"scenario {summary.get('scenario', '?')} "
             f"(family {summary.get('family', '?')}, "
             f"executor {summary.get('executor', '?')})"]
    for key, value in summary.items():
        if key in ("scenario", "family", "executor"):
            continue
        if isinstance(value, (str, int, float, bool)) or value is None:
            lines.append(f"  {key}: {value}")
    return "\n".join(lines)


#: Sentinel for values that cannot be represented in JSON output.
_OMIT = object()

#: Keys of heavyweight in-memory objects stripped from JSON summaries.
_HEAVY_KEYS = frozenset({"result", "record"})


def to_jsonable(value: object) -> object:
    """Best-effort conversion of a summary value into JSON-encodable data.

    Simulation objects that have no sensible JSON form (pipeline results,
    measurement records, graphs) collapse to the internal ``_OMIT`` marker
    and are dropped from their containing dict/list by the caller.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, Mapping):
        out = {}
        for key, item in value.items():
            converted = to_jsonable(item)
            if converted is not _OMIT:
                out[str(key)] = converted
        return out
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [to_jsonable(item) for item in value]
        return [item for item in items if item is not _OMIT]
    # Convergence studies appear as values in fig13-style summaries.
    curve = getattr(value, "curve", None)
    dataset = getattr(value, "dataset", None)
    if curve is not None and dataset is not None:
        return {"dataset": dataset, "curve": [float(v) for v in curve]}
    return _OMIT


def jsonable_summary(summary: Mapping[str, object]) -> Dict[str, object]:
    """The JSON-encodable projection of a scenario summary."""
    out = {}
    for key, value in summary.items():
        if key in _HEAVY_KEYS:
            continue
        converted = to_jsonable(value)
        if converted is not _OMIT:
            out[str(key)] = converted
    return out
