"""Campaign executors: pluggable backends for independent seeded broadcasts.

A measurement campaign is a sequence of *independent* instrumented
broadcasts: iteration ``i`` draws from its own random stream, derived
statelessly from the base seed and the label ``("broadcast", i)`` (see
:mod:`repro.simulation.rng`).  Nothing couples one iteration to the next, so
the campaign is embarrassingly parallel — as long as the per-iteration
streams and the record order are preserved, a parallel run is bit-for-bit
identical to the serial one.

This module makes that fan-out explicit:

* :class:`BroadcastTask` — a picklable chunk of per-seed broadcasts sharing
  one topology/config (the unit of work shipped to a backend);
* :class:`CampaignExecutor` — the backend interface;
* :class:`SerialExecutor` — runs chunks in-process (the reference backend);
* :class:`ProcessPoolExecutor` — fans chunks out across worker processes;
* :class:`BatchedExecutor` — runs a chunk's seeds as lanes of one lock-step
  array program (:class:`~repro.bittorrent.batched.BatchedBroadcast`),
  falling back to the scalar path for workload/fault tasks.

Executors are injected into :class:`~repro.tomography.measurement
.MeasurementCampaign` and :class:`~repro.tomography.pipeline
.TomographyPipeline`; ``tests/test_executors.py`` pins the bit-for-bit
equality between backends.  On a single-core box the process pool only adds
overhead — the point is that campaign wall-clock scales ~linearly with cores
on real hardware without touching the experiment code.
"""

from __future__ import annotations

import math
import os
import time
from concurrent import futures
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.bittorrent.swarm import BitTorrentBroadcast, BroadcastResult, SwarmConfig
from repro.network.topology import Topology
from repro.observability.metrics import METRICS, MetricsSnapshot
from repro.observability.tracer import TRACER, trace_from_env
from repro.simulation.rng import RandomStreams

#: One broadcast of a task: the random-stream label path (relative to the
#: task's base seed) and the seeding root (``None`` → first host).
IterationSpec = Tuple[Tuple[object, ...], Optional[str]]

#: Environment variable naming the default backend (``serial``/``process``).
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: Environment variable overriding the process-pool worker count.
WORKERS_ENV = "REPRO_EXECUTOR_WORKERS"


@dataclass(frozen=True)
class BroadcastTask:
    """A chunk of independent seeded broadcasts on one topology.

    Everything needed to replay the broadcasts is carried by value (the task
    must survive pickling into a worker process): the substrate, the swarm
    configuration, the participating hosts, the base seed, and one
    :data:`IterationSpec` per broadcast.  The worker derives each broadcast's
    generator as ``RandomStreams(base_seed).stream(*labels)`` — the same
    stateless derivation the serial path uses, which is what makes parallel
    execution bit-for-bit identical.

    ``workload`` and ``faults`` carry the campaign's multi-tenant
    interference spec and fault plan (both frozen and picklable) into the
    worker; when either is set the broadcasts run through
    :func:`~repro.workloads.spec.run_workload_iteration` on the shared
    workload agenda, with the iteration index recovered from each spec's
    stream label — so ``--executor process`` campaigns run the exact
    workload the serial path runs instead of silently dropping it.
    """

    topology: Topology
    config: SwarmConfig
    hosts: Optional[Tuple[str, ...]]
    base_seed: int
    specs: Tuple[IterationSpec, ...]
    workload: Optional[object] = None
    faults: Optional[object] = None


@dataclass(frozen=True)
class TaskOutput:
    """What a worker ships back for one task: the broadcast results in spec
    order plus, for multi-tenant tasks, the per-iteration actor stats
    (``None`` entries for plain single-tenant broadcasts).

    ``metrics`` is the :class:`~repro.observability.metrics.MetricsSnapshot`
    *delta* the task accumulated in its process.  Only the process-pool
    backend merges it into the parent registry — serial and batched tasks
    run in-process, where the counters already landed in the global
    registry, and merging again would double-count.
    """

    results: Tuple[BroadcastResult, ...]
    stats: Tuple[Optional[List[dict]], ...]
    metrics: Optional[MetricsSnapshot] = None


def _execute_task_body(task: BroadcastTask) -> TaskOutput:
    hosts = list(task.hosts) if task.hosts is not None else None
    if task.workload is not None or task.faults is not None:
        from repro.network.routing import RoutingTable
        from repro.workloads.spec import run_workload_iteration

        routing = RoutingTable(task.topology)
        results: List[BroadcastResult] = []
        stats: List[Optional[List[dict]]] = []
        for labels, root in task.specs:
            result, actor_stats = run_workload_iteration(
                task.topology,
                task.config,
                hosts,
                root,
                task.base_seed,
                int(labels[-1]),
                task.workload,
                routing=routing,
                faults=task.faults,
            )
            results.append(result)
            stats.append(actor_stats)
        return TaskOutput(tuple(results), tuple(stats))

    broadcast = BitTorrentBroadcast(task.topology, task.config, hosts=hosts)
    streams = RandomStreams(task.base_seed)
    results = [
        broadcast.run(root=root, rng=streams.stream(*labels))
        for labels, root in task.specs
    ]
    return TaskOutput(tuple(results), tuple(None for _ in results))


def execute_task_output(task: BroadcastTask) -> TaskOutput:
    """Run every broadcast of a task in order (the worker entry point).

    Single-tenant tasks build one :class:`BitTorrentBroadcast` (and routing
    table) per task, mirroring the serial campaign's reuse across
    iterations; multi-tenant tasks route every iteration through the shared
    workload engine exactly as the serial path does.

    Telemetry: in a pool worker :func:`~repro.observability.tracer
    .trace_from_env` routes trace records to a per-worker file (the worker
    inherits ``REPRO_TRACE`` from the parent), and the registry delta the
    task accumulated travels back on :attr:`TaskOutput.metrics` for the
    parent to merge.
    """
    tracing = trace_from_env()
    before = METRICS.snapshot()
    task_started = TRACER.now() if tracing else 0.0
    output = _execute_task_body(task)
    METRICS.count("executor.tasks")
    if tracing:
        TRACER.span_record(
            "executor.task", task_started, broadcasts=len(task.specs)
        )
        # Pool workers persist across tasks; flushing here makes the worker
        # file complete even if the pool is later terminated mid-round.
        TRACER.flush()
    delta = METRICS.snapshot().delta_since(before)
    return TaskOutput(output.results, output.stats, delta)


def execute_task(task: BroadcastTask) -> List[BroadcastResult]:
    """Back-compat worker entry: results only (see :func:`execute_task_output`)."""
    return list(execute_task_output(task).results)


class CampaignExecutionError(RuntimeError):
    """A task kept failing after every retry (crash, hang, broken pool)."""


class CampaignExecutor:
    """Backend interface for running independent seeded broadcasts.

    Subclasses implement :meth:`run_task_outputs`; the convenience entry
    points chunk a homogeneous campaign (one topology, many iteration
    specs) into tasks according to the backend's parallelism and return the
    flattened results in spec order — :meth:`run_broadcasts` results only,
    :meth:`run_campaign` results plus per-iteration workload stats.
    """

    #: Backend name recorded in CLI/benchmark output.
    name = "abstract"

    def run_task_outputs(
        self, tasks: Sequence[BroadcastTask]
    ) -> List[TaskOutput]:
        """Run tasks (possibly concurrently); outputs come back in task order."""
        raise NotImplementedError

    def run_tasks(self, tasks: Sequence[BroadcastTask]) -> List[BroadcastResult]:
        """Run tasks and flatten the broadcast results, in task order."""
        return [
            result
            for output in self.run_task_outputs(tasks)
            for result in output.results
        ]

    def chunk_specs(
        self, specs: Sequence[IterationSpec]
    ) -> List[Tuple[IterationSpec, ...]]:
        """Split iteration specs into contiguous per-task chunks."""
        return [tuple(specs)] if specs else []

    def _make_tasks(
        self,
        topology: Topology,
        config: SwarmConfig,
        hosts: Optional[Sequence[str]],
        base_seed: int,
        specs: Sequence[IterationSpec],
        workload=None,
        faults=None,
    ) -> List[BroadcastTask]:
        host_tuple = tuple(hosts) if hosts is not None else None
        return [
            BroadcastTask(
                topology, config, host_tuple, base_seed, chunk, workload, faults
            )
            for chunk in self.chunk_specs(list(specs))
        ]

    def run_broadcasts(
        self,
        topology: Topology,
        config: SwarmConfig,
        hosts: Optional[Sequence[str]],
        base_seed: int,
        specs: Sequence[IterationSpec],
    ) -> List[BroadcastResult]:
        """Run one campaign's broadcasts, preserving spec order in the output."""
        return self.run_tasks(
            self._make_tasks(topology, config, hosts, base_seed, specs)
        )

    def run_campaign(
        self,
        topology: Topology,
        config: SwarmConfig,
        hosts: Optional[Sequence[str]],
        base_seed: int,
        specs: Sequence[IterationSpec],
        workload=None,
        faults=None,
    ) -> Tuple[List[BroadcastResult], List[Optional[List[dict]]]]:
        """Run one campaign with its workload/fault plans.

        Returns ``(results, stats)`` flattened in spec order; ``stats[i]``
        is the iteration's per-actor stats list (``None`` for single-tenant
        iterations).
        """
        outputs = self.run_task_outputs(
            self._make_tasks(
                topology, config, hosts, base_seed, specs, workload, faults
            )
        )
        results = [r for output in outputs for r in output.results]
        stats = [s for output in outputs for s in output.stats]
        return results, stats


class SerialExecutor(CampaignExecutor):
    """Run every task in-process, one broadcast after another."""

    name = "serial"

    def run_task_outputs(
        self, tasks: Sequence[BroadcastTask]
    ) -> List[TaskOutput]:
        return [execute_task_output(task) for task in tasks]


class ProcessPoolExecutor(CampaignExecutor):
    """Fan tasks out across worker processes, surviving worker failure.

    Parameters
    ----------
    workers:
        Worker process count; defaults to ``os.cpu_count()``.
    chunk_size:
        Broadcasts per task; defaults to an even split across workers
        (contiguous chunks, so results reassemble in iteration order by
        construction).
    task_timeout:
        Wall-clock ceiling (seconds) per task; a round of tasks gets the
        ceiling scaled by how many tasks share one worker.  Tasks still
        unfinished at the deadline are treated as hung: their workers are
        terminated and the tasks are resubmitted to a fresh pool.
    retries:
        How many extra rounds a failed task (crashed worker, hang, broken
        pool) is given before :class:`CampaignExecutionError` is raised.
    retry_backoff:
        Base of the exponential sleep between retry rounds (seconds).
    task_fn:
        Worker entry point override (tests inject crashing/hanging tasks);
        must be a picklable module-level callable taking a task.

    Determinism: each broadcast's random stream is derived from the base
    seed and its own label inside the worker, and outputs are reassembled
    in submission order, so the resulting record is byte-identical to
    :class:`SerialExecutor`'s regardless of worker scheduling — including
    after crash/hang recovery, because a retried task replays the same
    streams from scratch.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        task_timeout: Optional[float] = None,
        retries: int = 2,
        retry_backoff: float = 0.25,
        task_fn: Optional[Callable[[BroadcastTask], TaskOutput]] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        self.workers = workers or os.cpu_count() or 1
        self.chunk_size = chunk_size
        self.task_timeout = task_timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.task_fn = task_fn or execute_task_output
        #: Task failures survived across this executor's lifetime
        #: (crashes + hangs + broken pools), for post-run introspection.
        self.task_failures = 0

    def chunk_specs(
        self, specs: Sequence[IterationSpec]
    ) -> List[Tuple[IterationSpec, ...]]:
        if not specs:
            return []
        size = self.chunk_size or math.ceil(len(specs) / self.workers)
        return [tuple(specs[i : i + size]) for i in range(0, len(specs), size)]

    def run_task_outputs(
        self, tasks: Sequence[BroadcastTask]
    ) -> List[TaskOutput]:
        if not tasks:
            return []
        if (
            len(tasks) == 1
            and self.task_timeout is None
            and self.task_fn is execute_task_output
        ):
            # A single well-behaved chunk gains nothing from a pool.
            return [execute_task_output(tasks[0])]

        outputs: List[Optional[TaskOutput]] = [None] * len(tasks)
        pending = list(range(len(tasks)))
        errors: List[str] = []
        for attempt in range(self.retries + 1):
            if attempt:
                METRICS.count("executor.retries")
                if TRACER.enabled:
                    TRACER.event(
                        "executor.retry", attempt=attempt, tasks=len(pending)
                    )
                if self.retry_backoff:
                    time.sleep(self.retry_backoff * (2.0 ** (attempt - 1)))
            pending, errors = self._run_round(tasks, pending, outputs)
            self.task_failures += len(pending)
            if not pending:
                return [output for output in outputs if output is not None]
        raise CampaignExecutionError(
            f"{len(pending)} task(s) still failing after {self.retries} "
            f"retries: {'; '.join(errors[:3])}"
        )

    def _run_round(
        self,
        tasks: Sequence[BroadcastTask],
        pending: List[int],
        outputs: List[Optional[TaskOutput]],
    ) -> Tuple[List[int], List[str]]:
        """One submission round on a fresh pool; returns surviving failures.

        Each round gets its own pool so a round poisoned by a crashed or
        hung worker never contaminates the next: hung workers are
        terminated, and :class:`futures.process.BrokenProcessPool` (a
        worker died mid-task) only fails the round's unfinished tasks.
        """
        failed: List[int] = []
        errors: List[str] = []
        round_started = TRACER.now() if TRACER.enabled else 0.0
        max_workers = min(self.workers, len(pending))
        # Fork-started workers inherit the tracer's open sink; flush it so
        # the copy they inherit holds no buffered records (each worker then
        # closes its copy and re-routes to a per-pid sibling file — see
        # trace_from_env).
        TRACER.flush()
        pool = futures.ProcessPoolExecutor(max_workers=max_workers)
        future_index = {
            pool.submit(self.task_fn, tasks[i]): i for i in pending
        }
        deadline = None
        if self.task_timeout is not None:
            # Per-task ceiling scaled by how many tasks share one worker.
            deadline = self.task_timeout * math.ceil(len(pending) / max_workers)
        done, not_done = futures.wait(set(future_index), timeout=deadline)
        for future in done:
            index = future_index[future]
            try:
                output = future.result()
            except Exception as exc:  # noqa: BLE001 — any worker death retries
                failed.append(index)
                errors.append(f"task {index}: {type(exc).__name__}: {exc}")
                METRICS.count("executor.worker_crashes")
                if TRACER.enabled:
                    TRACER.event(
                        "executor.worker_crash",
                        task=index,
                        error=type(exc).__name__,
                    )
            else:
                outputs[index] = output
                # Only here — results that crossed a process boundary — are
                # worker registry deltas folded in; in-process backends
                # already recorded straight into the parent registry.
                METRICS.merge(getattr(output, "metrics", None))
        for future in not_done:
            index = future_index[future]
            failed.append(index)
            errors.append(f"task {index}: hung past {self.task_timeout}s")
            METRICS.count("executor.timeouts")
            if TRACER.enabled:
                TRACER.event(
                    "executor.timeout", task=index, deadline_s=deadline
                )
            future.cancel()
        if not_done:
            # Hung workers never come back: kill them before abandoning the
            # pool so the retry round starts from clean processes.
            for process in list(getattr(pool, "_processes", {}).values()):
                process.terminate()
            pool.shutdown(wait=False, cancel_futures=True)
        else:
            pool.shutdown(wait=True)
        failed.sort()
        if TRACER.enabled:
            TRACER.span_record(
                "executor.round",
                round_started,
                workers=max_workers,
                submitted=len(future_index),
                failed=len(failed),
            )
        return failed, errors


class BatchedExecutor(CampaignExecutor):
    """Run each task's seeds as lanes of one batched lock-step engine.

    Single-tenant tasks (empty workload/fault plan) go through
    :class:`~repro.bittorrent.batched.BatchedBroadcast`: all iteration specs
    of a chunk become lanes of one lock-step run whose per-step interest
    matrices are computed by a single stacked matmul, with every lane's
    record bit-identical to its scalar replay (``tests/test_seed_replay.py``
    pins the goldens per lane).  Multi-tenant tasks — any workload or fault
    plan — cannot hold lock-step (actors couple lanes through the shared
    fluid network), so they fall back to :func:`execute_task_output`, the
    scalar oracle, and their results keep ``batch_width == 1``.

    Parameters
    ----------
    max_width:
        Optional cap on lanes per batched run; ``None`` (default) runs the
        whole campaign as one batch.  Purely an execution knob — lane
        records are bit-identical at any width.
    """

    name = "batched"

    def __init__(self, max_width: Optional[int] = None) -> None:
        if max_width is not None and max_width < 1:
            raise ValueError("max_width must be at least 1")
        self.max_width = max_width

    def chunk_specs(
        self, specs: Sequence[IterationSpec]
    ) -> List[Tuple[IterationSpec, ...]]:
        if not specs:
            return []
        if self.max_width is None:
            return [tuple(specs)]
        size = self.max_width
        return [tuple(specs[i : i + size]) for i in range(0, len(specs), size)]

    def run_task_outputs(
        self, tasks: Sequence[BroadcastTask]
    ) -> List[TaskOutput]:
        from repro.bittorrent.batched import BatchedBroadcast

        outputs: List[TaskOutput] = []
        for task in tasks:
            if task.workload is not None or task.faults is not None:
                # Lanes would lose lock-step: run the scalar oracle instead.
                outputs.append(execute_task_output(task))
                continue
            hosts = list(task.hosts) if task.hosts is not None else None
            engine = BatchedBroadcast(task.topology, task.config, hosts=hosts)
            results = engine.run_specs(task.base_seed, task.specs)
            outputs.append(
                TaskOutput(tuple(results), tuple(None for _ in results))
            )
        return outputs


#: Known backends, keyed by the names accepted on the CLI and in the
#: :data:`EXECUTOR_ENV` environment variable.
EXECUTOR_NAMES = ("serial", "process", "batched")


def executor_from_name(
    name: Optional[str],
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> CampaignExecutor:
    """Instantiate a backend by name (``None``/empty → serial)."""
    key = (name or "serial").strip().lower()
    if key == "serial":
        return SerialExecutor()
    if key == "process":
        if workers is None:
            workers = workers_from_env()
        return ProcessPoolExecutor(workers=workers, chunk_size=chunk_size)
    if key == "batched":
        # ``workers`` has no meaning in-process; ``chunk_size`` caps the
        # lane width of each lock-step run.
        return BatchedExecutor(max_width=chunk_size)
    raise ValueError(
        f"unknown executor {name!r}; available: {', '.join(EXECUTOR_NAMES)}"
    )


def default_executor() -> Optional[CampaignExecutor]:
    """Backend selected by the environment, or ``None`` for the serial path.

    ``REPRO_EXECUTOR=process`` (optionally with ``REPRO_EXECUTOR_WORKERS=n``)
    routes every campaign that does not receive an explicit executor through
    the process pool, and ``REPRO_EXECUTOR=batched`` through the lock-step
    batched engine — this is how ``benchmarks/run_benchmarks.py
    --executor process|batched`` switches the whole benchmark suite over
    without touching each benchmark.
    """
    name = os.environ.get(EXECUTOR_ENV, "").strip().lower()
    if not name or name == "serial":
        return None
    return executor_from_name(name, workers=workers_from_env())


def workers_from_env() -> Optional[int]:
    """Validated worker count from :data:`WORKERS_ENV` (``None`` if unset).

    Rejects non-integers and values below 1 with a clear error instead of
    letting them surface as a deep ``concurrent.futures`` traceback.
    """
    workers_raw = os.environ.get(WORKERS_ENV, "").strip()
    if not workers_raw:
        return None
    try:
        workers = int(workers_raw)
    except ValueError as exc:
        raise ValueError(
            f"{WORKERS_ENV} must be a positive integer, got {workers_raw!r}"
        ) from exc
    if workers < 1:
        raise ValueError(
            f"{WORKERS_ENV} must be at least 1, got {workers}"
        )
    return workers
