"""Campaign executors: pluggable backends for independent seeded broadcasts.

A measurement campaign is a sequence of *independent* instrumented
broadcasts: iteration ``i`` draws from its own random stream, derived
statelessly from the base seed and the label ``("broadcast", i)`` (see
:mod:`repro.simulation.rng`).  Nothing couples one iteration to the next, so
the campaign is embarrassingly parallel — as long as the per-iteration
streams and the record order are preserved, a parallel run is bit-for-bit
identical to the serial one.

This module makes that fan-out explicit:

* :class:`BroadcastTask` — a picklable chunk of per-seed broadcasts sharing
  one topology/config (the unit of work shipped to a backend);
* :class:`CampaignExecutor` — the backend interface;
* :class:`SerialExecutor` — runs chunks in-process (the reference backend);
* :class:`ProcessPoolExecutor` — fans chunks out across worker processes.

Executors are injected into :class:`~repro.tomography.measurement
.MeasurementCampaign` and :class:`~repro.tomography.pipeline
.TomographyPipeline`; ``tests/test_executors.py`` pins the bit-for-bit
equality between backends.  On a single-core box the process pool only adds
overhead — the point is that campaign wall-clock scales ~linearly with cores
on real hardware without touching the experiment code.
"""

from __future__ import annotations

import math
import os
from concurrent import futures
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.bittorrent.swarm import BitTorrentBroadcast, BroadcastResult, SwarmConfig
from repro.network.topology import Topology
from repro.simulation.rng import RandomStreams

#: One broadcast of a task: the random-stream label path (relative to the
#: task's base seed) and the seeding root (``None`` → first host).
IterationSpec = Tuple[Tuple[object, ...], Optional[str]]

#: Environment variable naming the default backend (``serial``/``process``).
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: Environment variable overriding the process-pool worker count.
WORKERS_ENV = "REPRO_EXECUTOR_WORKERS"


@dataclass(frozen=True)
class BroadcastTask:
    """A chunk of independent seeded broadcasts on one topology.

    Everything needed to replay the broadcasts is carried by value (the task
    must survive pickling into a worker process): the substrate, the swarm
    configuration, the participating hosts, the base seed, and one
    :data:`IterationSpec` per broadcast.  The worker derives each broadcast's
    generator as ``RandomStreams(base_seed).stream(*labels)`` — the same
    stateless derivation the serial path uses, which is what makes parallel
    execution bit-for-bit identical.
    """

    topology: Topology
    config: SwarmConfig
    hosts: Optional[Tuple[str, ...]]
    base_seed: int
    specs: Tuple[IterationSpec, ...]


def execute_task(task: BroadcastTask) -> List[BroadcastResult]:
    """Run every broadcast of a task in order (the worker entry point).

    The :class:`BitTorrentBroadcast` (and its routing table) is built once
    per task, mirroring the serial campaign's reuse across iterations.
    """
    broadcast = BitTorrentBroadcast(
        task.topology,
        task.config,
        hosts=list(task.hosts) if task.hosts is not None else None,
    )
    streams = RandomStreams(task.base_seed)
    return [
        broadcast.run(root=root, rng=streams.stream(*labels))
        for labels, root in task.specs
    ]


class CampaignExecutor:
    """Backend interface for running independent seeded broadcasts.

    Subclasses implement :meth:`run_tasks`; the convenience entry point
    :meth:`run_broadcasts` chunks a homogeneous campaign (one topology, many
    iteration specs) into tasks according to the backend's parallelism and
    returns the flattened results in spec order.
    """

    #: Backend name recorded in CLI/benchmark output.
    name = "abstract"

    def run_tasks(self, tasks: Sequence[BroadcastTask]) -> List[BroadcastResult]:
        """Run tasks (possibly concurrently) and return results in task order."""
        raise NotImplementedError

    def chunk_specs(
        self, specs: Sequence[IterationSpec]
    ) -> List[Tuple[IterationSpec, ...]]:
        """Split iteration specs into contiguous per-task chunks."""
        return [tuple(specs)] if specs else []

    def run_broadcasts(
        self,
        topology: Topology,
        config: SwarmConfig,
        hosts: Optional[Sequence[str]],
        base_seed: int,
        specs: Sequence[IterationSpec],
    ) -> List[BroadcastResult]:
        """Run one campaign's broadcasts, preserving spec order in the output."""
        host_tuple = tuple(hosts) if hosts is not None else None
        tasks = [
            BroadcastTask(topology, config, host_tuple, base_seed, chunk)
            for chunk in self.chunk_specs(list(specs))
        ]
        return self.run_tasks(tasks)


class SerialExecutor(CampaignExecutor):
    """Run every task in-process, one broadcast after another."""

    name = "serial"

    def run_tasks(self, tasks: Sequence[BroadcastTask]) -> List[BroadcastResult]:
        results: List[BroadcastResult] = []
        for task in tasks:
            results.extend(execute_task(task))
        return results


class ProcessPoolExecutor(CampaignExecutor):
    """Fan tasks out across worker processes.

    Parameters
    ----------
    workers:
        Worker process count; defaults to ``os.cpu_count()``.
    chunk_size:
        Broadcasts per task; defaults to an even split across workers
        (contiguous chunks, so results reassemble in iteration order by
        construction).

    Determinism: each broadcast's random stream is derived from the base
    seed and its own label inside the worker, and chunks are mapped back in
    submission order, so the resulting record is byte-identical to
    :class:`SerialExecutor`'s regardless of worker scheduling.
    """

    name = "process"

    def __init__(
        self, workers: Optional[int] = None, chunk_size: Optional[int] = None
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.workers = workers or os.cpu_count() or 1
        self.chunk_size = chunk_size

    def chunk_specs(
        self, specs: Sequence[IterationSpec]
    ) -> List[Tuple[IterationSpec, ...]]:
        if not specs:
            return []
        size = self.chunk_size or math.ceil(len(specs) / self.workers)
        return [tuple(specs[i : i + size]) for i in range(0, len(specs), size)]

    def run_tasks(self, tasks: Sequence[BroadcastTask]) -> List[BroadcastResult]:
        if not tasks:
            return []
        if len(tasks) == 1:
            # A single chunk gains nothing from a pool; skip the fork.
            return execute_task(tasks[0])
        max_workers = min(self.workers, len(tasks))
        with futures.ProcessPoolExecutor(max_workers=max_workers) as pool:
            nested = list(pool.map(execute_task, tasks))
        return [result for chunk in nested for result in chunk]


#: Known backends, keyed by the names accepted on the CLI and in the
#: :data:`EXECUTOR_ENV` environment variable.
EXECUTOR_NAMES = ("serial", "process")


def executor_from_name(
    name: Optional[str],
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> CampaignExecutor:
    """Instantiate a backend by name (``None``/empty → serial)."""
    key = (name or "serial").strip().lower()
    if key == "serial":
        return SerialExecutor()
    if key == "process":
        return ProcessPoolExecutor(workers=workers, chunk_size=chunk_size)
    raise ValueError(
        f"unknown executor {name!r}; available: {', '.join(EXECUTOR_NAMES)}"
    )


def default_executor() -> Optional[CampaignExecutor]:
    """Backend selected by the environment, or ``None`` for the serial path.

    ``REPRO_EXECUTOR=process`` (optionally with ``REPRO_EXECUTOR_WORKERS=n``)
    routes every campaign that does not receive an explicit executor through
    the process pool — this is how ``benchmarks/run_benchmarks.py
    --executor process`` switches the whole benchmark suite over without
    touching each benchmark.
    """
    name = os.environ.get(EXECUTOR_ENV, "").strip().lower()
    if not name or name == "serial":
        return None
    workers_raw = os.environ.get(WORKERS_ENV, "").strip()
    workers = int(workers_raw) if workers_raw else None
    return executor_from_name(name, workers=workers)
