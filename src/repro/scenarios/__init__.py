"""Declarative scenario subsystem.

``repro.scenarios`` turns the repo's experiment menu into data: a
:class:`~repro.scenarios.spec.ScenarioSpec` describes one setting (topology
factory, hosts, swarm/tomography configuration, iterations, seeds and
expectations), a decorator-based registry names them, and pluggable
:class:`~repro.scenarios.executors.CampaignExecutor` backends decide *how*
the independent seeded broadcasts of a campaign run — serially in-process
or fanned out over a process pool — without changing a single measured bit.

See ``docs/scenarios.md`` for the full guide, including how to add a
scenario.
"""

from repro.scenarios.executors import (
    BatchedExecutor,
    BroadcastTask,
    CampaignExecutionError,
    CampaignExecutor,
    EXECUTOR_NAMES,
    ProcessPoolExecutor,
    SerialExecutor,
    TaskOutput,
    default_executor,
    execute_task,
    execute_task_output,
    executor_from_name,
    workers_from_env,
)
from repro.scenarios.registry import (
    all_scenarios,
    families,
    get_scenario,
    register,
    runner_scenario,
    scenario,
    scenario_names,
    unregister,
)
from repro.scenarios.spec import ScenarioSpec, jsonable_summary, to_jsonable

# The built-in catalogue (paper datasets, figure runners, generated
# families) is loaded lazily by the registry lookups: the catalogue imports
# the experiment runners, which import the executors from this package, so
# an eager import here would close an import cycle.

__all__ = [
    "BatchedExecutor",
    "BroadcastTask",
    "CampaignExecutionError",
    "CampaignExecutor",
    "EXECUTOR_NAMES",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "ScenarioSpec",
    "TaskOutput",
    "all_scenarios",
    "default_executor",
    "execute_task",
    "execute_task_output",
    "executor_from_name",
    "workers_from_env",
    "families",
    "get_scenario",
    "jsonable_summary",
    "register",
    "runner_scenario",
    "scenario",
    "scenario_names",
    "to_jsonable",
    "unregister",
]
