"""The built-in scenario catalogue.

Everything the old hand-written CLI could run is registered here as a
declarative spec — the paper's named datasets (family ``paper``), the
per-figure experiment runners (family ``figure``) — plus the generated
families that go beyond the paper's menu (``fat-tree``,
``random-bottleneck``, ``hetero-uplink``, and the hierarchical ``extension``
setting).  Import side effects populate :mod:`repro.scenarios.registry`;
this module is imported by ``repro.scenarios.__init__`` so any entry point
that touches the registry sees the full catalogue.

Campaign parameter defaults are the laptop-scale values the previous CLI
used (8 nodes per site, 600 fragments, seed 2012); the paper-scale settings
(32 per site, 15 259 fragments) remain reachable through overrides.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.visualize import ascii_cluster_table, render_fig4_bars
from repro.experiments.datasets import (
    Dataset,
    dataset,
    dataset_2x2,
    dataset_b,
    dataset_nested,
)
from repro.experiments.runners import (
    run_baseline_cost,
    run_broadcast_efficiency,
    run_fig4,
    run_fig5,
    run_fig13,
    run_netpipe_reference,
)
from repro.scenarios.registry import runner_scenario, scenario
from repro.scenarios.topologies import (
    fat_tree_dataset,
    hetero_uplink_dataset,
    random_bottleneck_dataset,
)

#: Laptop-scale default for paper datasets (the paper itself runs 32).
DEFAULT_PER_SITE = 8


def _bordeaux_split(per_site: int) -> Dict[str, int]:
    """The B-dataset cluster split used at reduced scale (CLI convention)."""
    return {
        "bordeplage": per_site,
        "bordereau": max(per_site - per_site // 4, 1),
        "borderline": max(per_site // 4, 1),
    }


# ---------------------------------------------------------------------- #
# formatters (terminal rendering of summary dicts)
# ---------------------------------------------------------------------- #
def format_campaign(summary: Dict[str, object]) -> str:
    """Human rendering of a measure→cluster→evaluate campaign summary."""
    lines = [
        f"scenario {summary['scenario']} (family {summary['family']}, "
        f"executor {summary['executor']})",
        f"dataset {summary['dataset']}: {summary['hosts']} hosts, "
        f"{summary['iterations']} iterations",
        f"clusters found: {summary['found_clusters']} "
        f"(expected: {summary['expected_clusters']})",
    ]
    if summary.get("measured_nmi") is not None:
        lines.append(
            f"overlapping NMI vs ground truth: {summary['measured_nmi']:.3f} "
            f"(paper/model: {summary['paper_nmi']})"
        )
    lines.append(f"modularity: {summary['modularity']:.3f}")
    curve = summary.get("nmi_per_iteration") or []
    if curve:
        lines.append(f"NMI per iteration: {[round(v, 2) for v in curve]}")
    lines.append(
        f"simulated measurement time: {summary['measurement_time_s']:.1f} s"
    )
    result = summary.get("result")
    truth = summary.get("ground_truth")
    if result is not None:
        lines.append("")
        lines.append(ascii_cluster_table(result.partition, ground_truth=truth))
    return "\n".join(lines)


def _format_fig4(summary: Dict[str, object]) -> str:
    lines = [
        f"focus host: {summary['focus_host']} ({summary['iterations']} iterations)",
        render_fig4_bars(summary["local_edges"], summary["remote_edges"]),
        "paper totals: local 22533 / remote 6337",
    ]
    return "\n".join(lines)


def _format_fig5(summary: Dict[str, object]) -> str:
    u, v = summary["edge"]
    return "\n".join(
        [
            f"edge {u} -- {v} over {summary['iterations']} independent runs:",
            f"  zero-fragment runs: {summary['zero_runs']}",
            f"  nonzero range: {summary['nonzero_min']:.0f}..{summary['nonzero_max']:.0f}",
            f"  mean {summary['mean']:.1f}, std {summary['std']:.1f} "
            f"(coefficient of variation {summary['coefficient_of_variation']:.2f})",
            "paper: 23/36 runs zero, nonzero range 3..6304",
        ]
    )


def _format_fig13(summary: Dict[str, object]) -> str:
    lines = []
    for name, study in summary.items():
        if not hasattr(study, "curve"):
            continue
        reached = study.iterations_to_reach(0.99)
        lines.append(
            f"{name:8s} final NMI {study.final_nmi:.2f} "
            f"(>=0.99 after {reached if reached else '-'} iterations) "
            f"curve {[round(v, 2) for v in study.curve]}"
        )
    return "\n".join(lines)


def _format_efficiency(summary: Dict[str, object]) -> str:
    lines = ["broadcast duration by swarm size (s):"]
    for nodes, duration in sorted(summary["durations_by_nodes"].items()):
        lines.append(f"  {nodes:4d} nodes  {duration:.2f}")
    lines.append("broadcast duration by file size (fragments -> s):")
    for fragments, duration in sorted(summary["durations_by_fragments"].items()):
        lines.append(f"  {fragments:5d} fragments  {duration:.2f}")
    return "\n".join(lines)


def _format_baseline(summary: Dict[str, object]) -> str:
    lines = ["measurement cost comparison (simulated seconds):"]
    for row in summary["rows"]:
        lines.append(
            f"  N={row['nodes']:3d}  BitTorrent {row['bittorrent_time_s']:7.1f}   "
            f"pairwise {row['pairwise_time_s']:7.1f} ({row['pairwise_probes']} probes)   "
            f"triplet {row['triplet_time_s']:8.1f} ({row['triplet_probes']} probes)"
        )
    return "\n".join(lines)


def _format_netpipe(summary: Dict[str, object]) -> str:
    return "\n".join(
        [
            f"intra-cluster peak bandwidth: {summary['intra_cluster_mbps']:.0f} Mb/s "
            f"(paper: {summary['paper_intra_cluster_mbps']:.0f})",
            f"inter-site peak bandwidth:    {summary['inter_site_mbps']:.0f} Mb/s "
            f"(paper: {summary['paper_inter_site_mbps']:.0f})",
        ]
    )


# ---------------------------------------------------------------------- #
# the paper's named datasets (Fig. 8-13 and the 2x2 experiment)
# ---------------------------------------------------------------------- #
@scenario("2x2", family="paper", formatter=format_campaign,
          description="2 Bordeplage + 2 Borderline nodes, one logical cluster")
def _scenario_2x2() -> Dataset:
    return dataset_2x2()


@scenario("B", family="paper", formatter=format_campaign,
          description="Bordeaux only; Bordeplage split off by the 1 GbE bottleneck")
def _scenario_b(per_site: int = DEFAULT_PER_SITE) -> Dataset:
    return dataset_b(**_bordeaux_split(per_site))


@scenario("B-T", family="paper", formatter=format_campaign,
          description="Bordeaux + Toulouse; single-level clustering caps at NMI ≈ 0.7")
def _scenario_bt(per_site: int = DEFAULT_PER_SITE) -> Dataset:
    return dataset("B-T", per_site=per_site)


@scenario("G-T", family="paper", formatter=format_campaign,
          description="Grenoble + Toulouse, two flat sites")
def _scenario_gt(per_site: int = DEFAULT_PER_SITE) -> Dataset:
    return dataset("G-T", per_site=per_site)


@scenario("B-G-T", family="paper", formatter=format_campaign,
          description="Bordeaux (well-connected part) + Grenoble + Toulouse")
def _scenario_bgt(per_site: int = DEFAULT_PER_SITE) -> Dataset:
    return dataset("B-G-T", per_site=per_site)


@scenario("B-G-T-L", family="paper", formatter=format_campaign,
          description="four sites, slowest to converge (~15 iterations in the paper)")
def _scenario_bgtl(per_site: int = DEFAULT_PER_SITE) -> Dataset:
    return dataset("B-G-T-L", per_site=per_site)


@scenario("NESTED", family="extension", formatter=format_campaign,
          description="two-level hierarchy (future-work extension of the paper)")
def _scenario_nested(alpha: int = 6, beta: int = 6, gamma: int = 12) -> Dataset:
    return dataset_nested(alpha=alpha, beta=beta, gamma=gamma)


# ---------------------------------------------------------------------- #
# per-figure experiment runners
# ---------------------------------------------------------------------- #
@runner_scenario("fig4", family="figure", iterations=12, formatter=_format_fig4,
                 description="per-edge metric of a fixed node, local vs remote (Fig. 4)")
def _scenario_fig4(
    iterations: int,
    num_fragments: int,
    seed: int,
    executor=None,
    per_site: int = DEFAULT_PER_SITE,
    focus_host: Optional[str] = None,
    stepping: Optional[str] = None,
):
    return run_fig4(
        iterations=iterations,
        num_fragments=num_fragments,
        seed=seed,
        focus_host=focus_host,
        executor=executor,
        stepping=stepping,
        **_bordeaux_split(per_site),
    )


@runner_scenario("fig5", family="figure", iterations=24, formatter=_format_fig5,
                 description="single-edge variance across independent runs (Fig. 5)")
def _scenario_fig5(
    iterations: int,
    num_fragments: int,
    seed: int,
    executor=None,
    per_site: int = DEFAULT_PER_SITE,
    stepping: Optional[str] = None,
):
    return run_fig5(
        cluster_nodes=per_site * 2,
        iterations=iterations,
        num_fragments=num_fragments,
        seed=seed,
        executor=executor,
        stepping=stepping,
    )


@runner_scenario("fig13", family="figure", iterations=10, formatter=_format_fig13,
                 description="NMI convergence for all paper datasets (Fig. 13)")
def _scenario_fig13(
    iterations: int,
    num_fragments: int,
    seed: int,
    executor=None,
    per_site: int = DEFAULT_PER_SITE,
    datasets: Optional[Tuple[str, ...]] = None,
    stepping: Optional[str] = None,
):
    return run_fig13(
        datasets=datasets,
        per_site=per_site,
        iterations=iterations,
        num_fragments=num_fragments,
        seed=seed,
        executor=executor,
        stepping=stepping,
    )


@runner_scenario("broadcast-efficiency", family="figure", num_fragments=400,
                 formatter=_format_efficiency,
                 description="broadcast completion vs swarm and file size (Sec. II-B)")
def _scenario_efficiency(
    iterations: int,
    num_fragments: int,
    seed: int,
    executor=None,
    node_counts: Tuple[int, ...] = (8, 16, 32),
    stepping: Optional[str] = None,
):
    return run_broadcast_efficiency(
        node_counts=tuple(int(c) for c in node_counts),
        num_fragments=num_fragments,
        seed=seed,
        executor=executor,
        stepping=stepping,
    )


@runner_scenario("baseline-cost", family="figure", iterations=4, num_fragments=300,
                 formatter=_format_baseline,
                 description="measurement cost vs saturation baselines (Sec. II-B)")
def _scenario_baseline(
    iterations: int,
    num_fragments: int,
    seed: int,
    executor=None,
    node_counts: Tuple[int, ...] = (6, 10, 14),
    probe_size: float = 16e6,
    stepping: Optional[str] = None,
):
    return run_baseline_cost(
        node_counts=tuple(int(c) for c in node_counts),
        probe_size=probe_size,
        num_fragments=num_fragments,
        bt_iterations=iterations,
        seed=seed,
        executor=executor,
        stepping=stepping,
    )


@runner_scenario("netpipe", family="figure", formatter=_format_netpipe,
                 description="NetPIPE reference bandwidths (Sec. II-C / IV-A)")
def _scenario_netpipe(
    iterations: int,
    num_fragments: int,
    seed: int,
    executor=None,
    repeats: int = 5,
):
    return run_netpipe_reference(repeats=repeats)


# ---------------------------------------------------------------------- #
# generated families beyond the paper
# ---------------------------------------------------------------------- #
@scenario("FATTREE-4x4", family="fat-tree", formatter=format_campaign,
          tags=("beyond-paper", "sweepable"),
          description="4 racks x 4 hosts, 4:1 oversubscribed edge uplinks")
def _scenario_fattree(
    racks: int = 4, hosts_per_rack: int = 4, oversubscription: float = 4.0
) -> Dataset:
    return fat_tree_dataset(
        racks=racks, hosts_per_rack=hosts_per_rack, oversubscription=oversubscription
    )


@scenario("FATTREE-NB", family="fat-tree", formatter=format_campaign,
          tags=("beyond-paper",),
          description="non-blocking fat-tree control: no contrast, one cluster")
def _scenario_fattree_nb(racks: int = 4, hosts_per_rack: int = 4) -> Dataset:
    return fat_tree_dataset(
        racks=racks, hosts_per_rack=hosts_per_rack, oversubscription=1.0
    )


@scenario("RANDBOT-1", family="random-bottleneck", formatter=format_campaign,
          tags=("beyond-paper", "sweepable"),
          description="random bottleneck placement, layout seed 1")
def _scenario_randbot1(
    clusters: int = 5,
    hosts_per_cluster: int = 4,
    num_bottlenecks: int = 2,
    layout_seed: int = 1,
) -> Dataset:
    return random_bottleneck_dataset(
        clusters=clusters,
        hosts_per_cluster=hosts_per_cluster,
        num_bottlenecks=num_bottlenecks,
        layout_seed=layout_seed,
    )


@scenario("RANDBOT-2", family="random-bottleneck", formatter=format_campaign,
          tags=("beyond-paper",),
          description="random bottleneck placement, layout seed 2")
def _scenario_randbot2(
    clusters: int = 5,
    hosts_per_cluster: int = 4,
    num_bottlenecks: int = 2,
) -> Dataset:
    return random_bottleneck_dataset(
        clusters=clusters,
        hosts_per_cluster=hosts_per_cluster,
        num_bottlenecks=num_bottlenecks,
        layout_seed=2,
    )


@scenario("HETERO-UPLINK", family="hetero-uplink", formatter=format_campaign,
          tags=("beyond-paper", "sweepable"),
          description="three sites with heterogeneously provisioned Renater uplinks")
def _scenario_hetero(
    per_site: int = 6, squeeze: float = 1.0
) -> Dataset:
    return hetero_uplink_dataset(per_site=per_site, squeeze=squeeze)


# ---------------------------------------------------------------------- #
# interference families: tomography under multi-tenant workloads
# (repro.workloads + repro.tomography.interference; docs/workloads.md)
# ---------------------------------------------------------------------- #
def _format_interference(summary: Dict[str, object]) -> str:
    lines = [
        f"scenario {summary['scenario']} (family {summary['family']}, "
        f"workload {summary['workload']})",
        f"dataset {summary['dataset']}: {summary['hosts']} hosts, "
        f"{summary['iterations']} iterations, "
        f"{summary['workload_actors']} tenants per broadcast",
        f"clusters found: {summary['found_clusters']} "
        f"(expected: {summary['expected_clusters']})",
        f"overlapping NMI: {summary['measured_nmi']:.3f} "
        f"(noise threshold {summary['noise_threshold']:.2f} -> "
        f"{'recovered' if summary['recovered'] else 'DEGRADED'})",
    ]
    if summary.get("background_flows"):
        lines.append(
            f"cross traffic: {summary['background_flows']} flows, "
            f"{summary['background_bytes_offered'] / 1e6:.1f} MB offered"
        )
    if summary.get("churn_leaves"):
        lines.append(
            f"churn: {summary['churn_leaves']} departures, "
            f"{summary['churn_rejoins']} rejoins"
        )
    if summary.get("capacity_changes"):
        lines.append(f"capacity drift events: {summary['capacity_changes']}")
    if summary.get("rival_broadcasts"):
        lines.append(f"rival broadcasts: {summary['rival_broadcasts']}")
    return "\n".join(lines)


def _reject_workload_override(name: str, workload, params: str) -> None:
    """Interference scenarios *are* their workload: an explicit ``--workload``
    would silently shadow the family's sweepable parameters (a sweep over
    ``intensity`` would tabulate identical runs under different labels), so
    the conflict is rejected instead of resolved."""
    if workload is not None:
        raise ValueError(
            f"scenario {name} builds its own workload from its parameters "
            f"({params}); drop --workload, or layer a preset workload under "
            "a campaign scenario instead (e.g. `repro run G-T --workload "
            "cross-heavy`)"
        )


def _interference_dataset(per_site: int) -> Dataset:
    """The interference families' default substrate: two flat sites whose
    planted structure the recovery must keep finding under load."""
    return dataset("G-T", per_site=per_site)


def _localization_dataset(per_site: int, backup: bool = False) -> Dataset:
    """The fault-localization substrate: Bordeaux's three-cluster site.

    Dataset "B" puts each cluster behind its *own* uplink (Bordeplage
    behind the 1 GbE bottleneck, Bordereau and Borderline behind
    distinct router links), so every shared link is crossed by a
    distinct set of host pairs and boolean tomography can name a failed
    link outright — unlike G-T, whose serial backbone links are crossed
    by exactly the same pairs and are indistinguishable by design.

    ``backup=True`` adds a standby inter-switch link between the
    Bordeplage and Bordereau switches at half the (scaled) bottleneck
    capacity.  Its latency is set *above* any nominal two-hop detour, so
    shortest-path routing ignores it while the topology is healthy —
    baselines, ground truth and goldens are unchanged — but a control
    plane recomputing around a failed uplink finds it and actually has
    somewhere to reroute: the self-healing substrate.
    """
    from repro.network.grid5000 import BORDEAUX_BOTTLENECK_CAPACITY

    ds = dataset(
        "B",
        bordeplage=per_site,
        bordereau=max(2, per_site - 1),
        borderline=2,
    )
    if backup:
        scale = min(per_site / 32.0, 1.0)
        ds.topology.add_link(
            "bordeaux.bordeplage.switch",
            "bordeaux.bordereau.switch",
            capacity=0.5 * BORDEAUX_BOTTLENECK_CAPACITY * scale,
            latency=2.5e-4,
            name="bordeaux.backup",
        )
    return ds


@runner_scenario("RIVAL-BROADCAST", family="rival-broadcast",
                 iterations=4, num_fragments=240,
                 formatter=_format_interference,
                 tags=("beyond-paper", "interference", "sweepable"),
                 description="concurrent-broadcast contention: rival swarms "
                             "share clock and links with the measured one")
def _scenario_rival(
    iterations: int,
    num_fragments: int,
    seed: int,
    executor=None,
    per_site: int = 4,
    rivals: int = 1,
    stagger: float = 0.3,
    noise_threshold: float = 0.85,
    stepping: Optional[str] = None,
    workload=None,
    faults=None,
    quorum: Optional[int] = None,
):
    from repro.tomography.interference import run_interference_study
    from repro.workloads import rival_broadcast_workload

    _reject_workload_override("RIVAL-BROADCAST", workload, "rivals/stagger")
    wl = rival_broadcast_workload(rivals=rivals, stagger=stagger)
    return run_interference_study(
        _interference_dataset(per_site), wl,
        iterations=iterations, num_fragments=num_fragments, seed=seed,
        noise_threshold=noise_threshold, stepping=stepping,
        executor=executor, faults=faults, quorum=quorum,
    )


@runner_scenario("CROSS-TRAFFIC", family="cross-traffic",
                 iterations=4, num_fragments=240,
                 formatter=_format_interference,
                 tags=("beyond-paper", "interference", "sweepable"),
                 description="generative Poisson/on-off cross traffic; sweep "
                             "`intensity` to chart where recovery degrades")
def _scenario_cross_traffic(
    iterations: int,
    num_fragments: int,
    seed: int,
    executor=None,
    per_site: int = 4,
    intensity: float = 0.5,
    sources: int = 2,
    bulk: bool = False,
    noise_threshold: float = 0.8,
    stepping: Optional[str] = None,
    workload=None,
    faults=None,
    quorum: Optional[int] = None,
):
    from repro.tomography.interference import run_interference_study
    from repro.workloads import cross_traffic_workload

    _reject_workload_override("CROSS-TRAFFIC", workload, "intensity/sources/bulk")
    wl = cross_traffic_workload(intensity=intensity, sources=sources, bulk=bulk)
    return run_interference_study(
        _interference_dataset(per_site), wl,
        iterations=iterations, num_fragments=num_fragments, seed=seed,
        noise_threshold=noise_threshold, stepping=stepping,
        executor=executor, faults=faults, quorum=quorum,
    )


@runner_scenario("CHURN", family="churn",
                 iterations=4, num_fragments=240,
                 formatter=_format_interference,
                 tags=("beyond-paper", "interference", "sweepable"),
                 description="peer churn: leave/rejoin mid-broadcast; sweep "
                             "`churn_rate` for the degradation curve")
def _scenario_churn(
    iterations: int,
    num_fragments: int,
    seed: int,
    executor=None,
    per_site: int = 4,
    churn_rate: float = 1.0,
    downtime_frac: float = 0.15,
    noise_threshold: float = 0.8,
    stepping: Optional[str] = None,
    workload=None,
    faults=None,
    quorum: Optional[int] = None,
):
    from repro.tomography.interference import run_interference_study
    from repro.workloads import churn_workload

    _reject_workload_override("CHURN", workload, "churn_rate/downtime_frac")
    wl = churn_workload(churn_rate=churn_rate, downtime_frac=downtime_frac)
    return run_interference_study(
        _interference_dataset(per_site), wl,
        iterations=iterations, num_fragments=num_fragments, seed=seed,
        noise_threshold=noise_threshold, stepping=stepping,
        executor=executor, faults=faults, quorum=quorum,
    )


@runner_scenario("MIXED-TENANCY", family="cross-traffic",
                 iterations=4, num_fragments=240,
                 formatter=_format_interference,
                 tags=("beyond-paper", "interference"),
                 description="everything at once: rival broadcast, cross "
                             "traffic, capacity drift and churn")
def _scenario_mixed_tenancy(
    iterations: int,
    num_fragments: int,
    seed: int,
    executor=None,
    per_site: int = 4,
    intensity: float = 0.5,
    noise_threshold: float = 0.75,
    stepping: Optional[str] = None,
    workload=None,
    faults=None,
    quorum: Optional[int] = None,
):
    from repro.tomography.interference import run_interference_study
    from repro.workloads import mixed_workload

    _reject_workload_override("MIXED-TENANCY", workload, "intensity")
    wl = mixed_workload(intensity=intensity)
    return run_interference_study(
        _interference_dataset(per_site), wl,
        iterations=iterations, num_fragments=num_fragments, seed=seed,
        noise_threshold=noise_threshold, stepping=stepping,
        executor=executor, faults=faults, quorum=quorum,
    )


# ---------------------------------------------------------------------- #
# fault-injection family: tomography under injected failure
# (repro.faults + repro.tomography.faults; docs/faults.md)
# ---------------------------------------------------------------------- #
def _format_faults(summary: Dict[str, object]) -> str:
    lines = [
        f"scenario {summary['scenario']} (family {summary['family']}, "
        f"faults {summary['faults']})",
        f"dataset {summary['dataset']}: {summary['hosts']} hosts, "
        f"{summary['achieved_iterations']}/{summary['iterations']} iterations"
        f"{' (DEGRADED)' if summary.get('degraded') else ''}",
        f"clusters found: {summary['found_clusters']} "
        f"(expected: {summary['expected_clusters']})",
        f"overlapping NMI: {summary['measured_nmi']:.3f} "
        f"(noise threshold {summary['noise_threshold']:.2f} -> "
        f"{'recovered' if summary['recovered'] else 'DEGRADED'})",
    ]
    if summary.get("detected"):
        lines.append(
            f"failure detected at iteration {summary['detected_iteration']} "
            f"({summary['iterations_to_detect']} post-onset measurements, "
            f"time to detect {summary['time_to_detect_s']:.3f} s)"
        )
    elif summary.get("fault_injectors"):
        lines.append(
            "failure not detected "
            f"(no duration spike over {summary['detect_factor']:.2f}x baseline)"
        )
    if summary.get("localized_link"):
        rank = summary.get("localization_rank")
        ttl = summary.get("time_to_localize_s")
        lines.append(
            f"failure localized: {summary['localized_link']}"
            f"{f' (true link at rank {rank})' if rank is not None else ''}"
            + (f", time to localize {ttl:.3f} s" if ttl is not None else "")
        )
    elif summary.get("localization_status") not in (None, "no-faults"):
        candidates = summary.get("localization_candidates") or []
        suffix = (
            f"; candidates: {', '.join(c['link'] for c in candidates[:3])}"
            if candidates else ""
        )
        lines.append(
            f"failure not localized ({summary['localization_status']}{suffix})"
        )
    epochs = summary.get("epochs") or []
    if len(epochs) > 1:
        for e in epochs:
            verdict = e.get("localized_link") or e.get("localization_status")
            lines.append(
                f"  epoch {e['epoch']} (iterations {e['onset_iteration']}.."
                f"{e['end_iteration'] - 1}): "
                f"{'detected' if e.get('detected') else 'not detected'}, "
                f"localized -> {verdict}"
                + (
                    f" (rank {e['localization_rank']})"
                    if e.get("localization_rank") is not None else ""
                )
            )
    if summary.get("link_failures"):
        lines.append(
            f"link failures: {summary['link_failures']} "
            f"({summary['link_repairs']} repaired, "
            f"{summary['link_downtime_s']:.3f} s downtime)"
        )
    if summary.get("route_flaps"):
        lines.append(f"route flaps: {summary['route_flaps']}")
    if summary.get("tracker_outages"):
        lines.append(
            f"tracker outages: {summary['tracker_outages']} "
            f"({summary['announce_retries']} announce retries, "
            f"{summary['announce_failures']} gave up)"
        )
    if summary.get("tenant_arrivals"):
        lines.append(
            f"tenant cycling: {summary['tenant_arrivals']} arrivals, "
            f"{summary['tenant_departures']} departures"
        )
    return "\n".join(lines)


def _reject_faults_override(name: str, faults, params: str) -> None:
    """Fault scenarios *are* their fault plan — same contract as
    :func:`_reject_workload_override` for ``--faults``."""
    if faults is not None:
        raise ValueError(
            f"scenario {name} builds its own fault plan from its parameters "
            f"({params}); drop --faults, or inject a preset plan under a "
            "campaign scenario instead (e.g. `repro run G-T --faults "
            "blackout`)"
        )


@runner_scenario("FAULT-INJECTION", family="fault-injection",
                 iterations=4, num_fragments=240,
                 formatter=_format_faults,
                 tags=("beyond-paper", "faults", "sweepable"),
                 description="tomography under injected failures; sweep "
                             "`intensity` to map NMI vs failure intensity")
def _scenario_fault_injection(
    iterations: int,
    num_fragments: int,
    seed: int,
    executor=None,
    per_site: int = 4,
    preset: str = "link-failure",
    intensity: float = 1.0,
    noise_threshold: float = 0.75,
    quorum: Optional[int] = None,
    stepping: Optional[str] = None,
    workload=None,
    faults=None,
):
    from repro.faults import (
        chaos_plan, link_failure_plan, route_flap_plan,
        tenant_cycle_plan, tracker_outage_plan,
    )
    from repro.tomography.faults import run_fault_study

    _reject_faults_override("FAULT-INJECTION", faults, "preset/intensity")
    builders = {
        "link-failure": link_failure_plan,
        "route-flap": route_flap_plan,
        "tracker-outage": tracker_outage_plan,
        "tenant-cycle": tenant_cycle_plan,
        "chaos": chaos_plan,
    }
    try:
        plan = builders[preset](intensity=intensity)
    except KeyError:
        raise ValueError(
            f"unknown fault preset {preset!r}; "
            f"available: {', '.join(sorted(builders))}"
        ) from None
    return run_fault_study(
        _interference_dataset(per_site), plan, workload=workload,
        iterations=iterations, num_fragments=num_fragments, seed=seed,
        noise_threshold=noise_threshold, stepping=stepping,
        executor=executor, quorum=quorum,
    )


@runner_scenario("LINK-BLACKOUT", family="fault-injection",
                 iterations=6, num_fragments=240,
                 formatter=_format_faults,
                 tags=("beyond-paper", "faults", "sweepable"),
                 description="persistent bottleneck failure mid-campaign; "
                             "headline metrics: time to detect and time to "
                             "localize the dead link")
def _scenario_link_blackout(
    iterations: int,
    num_fragments: int,
    seed: int,
    executor=None,
    per_site: int = 4,
    from_iteration: int = 2,
    residual: float = 0.02,
    detect_factor: Optional[float] = None,
    noise_threshold: float = 0.6,
    quorum: Optional[int] = None,
    stepping: Optional[str] = None,
    workload=None,
    faults=None,
):
    from repro.faults import blackout_plan
    from repro.tomography.faults import DETECT_FACTOR, run_fault_study

    _reject_faults_override("LINK-BLACKOUT", faults, "from_iteration/residual")
    plan = blackout_plan(
        from_iteration=from_iteration,
        residual=residual,
        link="bordeaux.bordeplage.bottleneck",
    )
    return run_fault_study(
        _localization_dataset(per_site), plan, workload=workload,
        iterations=iterations, num_fragments=num_fragments, seed=seed,
        noise_threshold=noise_threshold, stepping=stepping,
        detect_factor=DETECT_FACTOR if detect_factor is None else detect_factor,
        executor=executor, quorum=quorum,
    )


@runner_scenario("MIGRATING-BOTTLENECK", family="fault-injection",
                 iterations=8, num_fragments=240,
                 formatter=_format_faults,
                 tags=("beyond-paper", "faults", "sweepable"),
                 description="self-healing routing under a relocating "
                             "failure: the control plane reroutes around "
                             "each epoch's victim, the tomography must "
                             "re-detect and re-localize it")
def _scenario_migrating_bottleneck(
    iterations: int,
    num_fragments: int,
    seed: int,
    executor=None,
    per_site: int = 4,
    residual: float = 0.02,
    detect_factor: Optional[float] = None,
    noise_threshold: float = 0.6,
    quorum: Optional[int] = None,
    stepping: Optional[str] = None,
    workload=None,
    faults=None,
):
    """The failure moves mid-campaign: first the Bordeplage bottleneck
    collapses, then (after it recovers) the Bordereau uplink does.  Both
    epochs run with ``reroute=True`` — the control plane recomputes a
    routing table avoiding the victim and live flows re-pin onto the
    standby ``bordeaux.backup`` link — so broadcasts *survive* each
    failure at degraded speed, and the study scores whether detection
    and localization keep up with the moving target (per-epoch verdicts
    under ``epochs``)."""
    from repro.faults import migrating_plan
    from repro.tomography.faults import DETECT_FACTOR, run_fault_study

    _reject_faults_override("MIGRATING-BOTTLENECK", faults, "residual/onsets")
    if iterations < 3:
        raise ValueError(
            "MIGRATING-BOTTLENECK needs at least 3 iterations "
            "(a healthy baseline plus one measurement per epoch)"
        )
    onset_1 = max(1, iterations // 3)
    onset_2 = max(onset_1 + 1, (2 * iterations) // 3)
    plan = migrating_plan(
        links=(
            "bordeaux.bordeplage.bottleneck",
            "bordeaux.bordereau.switch--bordeaux.router",
        ),
        onsets=(onset_1, onset_2),
        residual=residual,
    )
    return run_fault_study(
        _localization_dataset(per_site, backup=True), plan, workload=workload,
        iterations=iterations, num_fragments=num_fragments, seed=seed,
        noise_threshold=noise_threshold, stepping=stepping,
        detect_factor=DETECT_FACTOR if detect_factor is None else detect_factor,
        executor=executor, quorum=quorum,
    )
