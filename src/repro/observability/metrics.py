"""Process-wide metrics registry: counters, gauges and histograms/timers.

This is the successor of the old module-global ``RUN_TALLY`` dict in
``repro.bittorrent.swarm``: every subsystem increments *named* metrics on one
shared :class:`MetricsRegistry` (:data:`METRICS`), and consumers take
*snapshots* — cheap, picklable, mergeable value objects — instead of peeking
at a mutable global.

Three metric kinds:

* **counters** — monotonically increasing totals (``registry.count(name, n)``);
* **gauges** — last-value-wins observations (``registry.gauge(name, v)``);
* **histograms** — ``(count, total, min, max)`` summaries of repeated
  observations (``registry.observe(name, v)``; :meth:`MetricsRegistry.timer`
  observes wall-clock seconds around a block).

Two properties carry the whole design:

* **cheap by default** — recording a counter is one dict update and no
  allocation beyond the key; there is no I/O, no locking (registries are
  per-process, and the simulator is single-threaded within a process) and no
  formatting until a snapshot is asked for.  Telemetry never draws random
  values and never touches the simulation clock, so every seed golden replays
  bit-for-bit with metrics on (they are always on) — see
  ``tests/test_seed_replay.py``.
* **merge across processes** — executor workers return a
  :class:`MetricsSnapshot` *delta* alongside their results (see
  :class:`repro.scenarios.executors.TaskOutput`); the parent merges the
  deltas into its own registry, so a ``--executor process`` campaign ends
  with the same merged counters as the serial run
  (``tests/test_executors.py`` pins the equality).
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

#: Histogram summary tuple: (count, total, minimum, maximum).
HistStat = Tuple[int, float, float, float]


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable, picklable copy of a registry's state.

    Snapshots support subtraction (``later.delta_since(earlier)``) to scope
    metrics to one run, and merging (``a.merged(b)``) to combine the deltas
    shipped back by executor workers.  Gauges are last-value-wins: a merge
    keeps ``other``'s gauge where both define it.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistStat] = field(default_factory=dict)

    def counter(self, name: str, default: float = 0.0) -> float:
        """Value of one counter (``default`` when never incremented)."""
        return self.counters.get(name, default)

    def delta_since(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Counters/histograms accumulated since ``earlier``; gauges kept.

        Zero deltas are dropped, so the result names exactly the metrics the
        measured interval touched.
        """
        counters = {}
        for name, value in self.counters.items():
            delta = value - earlier.counters.get(name, 0.0)
            if delta:
                counters[name] = delta
        histograms = {}
        for name, (count, total, lo, hi) in self.histograms.items():
            prev = earlier.histograms.get(name)
            if prev is None:
                histograms[name] = (count, total, lo, hi)
            elif count > prev[0]:
                # min/max cannot be un-merged; the interval inherits them.
                histograms[name] = (count - prev[0], total - prev[1], lo, hi)
        return MetricsSnapshot(counters, dict(self.gauges), histograms)

    def merged(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """This snapshot with ``other``'s deltas added on top."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0.0) + value
        gauges = {**self.gauges, **other.gauges}
        histograms = dict(self.histograms)
        for name, (count, total, lo, hi) in other.histograms.items():
            prev = histograms.get(name)
            if prev is None:
                histograms[name] = (count, total, lo, hi)
            else:
                histograms[name] = (
                    prev[0] + count,
                    prev[1] + total,
                    min(prev[2], lo),
                    max(prev[3], hi),
                )
        return MetricsSnapshot(counters, gauges, histograms)

    def jsonable(self) -> Dict[str, object]:
        """Plain-dict form for JSON embedding (BENCH rows, ``--json`` files)."""
        out: Dict[str, object] = {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
        }
        if self.gauges:
            out["gauges"] = {k: self.gauges[k] for k in sorted(self.gauges)}
        if self.histograms:
            out["histograms"] = {
                name: {
                    "count": stat[0],
                    "total": stat[1],
                    "min": stat[2],
                    "max": stat[3],
                }
                for name, stat in sorted(self.histograms.items())
            }
        return out

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)


class MetricsRegistry:
    """Mutable per-process metric store (use the shared :data:`METRICS`).

    All mutators are O(1) dict updates; nothing here allocates per-event
    records or performs I/O, which is what keeps the always-on registry
    within the ≤1% disabled-telemetry overhead budget
    (``docs/observability.md`` records the measurement).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, list] = {}

    # ------------------------------------------------------------------ #
    def count(self, name: str, value: float = 1) -> None:
        """Increment counter ``name`` by ``value`` (default 1)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest observation."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``."""
        stat = self._histograms.get(name)
        if stat is None:
            self._histograms[name] = [1, value, value, value]
        else:
            stat[0] += 1
            stat[1] += value
            if value < stat[2]:
                stat[2] = value
            if value > stat[3]:
                stat[3] = value

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Observe the wall-clock seconds of the enclosed block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> MetricsSnapshot:
        """Immutable copy of the current state."""
        return MetricsSnapshot(
            dict(self._counters),
            dict(self._gauges),
            {name: tuple(stat) for name, stat in self._histograms.items()},
        )

    def merge(self, snapshot: Optional[MetricsSnapshot]) -> None:
        """Fold a (worker) snapshot delta into this registry."""
        if snapshot is None:
            return
        for name, value in snapshot.counters.items():
            self.count(name, value)
        for name, value in snapshot.gauges.items():
            self.gauge(name, value)
        for name, (count, total, lo, hi) in snapshot.histograms.items():
            stat = self._histograms.get(name)
            if stat is None:
                self._histograms[name] = [count, total, lo, hi]
            else:
                stat[0] += count
                stat[1] += total
                stat[2] = min(stat[2], lo)
                stat[3] = max(stat[3], hi)

    def reset(self) -> None:
        """Drop every recorded metric (tests and long-lived services)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: The process-wide registry every subsystem records into.
METRICS = MetricsRegistry()


#: Metric catalogue: every well-known name with its kind and meaning, the
#: reference for ``repro metrics`` and docs/observability.md.  Subsystems may
#: add further names (e.g. per-fault-kind counters) following the same
#: ``subsystem.metric`` convention.
METRIC_CATALOGUE: Dict[str, Tuple[str, str]] = {
    "swarm.broadcasts": ("counter", "broadcasts completed in this process"),
    "swarm.control_steps": ("counter", "control points the swarm loops executed"),
    "swarm.broadcasts.fixed": ("counter", "broadcasts run with fixed stepping"),
    "swarm.broadcasts.event": ("counter", "broadcasts run with event stepping"),
    "swarm.receipts": ("counter", "fragments received across all broadcasts"),
    "batched.runs": ("counter", "batched lock-step runs"),
    "batched.lanes": ("counter", "lanes finished inside batched runs"),
    "executor.tasks": ("counter", "campaign task chunks executed"),
    "executor.retries": ("counter", "retry rounds the process pool needed"),
    "executor.timeouts": ("counter", "tasks declared hung past their deadline"),
    "executor.worker_crashes": ("counter", "tasks lost to crashed/broken workers"),
    "campaign.iterations": ("counter", "measurement iterations collected"),
    "campaign.checkpoint_writes": ("counter", "per-iteration checkpoints written"),
    "campaign.checkpoint_resumes": ("counter", "iterations restored from disk"),
    "workload.dispatches": ("counter", "agenda events dispatched by workload engines"),
    "workload.network_changes": ("counter", "shared-allocation change broadcasts"),
    "faults.injected": ("counter", "fault events injected (all kinds)"),
    "faults.link-failure": ("counter", "link failures injected"),
    "faults.link-repair": ("counter", "failed links repaired"),
    "faults.route-flap": ("counter", "route flaps started"),
    "faults.route-settle": ("counter", "route flaps settled"),
    "faults.tracker-outage": ("counter", "tracker outages started"),
    "faults.tracker-recover": ("counter", "tracker outages recovered"),
    "faults.tenant-arrival": ("counter", "tenants cycled in mid-iteration"),
    "faults.tenant-departure": ("counter", "tenants cycled out mid-iteration"),
    "routing.recomputes": ("counter", "avoid-set routing tables derived by the control plane"),
    "routing.repins": ("counter", "live flows moved onto recomputed routes"),
    "routing.fallback_hits": ("counter", "route lookups served by the fallback table (no detour existed)"),
    "localization.runs": ("counter", "fault-localization analyses performed"),
    "localization.named": ("counter", "localizations that named a single link"),
    "localization.ambiguous": ("counter", "localizations degraded to a tied candidate set"),
    "pipeline.runs": ("counter", "tomography pipeline analyses"),
    "pipeline.iterations": ("counter", "iterations aggregated by pipelines"),
    "pipeline.nmi": ("gauge", "overlapping NMI of the latest pipeline run"),
    "pipeline.measure_s": ("histogram", "wall seconds of measurement phases"),
    "pipeline.analyze_s": ("histogram", "wall seconds of analysis phases"),
    "louvain.runs": ("counter", "Louvain clusterings performed"),
    "louvain.levels": ("counter", "aggregation levels across all runs"),
    "louvain.passes": ("counter", "local-moving sweeps across all runs"),
}


def _validate_catalogue() -> None:  # pragma: no cover - import-time guard
    for name, (kind, _) in METRIC_CATALOGUE.items():
        if kind not in ("counter", "gauge", "histogram"):
            raise AssertionError(f"bad metric kind for {name}: {kind}")
        if not math.isfinite(len(name)):
            raise AssertionError


_validate_catalogue()
