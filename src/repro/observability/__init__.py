"""Unified telemetry layer: metrics registry + structured tracer.

Two independent halves share this package:

* :data:`METRICS` — the always-on, per-process
  :class:`~repro.observability.metrics.MetricsRegistry` of counters, gauges
  and histograms.  Executor workers ship snapshot *deltas* back to the
  parent, which merges them, so campaign totals agree across the serial,
  process-pool and batched backends.
* :data:`TRACER` — the off-by-default
  :class:`~repro.observability.tracer.Tracer` writing typed span/event
  JSONL records, enabled by ``--trace PATH`` / ``REPRO_TRACE`` and exported
  to Chrome trace-event format by ``repro trace export --chrome``.

Both halves obey the replay invariant: telemetry draws zero random values
and never moves the simulation clock, so every sha256 seed golden replays
bit-for-bit with tracing on or off.  See ``docs/observability.md``.
"""

from repro.observability.export import (
    export_chrome,
    load_records,
    summarize,
    to_chrome,
    trace_meta,
)
from repro.observability.metrics import (
    METRIC_CATALOGUE,
    METRICS,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.observability.tracer import (
    TRACE_DETAIL_ENV,
    TRACE_DETAILS,
    TRACE_ENV,
    TRACE_OWNER_ENV,
    TRACE_SCHEMA,
    TRACER,
    TraceConfigError,
    Tracer,
    configure_tracing,
    trace_from_env,
    worker_trace_path,
)

__all__ = [
    "METRICS",
    "METRIC_CATALOGUE",
    "MetricsRegistry",
    "MetricsSnapshot",
    "TRACER",
    "TRACE_DETAILS",
    "TRACE_DETAIL_ENV",
    "TRACE_ENV",
    "TRACE_OWNER_ENV",
    "TRACE_SCHEMA",
    "TraceConfigError",
    "Tracer",
    "configure_tracing",
    "export_chrome",
    "load_records",
    "summarize",
    "to_chrome",
    "trace_from_env",
    "trace_meta",
    "worker_trace_path",
]
