"""Trace-file consumers: Chrome trace-event export and summaries.

The tracer (:mod:`repro.observability.tracer`) writes one JSON object per
line.  This module turns such a file into

* the **Chrome trace-event format** understood by ``chrome://tracing`` and
  https://ui.perfetto.dev (``repro trace export --chrome``), and
* a compact **summary** (record counts, span time per name) backing
  ``repro trace summary``.

Clock mapping in the Chrome export: every record keeps its originating
``pid``; wall-time spans become complete events (``ph: "X"``) on thread 0
with microsecond ``ts``/``dur`` relative to tracer start, while sim-time
events become instant events (``ph: "i"``) on a dedicated thread 1 whose
timeline is *simulation* microseconds — the two clocks share one view but
never mix on a track.  Thread-name metadata records label the tracks.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

#: Chrome "thread" ids used to keep the two clocks on separate tracks.
WALL_TID = 0
SIM_TID = 1


def load_records(path: str) -> List[dict]:
    """Parse a trace JSONL file (blank lines tolerated)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: not a JSON trace record: {exc}"
                ) from exc
    return records


def to_chrome(records: Iterable[dict]) -> Dict[str, object]:
    """Convert parsed trace records to a Chrome trace-event object.

    Returns the object form ``{"traceEvents": [...]}``; every emitted event
    carries the required ``ph``/``ts``/``pid``/``tid`` keys with timestamps
    in microseconds.
    """
    events: List[dict] = []
    named_pids = set()
    for record in records:
        kind = record.get("type")
        pid = int(record.get("pid", 0))
        if pid not in named_pids:
            named_pids.add(pid)
            for tid, label in ((WALL_TID, "wall"), (SIM_TID, "sim")):
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": label},
                    }
                )
        if kind == "span":
            events.append(
                {
                    "name": record["name"],
                    "ph": "X",
                    "pid": pid,
                    "tid": WALL_TID,
                    "ts": record["wall_ts"] * 1e6,
                    "dur": record["wall_dur"] * 1e6,
                    "args": record.get("args", {}),
                }
            )
        elif kind == "event":
            sim_ts = record.get("sim_ts")
            events.append(
                {
                    "name": record["name"],
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": SIM_TID if sim_ts is not None else WALL_TID,
                    "ts": (sim_ts if sim_ts is not None else record["wall_ts"])
                    * 1e6,
                    "args": record.get("args", {}),
                }
            )
        # meta records carry no timeline position; they are dropped here.
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome(trace_path: str, out_path: str) -> int:
    """Write the Chrome trace-event export of ``trace_path`` to ``out_path``.

    Returns the number of trace events written (metadata records included).
    """
    chrome = to_chrome(load_records(trace_path))
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(chrome, handle)
    return len(chrome["traceEvents"])


def summarize(records: Iterable[dict]) -> Dict[str, Dict[str, object]]:
    """Per-name rollup: record counts plus total span seconds.

    Returns ``{name: {"type": ..., "count": n, ["wall_s": seconds]}}``,
    sorted consumers can render directly (``repro trace summary``).
    """
    summary: Dict[str, Dict[str, object]] = {}
    for record in records:
        kind = record.get("type")
        if kind not in ("span", "event"):
            continue
        entry = summary.setdefault(
            record["name"], {"type": kind, "count": 0}
        )
        entry["count"] = int(entry["count"]) + 1
        if kind == "span":
            entry["wall_s"] = float(entry.get("wall_s", 0.0)) + float(
                record.get("wall_dur", 0.0)
            )
    return summary


def trace_meta(records: Iterable[dict]) -> Optional[dict]:
    """The first meta record of a trace, or None for a headerless file."""
    for record in records:
        if record.get("type") == "meta":
            return record
    return None
