"""Structured tracer: typed span/event records on a JSONL sink.

The tracer is the *expensive* half of the telemetry layer and is therefore
**off by default**: every instrumentation site guards itself with the single
attribute test ``if TRACER.enabled:`` (and high-frequency sites additionally
with ``TRACER.full``), so a disabled tracer costs one boolean check — the
measured whole-suite overhead is within the ≤1% budget (see
``docs/observability.md``).

Two clocks, by record type:

* **spans** are stamped in *wall time*: ``wall_ts`` (seconds since the
  tracer was configured, from ``time.perf_counter``) and ``wall_dur``.
  Examples: one broadcast's lifetime, an executor submission round, the
  pipeline's measure/analyze phases.
* **events** are stamped in *simulation time* (``sim_ts`` seconds on the
  shared simulation clock) when they describe simulated causality — fault
  injections, workload dispatches, fluid transitions — and carry only
  ``wall_ts`` when they describe host-side machinery (worker crashes,
  checkpoint writes, retry rounds).

Hard invariant: tracing draws **zero random values and zero simulation-clock
movements** — record emission only *reads* state and the host clock, so every
sha256 seed golden replays bit-for-bit with tracing on or off
(``tests/test_seed_replay.py`` pins this for every scenario family).

Routing: ``repro run --trace PATH`` (or the ``REPRO_TRACE`` environment
variable) configures the process-wide :data:`TRACER`.  Worker processes of a
process-pool campaign inherit the environment and suffix the path with their
pid (``trace.jsonl`` → ``trace.w1234.jsonl``) so concurrent writers never
collide; the owning process is recorded in ``REPRO_TRACE_OWNER`` to tell the
two cases apart.  An unwritable path fails fast at configure time with a
clear error instead of dying mid-campaign.

Record schema (one JSON object per line, ``schema: repro-trace-v1``):

* ``{"type": "meta", "schema": ..., "pid": ..., "wall_start": ...,
  "detail": ...}`` — first line of every file;
* ``{"type": "event", "name": ..., "pid": ..., "wall_ts": ...,
  ["sim_ts": ...,] "args": {...}}``;
* ``{"type": "span", "name": ..., "pid": ..., "wall_ts": ...,
  "wall_dur": ..., "args": {...}}``.

``repro trace export --chrome`` converts a trace file to the Chrome
trace-event format (``chrome://tracing`` / https://ui.perfetto.dev), see
:mod:`repro.observability.export`.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional

#: Environment variable routing every run's trace to a JSONL path.
TRACE_ENV = "REPRO_TRACE"

#: Environment variable selecting the detail level (``summary``/``full``).
TRACE_DETAIL_ENV = "REPRO_TRACE_DETAIL"

#: Pid of the process that configured the trace path; any *other* process
#: seeing the variable is a pool worker and must suffix its own path.
TRACE_OWNER_ENV = "REPRO_TRACE_OWNER"

#: Recognised detail levels: ``summary`` emits per-broadcast/per-phase
#: records only; ``full`` additionally emits per-control-step records
#: (jumps, conversion passes, fluid transitions, workload dispatches).
TRACE_DETAILS = ("summary", "full")

#: On-disk schema version (bump on incompatible record change).
TRACE_SCHEMA = "repro-trace-v1"


class TraceConfigError(ValueError):
    """The requested trace destination cannot be used (fail fast)."""


def worker_trace_path(path: str, pid: int) -> str:
    """Per-worker sibling of ``path``: ``trace.jsonl`` → ``trace.w{pid}.jsonl``.

    Process-pool workers write their own files so concurrent campaigns never
    interleave (or clobber) records in one file.
    """
    base = Path(path)
    return str(base.with_name(f"{base.stem}.w{pid}{base.suffix or '.jsonl'}"))


class Tracer:
    """Process-wide structured tracer (use the shared :data:`TRACER`).

    ``enabled`` is False until :meth:`configure` succeeds; instrumentation
    sites must guard on it so the disabled tracer costs one attribute read.
    ``full`` gates the high-frequency record types.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.full = False
        self.path: Optional[str] = None
        self.detail = "summary"
        self._file = None
        self._pid = os.getpid()
        self._perf_start = 0.0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def configure(self, path: str, detail: str = "summary") -> None:
        """Open ``path`` for JSONL records and enable the tracer.

        Raises :class:`TraceConfigError` immediately when the destination is
        not writable (missing directory, permission, path is a directory), so
        a campaign fails before its first iteration rather than mid-run.
        Re-configuring closes the previous sink first.
        """
        detail = (detail or "summary").strip().lower()
        if detail not in TRACE_DETAILS:
            raise TraceConfigError(
                f"trace detail must be one of {TRACE_DETAILS}, got {detail!r}"
            )
        if self._file is not None:
            self.close()
        try:
            handle = open(path, "w", encoding="utf-8")
        except OSError as exc:
            raise TraceConfigError(
                f"trace path {path!r} is not writable: {exc}"
            ) from exc
        self._file = handle
        self._pid = os.getpid()
        self._perf_start = time.perf_counter()
        self.path = path
        self.detail = detail
        self.full = detail == "full"
        self.enabled = True
        self._write(
            {
                "type": "meta",
                "schema": TRACE_SCHEMA,
                "pid": self._pid,
                "wall_start": time.time(),
                "detail": detail,
            }
        )

    def close(self) -> None:
        """Flush and close the sink; the tracer returns to the no-op state."""
        if self._file is not None:
            try:
                self._file.flush()
                self._file.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        self._file = None
        self.enabled = False
        self.full = False
        self.path = None

    def flush(self) -> None:
        """Push buffered records to disk (workers flush after every task)."""
        if self._file is not None:
            self._file.flush()

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def _write(self, record: dict) -> None:
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")

    def event(self, name: str, sim_time: Optional[float] = None, **args) -> None:
        """Emit one typed event record.

        ``sim_time`` stamps the record on the simulation clock; host-side
        events omit it and are ordered by ``wall_ts`` alone.
        """
        if not self.enabled:
            return
        record = {
            "type": "event",
            "name": name,
            "pid": self._pid,
            "wall_ts": time.perf_counter() - self._perf_start,
        }
        if sim_time is not None:
            record["sim_ts"] = float(sim_time)
        if args:
            record["args"] = args
        self._write(record)

    def span_record(self, name: str, started: float, **args) -> None:
        """Emit a span whose start was sampled earlier with :meth:`now`.

        For code that cannot use the :meth:`span` context manager (generator
        frames, callbacks): sample ``started = TRACER.now()`` at entry and
        call this at exit.
        """
        if not self.enabled:
            return
        ended = time.perf_counter()
        record = {
            "type": "span",
            "name": name,
            "pid": self._pid,
            "wall_ts": started - self._perf_start,
            "wall_dur": ended - started,
        }
        if args:
            record["args"] = args
        self._write(record)

    @staticmethod
    def now() -> float:
        """Monotonic wall-clock sample for :meth:`span_record` starts."""
        return time.perf_counter()

    @contextmanager
    def span(self, name: str, **args) -> Iterator[None]:
        """Emit a wall-time span around the enclosed block."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            self.span_record(name, started, **args)


#: The process-wide tracer every subsystem emits through.
TRACER = Tracer()


def configure_tracing(path: str, detail: Optional[str] = None) -> None:
    """Enable tracing to ``path`` and export it to child processes.

    Sets :data:`TRACE_ENV`/:data:`TRACE_OWNER_ENV` so process-pool workers
    (which inherit the environment) route their own records to per-worker
    siblings of ``path`` — see :func:`trace_from_env`.
    """
    if detail is None:
        detail = os.environ.get(TRACE_DETAIL_ENV, "summary")
    TRACER.configure(path, detail=detail)
    os.environ[TRACE_ENV] = path
    os.environ[TRACE_DETAIL_ENV] = TRACER.detail
    os.environ[TRACE_OWNER_ENV] = str(os.getpid())


def trace_from_env() -> bool:
    """Configure the tracer from the environment if routing is requested.

    Idempotent and cheap when :data:`TRACE_ENV` is unset or the tracer is
    already configured.  A process whose pid differs from
    :data:`TRACE_OWNER_ENV` is a pool worker: it writes to the per-worker
    sibling path so concurrent writers never collide.  Returns whether the
    tracer is enabled afterwards.
    """
    pid = os.getpid()
    if TRACER.enabled and TRACER._pid != pid:
        # A fork-started pool worker inherited the parent's live sink.
        # Writing there would interleave with the parent (shared file
        # offset) and stamp the parent's pid in every record, so close our
        # copy — the parent flushes right before spawning workers, leaving
        # the inherited buffer empty — and re-route below.
        TRACER.close()
    path = os.environ.get(TRACE_ENV, "").strip()
    if not path:
        return TRACER.enabled
    if TRACER.enabled:
        return True
    detail = os.environ.get(TRACE_DETAIL_ENV, "summary")
    owner = os.environ.get(TRACE_OWNER_ENV, "").strip()
    if owner and owner != str(pid):
        path = worker_trace_path(path, pid)
    else:
        os.environ[TRACE_OWNER_ENV] = str(pid)
    TRACER.configure(path, detail=detail)
    return True
