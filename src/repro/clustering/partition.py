"""Partition datatype: an assignment of nodes to disjoint clusters.

Both the clustering algorithms and the ground truths in the experiments are
partitions (the paper deliberately restricts itself to single-level,
non-overlapping clusterings); this class provides the conversions and
sanity checks the rest of the code relies on.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Set, Tuple

Node = Hashable


class Partition:
    """An immutable partition of a node set into disjoint, non-empty clusters."""

    def __init__(self, clusters: Iterable[Iterable[Node]]) -> None:
        cleaned: List[frozenset] = []
        seen: Set[Node] = set()
        for cluster in clusters:
            members = frozenset(cluster)
            if not members:
                continue
            overlap = members & seen
            if overlap:
                raise ValueError(
                    f"clusters overlap on {sorted(map(repr, overlap))[:3]}; "
                    "Partition represents disjoint clusterings only"
                )
            seen |= members
            cleaned.append(members)
        if not cleaned:
            raise ValueError("a partition must contain at least one non-empty cluster")
        # Canonical order: by decreasing size then lexicographic representative,
        # so equal partitions compare equal regardless of construction order.
        self._clusters: Tuple[frozenset, ...] = tuple(
            sorted(cleaned, key=lambda c: (-len(c), sorted(map(repr, c))))
        )
        self._membership: Dict[Node, int] = {}
        for idx, cluster in enumerate(self._clusters):
            for node in cluster:
                self._membership[node] = idx

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_membership(cls, membership: Mapping[Node, Hashable]) -> "Partition":
        """Build from a ``node -> cluster label`` mapping."""
        groups: Dict[Hashable, Set[Node]] = {}
        for node, label in membership.items():
            groups.setdefault(label, set()).add(node)
        return cls(groups.values())

    @classmethod
    def singletons(cls, nodes: Iterable[Node]) -> "Partition":
        """Every node in its own cluster (the Louvain starting point)."""
        return cls([{node} for node in nodes])

    @classmethod
    def whole(cls, nodes: Iterable[Node]) -> "Partition":
        """All nodes in a single cluster."""
        return cls([set(nodes)])

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def clusters(self) -> Tuple[frozenset, ...]:
        return self._clusters

    @property
    def num_clusters(self) -> int:
        return len(self._clusters)

    def nodes(self) -> Set[Node]:
        return set(self._membership)

    def __len__(self) -> int:
        return len(self._membership)

    def __contains__(self, node: Node) -> bool:
        return node in self._membership

    def cluster_of(self, node: Node) -> frozenset:
        """The cluster containing ``node``."""
        try:
            return self._clusters[self._membership[node]]
        except KeyError as exc:
            raise KeyError(f"node {node!r} not covered by this partition") from exc

    def cluster_index(self, node: Node) -> int:
        return self._membership[node]

    def membership(self) -> Dict[Node, int]:
        """``node -> cluster index`` with the canonical cluster ordering."""
        return dict(self._membership)

    def same_cluster(self, u: Node, v: Node) -> bool:
        return self._membership[u] == self._membership[v]

    def sizes(self) -> List[int]:
        return [len(cluster) for cluster in self._clusters]

    def restrict(self, nodes: Iterable[Node]) -> "Partition":
        """Partition induced on a subset of the nodes."""
        keep = set(nodes)
        missing = keep - set(self._membership)
        if missing:
            raise KeyError(f"nodes not covered: {sorted(map(repr, missing))[:3]}")
        clusters = [cluster & keep for cluster in self._clusters if cluster & keep]
        return Partition(clusters)

    def relabel(self, mapping: Mapping[Node, Node]) -> "Partition":
        """Apply a node renaming (used when aggregating graphs in Louvain)."""
        return Partition(
            [{mapping.get(node, node) for node in cluster} for cluster in self._clusters]
        )

    # ------------------------------------------------------------------ #
    # comparisons
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return set(self._clusters) == set(other._clusters)

    def __hash__(self) -> int:
        return hash(frozenset(self._clusters))

    def agrees_with(self, other: "Partition") -> bool:
        """True when both partitions group the (same) node set identically."""
        return self == other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = ", ".join(str(s) for s in self.sizes())
        return f"Partition(clusters={self.num_clusters}, sizes=[{sizes}])"
