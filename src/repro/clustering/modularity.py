"""Weighted Newman–Girvan modularity (Eq. 3 of the paper).

For a weighted undirected graph with total edge weight ``m`` and a partition
into clusters, modularity is

    Q = Σ_c [ w_in(c) / m  −  ( w_tot(c) / (2 m) )² ]

where ``w_in(c)`` is the total weight of intra-cluster edges of cluster ``c``
(self-loops counted once) and ``w_tot(c)`` is the summed weighted degree of
its nodes.  This is the ``Tr(e) − ‖e²‖`` form quoted by the paper, written in
the sums the Louvain method manipulates incrementally.
"""

from __future__ import annotations

from typing import Dict, Hashable

import numpy as np

from repro.clustering.partition import Partition
from repro.graph.wgraph import WeightedGraph


def modularity(graph: WeightedGraph, partition: Partition) -> float:
    """Weighted modularity of ``partition`` on ``graph``.

    Nodes of the graph missing from the partition raise ``KeyError``; isolated
    nodes contribute nothing.  A graph with zero total weight has undefined
    modularity and raises ``ValueError``.
    """
    total = graph.total_weight()
    if total <= 0:
        raise ValueError("modularity is undefined for graphs with zero total weight")
    two_m = 2.0 * total

    membership = {}
    for node in graph.nodes():
        membership[node] = partition.cluster_index(node)

    intra: Dict[int, float] = {}
    degree: Dict[int, float] = {}
    for u, v, w in graph.edges():
        cu, cv = membership[u], membership[v]
        if cu == cv:
            intra[cu] = intra.get(cu, 0.0) + w
    for node in graph.nodes():
        c = membership[node]
        degree[c] = degree.get(c, 0.0) + graph.degree_weight(node)

    q = 0.0
    for c in set(membership.values()):
        q += intra.get(c, 0.0) / total - (degree.get(c, 0.0) / two_m) ** 2
    return q


def modularity_matrix_form(weights: np.ndarray, labels, partition: Partition) -> float:
    """Modularity computed from a symmetric weight matrix.

    Provided as an independent implementation used by the test-suite to
    cross-check :func:`modularity` (the ``e``-matrix formulation of Newman &
    Girvan: ``Q = Tr(e) − ‖e²‖``).
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
        raise ValueError("weight matrix must be square")
    if not np.allclose(weights, weights.T, atol=1e-9):
        raise ValueError("weight matrix must be symmetric")
    labels = list(labels)
    if len(labels) != weights.shape[0]:
        raise ValueError("labels must match matrix size")
    total = weights.sum()
    if total <= 0:
        raise ValueError("modularity is undefined for zero-weight matrices")

    k = partition.num_clusters
    community = np.array([partition.cluster_index(node) for node in labels])
    e = np.zeros((k, k), dtype=float)
    for i in range(k):
        for j in range(k):
            block = weights[np.ix_(community == i, community == j)]
            e[i, j] = block.sum() / total
    return float(np.trace(e) - np.sum(e @ e))


def modularity_gain_of_merge(
    graph: WeightedGraph, partition: Partition, cluster_a: int, cluster_b: int
) -> float:
    """Change in modularity if two clusters of ``partition`` were merged.

    Utility used by tests and by the greedy agglomerative fallback; the
    Louvain implementation uses its own incremental bookkeeping.
    """
    if cluster_a == cluster_b:
        return 0.0
    clusters = list(partition.clusters)
    merged = clusters[cluster_a] | clusters[cluster_b]
    rest = [c for i, c in enumerate(clusters) if i not in (cluster_a, cluster_b)]
    new_partition = Partition(rest + [merged])
    return modularity(graph, new_partition) - modularity(graph, partition)
