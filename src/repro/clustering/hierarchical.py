"""Hierarchical (multi-level) clustering — the paper's future-work extension.

The paper restricts itself to a single-level partition, which is why the B-T
dataset (Bordeaux + Toulouse with Bordeaux internally split by a bottleneck)
caps at NMI ≈ 0.7: its ground truth is really hierarchical.  Section V
explicitly names extending the method to "overlapping multi-level hierarchical
clusterings" as future work.

This module provides that extension in its simplest useful form:

* :func:`recursive_louvain` — run Louvain on the measured graph, then recurse
  into every recovered cluster's induced subgraph and keep any split whose
  intra-cluster modularity is high enough.  The result is a
  :class:`HierarchicalClustering` — a tree whose leaves are a (usually finer)
  partition of the nodes.
* :meth:`HierarchicalClustering.flatten` — the leaf partition, directly
  comparable to a multi-level ground truth with the existing NMI measures.
* :meth:`HierarchicalClustering.best_match` — choose, among the levels of the
  hierarchy, the one that best matches a reference partition; used by the
  ablation benchmark to show the hierarchy recovers the B-T ground truth that
  the single-level method cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.clustering.louvain import louvain
from repro.clustering.modularity import modularity
from repro.clustering.nmi import overlapping_nmi
from repro.clustering.partition import Partition
from repro.graph.wgraph import WeightedGraph


@dataclass
class ClusterNode:
    """One node of the hierarchy tree.

    Attributes
    ----------
    members:
        Hosts covered by this subtree.
    children:
        Sub-clusters; empty for leaves.
    depth:
        Root is depth 0.
    split_modularity:
        Modularity of the split that produced the children (on the induced
        subgraph), or ``None`` for leaves.
    """

    members: frozenset
    children: List["ClusterNode"] = field(default_factory=list)
    depth: int = 0
    split_modularity: Optional[float] = None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def leaves(self) -> List["ClusterNode"]:
        if self.is_leaf:
            return [self]
        out: List[ClusterNode] = []
        for child in self.children:
            out.extend(child.leaves())
        return out


@dataclass
class HierarchicalClustering:
    """A multi-level clustering of a measured network."""

    roots: List[ClusterNode]

    # ------------------------------------------------------------------ #
    def top_level(self) -> Partition:
        """The coarsest level: one cluster per root (the single-level result)."""
        return Partition([set(root.members) for root in self.roots])

    def flatten(self) -> Partition:
        """The finest level: one cluster per leaf of the tree."""
        leaves = [set(leaf.members) for root in self.roots for leaf in root.leaves()]
        return Partition(leaves)

    def levels(self) -> List[Partition]:
        """Every depth cut of the tree, coarse to fine (deduplicated)."""
        max_depth = 0

        def walk(node: ClusterNode) -> None:
            nonlocal max_depth
            max_depth = max(max_depth, node.depth)
            for child in node.children:
                walk(child)

        for root in self.roots:
            walk(root)

        cuts: List[Partition] = []
        for depth in range(max_depth + 1):
            clusters: List[set] = []

            def cut(node: ClusterNode) -> None:
                if node.depth == depth or node.is_leaf:
                    clusters.append(set(node.members))
                    return
                for child in node.children:
                    cut(child)

            for root in self.roots:
                cut(root)
            partition = Partition(clusters)
            if not cuts or cuts[-1] != partition:
                cuts.append(partition)
        return cuts

    def num_levels(self) -> int:
        return len(self.levels())

    def best_match(self, reference: Partition) -> tuple:
        """``(partition, nmi)`` of the depth cut that best matches ``reference``.

        The reference must cover the same node set as the hierarchy (restrict
        it first if it covers more hosts).
        """
        best_partition = None
        best_score = -1.0
        for level in self.levels():
            score = overlapping_nmi(level, reference.restrict(level.nodes()))
            if score > best_score:
                best_score = score
                best_partition = level
        return best_partition, best_score

    def describe(self) -> str:
        """Human-readable outline of the tree."""
        lines: List[str] = []

        def walk(node: ClusterNode, prefix: str) -> None:
            mod = (
                f" (split modularity {node.split_modularity:.3f})"
                if node.split_modularity is not None
                else ""
            )
            lines.append(f"{prefix}- {len(node.members)} nodes{mod}")
            for child in node.children:
                walk(child, prefix + "  ")

        for root in self.roots:
            walk(root, "")
        return "\n".join(lines)


def recursive_louvain(
    graph: WeightedGraph,
    min_cluster_size: int = 4,
    min_split_modularity: float = 0.1,
    max_depth: int = 4,
    rng: Optional[np.random.Generator] = None,
) -> HierarchicalClustering:
    """Multi-level clustering by recursively applying Louvain inside clusters.

    Parameters
    ----------
    graph:
        Weighted measurement graph.
    min_cluster_size:
        Clusters smaller than this are never split further.
    min_split_modularity:
        A split of a cluster's induced subgraph is kept only if its modularity
        on that subgraph is at least this value; this prevents the recursion
        from shattering homogeneous clusters into noise.
    max_depth:
        Maximum recursion depth (the paper's networks have 2 levels: sites and
        intra-site clusters).
    """
    if min_cluster_size < 2:
        raise ValueError("min_cluster_size must be at least 2")
    if max_depth < 1:
        raise ValueError("max_depth must be at least 1")

    top = louvain(graph, rng=rng).partition

    def build(members: frozenset, depth: int) -> ClusterNode:
        node = ClusterNode(members=members, depth=depth)
        if depth >= max_depth or len(members) < 2 * min_cluster_size:
            return node
        subgraph = graph.subgraph(members)
        if subgraph.total_weight() <= 0:
            return node
        sub_partition = louvain(subgraph, rng=rng).partition
        if sub_partition.num_clusters < 2:
            return node
        if min(sub_partition.sizes()) < min_cluster_size:
            return node
        split_q = modularity(subgraph, sub_partition)
        if split_q < min_split_modularity:
            return node
        node.split_modularity = split_q
        node.children = [
            build(frozenset(cluster), depth + 1) for cluster in sub_partition.clusters
        ]
        return node

    roots = [build(frozenset(cluster), 0) for cluster in top.clusters]
    return HierarchicalClustering(roots=roots)
