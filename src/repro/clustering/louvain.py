"""The Louvain method (Blondel et al. 2008) for weighted modularity maximisation.

The algorithm alternates two phases until modularity stops improving:

1. **local moving** — repeatedly move single nodes to the neighbouring
   community that yields the largest modularity gain;
2. **aggregation** — collapse each community into a super-node (intra-community
   weight becomes a self-loop) and repeat on the smaller graph.

Each aggregation produces one level of the dendrogram.  As in the paper, the
partition returned by :func:`louvain` is the dendrogram cut with the highest
modularity — in practice the final level, since every level is at least as
good as the previous one, but the full dendrogram is exposed for the
hierarchical extension the paper discusses as future work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.clustering.partition import Partition
from repro.graph.wgraph import WeightedGraph
from repro.observability.metrics import METRICS
from repro.observability.tracer import TRACER

Node = Hashable


@dataclass
class LouvainResult:
    """Outcome of a Louvain run.

    Attributes
    ----------
    partition:
        Best partition found (highest-modularity dendrogram cut).
    modularity:
        Its modularity value.
    dendrogram:
        One partition (of the *original* nodes) per aggregation level, coarse
        levels last.
    levels:
        Number of aggregation levels performed.
    """

    partition: Partition
    modularity: float
    dendrogram: List[Partition]
    levels: int


class _LouvainState:
    """Mutable community bookkeeping for one level of local moving.

    The adjacency is flattened once into CSR index arrays (``indptr`` /
    ``indices`` / ``weights``, self-loops excluded — the same layout trick as
    :mod:`repro.network.solver`), and the per-node move loop gathers
    neighbour communities and their total weights with array operations
    instead of per-node Python dict walks.  Decisions are bit-identical to
    the dict implementation it replaces: neighbour (and therefore candidate
    community) order is the adjacency insertion order, per-community weights
    accumulate in that same order (``np.bincount`` adds sequentially over
    its input), and the sequential ``> best + 1e-12`` comparison chain is
    preserved, so tie-breaking — and the NMI of every clustering result —
    is unchanged.
    """

    def __init__(self, graph: WeightedGraph) -> None:
        self.graph = graph
        self.nodes = graph.nodes()
        n = len(self.nodes)
        self.index: Dict[Node, int] = {node: i for i, node in enumerate(self.nodes)}
        self.total_weight = graph.total_weight()
        self.node_degree = np.array(
            [graph.degree_weight(node) for node in self.nodes], dtype=np.float64
        )
        self.self_loops = np.array(
            [graph.edge_weight(node, node) for node in self.nodes], dtype=np.float64
        )
        # CSR adjacency in insertion order, self-loops dropped (the move
        # loop never counts them among neighbour communities).
        indptr = np.zeros(n + 1, dtype=np.int64)
        flat_indices: List[int] = []
        flat_weights: List[float] = []
        for i, node in enumerate(self.nodes):
            for nbr, w in graph.neighbors(node).items():
                if nbr == node:
                    continue
                flat_indices.append(self.index[nbr])
                flat_weights.append(w)
            indptr[i + 1] = len(flat_indices)
        self.indptr = indptr
        self.indices = np.array(flat_indices, dtype=np.int64)
        self.weights = np.array(flat_weights, dtype=np.float64)
        # node -> community id; communities start as singletons, and nodes
        # only ever join a neighbour's community, so ids stay within [0, n).
        self.community = np.arange(n, dtype=np.int64)
        self.community_degree = self.node_degree.copy()

    def one_pass(self, order: Sequence[Node]) -> bool:
        """One sweep of local moving; returns True if any node moved."""
        moved = False
        indptr = self.indptr
        indices = self.indices
        weights = self.weights
        community = self.community
        community_degree = self.community_degree
        node_degree = self.node_degree
        total_weight = self.total_weight
        two_m = 2.0 * total_weight
        norm = two_m * two_m / 2.0
        for node in order:
            i = self.index[node]
            start, end = indptr[i], indptr[i + 1]
            nbr_communities = community[indices[start:end]]
            current = int(community[i])
            # remove(): take the node out of its community.
            degree = float(node_degree[i])
            reduced = float(community_degree[current]) - degree
            community_degree[current] = 0.0 if reduced <= 1e-12 else reduced
            if nbr_communities.size:
                totals = np.bincount(
                    nbr_communities, weights=weights[start:end]
                )
                # First-appearance dedup: dict keys preserve insertion
                # order, matching the dict-walk candidate order exactly.
                candidates = dict.fromkeys(nbr_communities.tolist())
                weight_to_current = (
                    float(totals[current]) if current < totals.size else 0.0
                )
            else:
                candidates = ()
                weight_to_current = 0.0
            best_community = current
            best_gain = (
                weight_to_current / total_weight
                - (float(community_degree[current]) * degree) / norm
            )
            for candidate in candidates:
                candidate_gain = (
                    float(totals[candidate]) / total_weight
                    - (float(community_degree[candidate]) * degree) / norm
                )
                if candidate_gain > best_gain + 1e-12:
                    best_gain = candidate_gain
                    best_community = candidate
            # insert(): join the winning community.
            community[i] = best_community
            community_degree[best_community] = (
                float(community_degree[best_community]) + degree
            )
            if best_community != current:
                moved = True
        return moved

    def partition(self) -> Partition:
        groups: Dict[int, set] = {}
        for node, community in zip(self.nodes, self.community):
            groups.setdefault(int(community), set()).add(node)
        return Partition(groups.values())


class _ModularityArrays:
    """Original-graph edge arrays for the per-level modularity evaluations.

    :func:`louvain` scores every dendrogram level against the *original*
    graph.  The dict implementation (:func:`repro.clustering.modularity
    .modularity`) walks every edge and node per level; this helper flattens
    the graph once and evaluates each level with two ``np.bincount`` calls.
    The result is bit-identical to the dict walk: per-cluster intra-weight
    and degree accumulate in the same left-fold order (``bincount`` adds
    sequentially over its input, which is ``edges()``/``nodes()`` order),
    and the final per-cluster sum runs over the same ``set`` of python-int
    cluster ids with the same scalar arithmetic.
    """

    def __init__(self, graph: WeightedGraph) -> None:
        self.nodes = graph.nodes()
        self.edge_u, self.edge_v, self.edge_w = graph.edge_arrays()
        self.node_degree = np.array(
            [graph.degree_weight(node) for node in self.nodes], dtype=np.float64
        )
        self.total = graph.total_weight()
        self.two_m = 2.0 * self.total

    def value(self, partition: Partition) -> float:
        memb_list = [partition.cluster_index(node) for node in self.nodes]
        memb = np.array(memb_list, dtype=np.int64)
        size = int(memb.max()) + 1
        cluster_u = memb[self.edge_u]
        cluster_v = memb[self.edge_v]
        intra_mask = cluster_u == cluster_v
        intra = np.bincount(
            cluster_u[intra_mask], weights=self.edge_w[intra_mask], minlength=size
        ).tolist()
        degree = np.bincount(
            memb, weights=self.node_degree, minlength=size
        ).tolist()
        q = 0.0
        for c in set(memb_list):
            q += intra[c] / self.total - (degree[c] / self.two_m) ** 2
        return q


def _aggregate(graph: WeightedGraph, partition: Partition) -> WeightedGraph:
    """Collapse each cluster to a super-node; intra-cluster weight becomes a self-loop.

    Vectorized over the flat edge arrays, replacing the per-edge
    ``add_edge(..., accumulate=True)`` walk, but constructing a graph
    bit-identical to it — and therefore preserving every downstream move
    decision, because the dict-era graph's observable state is reproduced
    exactly: per-pair weights are the same left-fold of the original edge
    stream (``bincount`` over the pair's occurrences in order), super-edges
    are inserted in first-occurrence order (which fixes the adjacency
    iteration order the move loop depends on), and the cached total weight
    is re-folded in the original stream order below.
    """
    aggregated = WeightedGraph()
    for idx in range(partition.num_clusters):
        aggregated.add_node(idx)
    edge_u, edge_v, edge_w = graph.edge_arrays()
    if not edge_u.size:
        return aggregated
    memb = np.array(
        [partition.cluster_index(node) for node in graph.nodes()], dtype=np.int64
    )
    cluster_u = memb[edge_u]
    cluster_v = memb[edge_v]
    lo = np.minimum(cluster_u, cluster_v)
    hi = np.maximum(cluster_u, cluster_v)
    num = partition.num_clusters
    keys = lo * num + hi
    unique, first_index, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )
    sums = np.bincount(inverse, weights=edge_w).tolist()
    unique = unique.tolist()
    for k in np.argsort(first_index).tolist():
        key = unique[k]
        aggregated.add_edge(key // num, key % num, sums[k])
    # The dict-era cached total weight is a left-fold of every original edge
    # in stream order; the add_edge calls above folded the per-pair sums
    # instead, which can differ by ulps.  Re-fold it exactly so the
    # ``> best + 1e-12`` move comparisons on deeper levels see identical
    # normalisation.
    total = 0.0
    for w in edge_w.tolist():
        total += w
    aggregated._total_weight = total
    return aggregated


def louvain(
    graph: WeightedGraph,
    rng: Optional[np.random.Generator] = None,
    max_levels: int = 32,
    min_gain: float = 1e-9,
) -> LouvainResult:
    """Run the Louvain method on a weighted graph.

    Parameters
    ----------
    graph:
        Weighted undirected graph (the aggregated tomography measurement).
    rng:
        Generator used to randomise the node visiting order; ``None`` uses a
        deterministic (sorted) order, which is what the pipeline defaults to
        so that experiment results are reproducible.
    max_levels:
        Safety bound on aggregation levels.
    min_gain:
        Stop when a full level improves modularity by less than this.

    Raises
    ------
    ValueError
        If the graph has no edges with positive weight (modularity undefined).
    """
    if graph.total_weight() <= 0:
        raise ValueError("Louvain requires a graph with positive total edge weight")

    original_nodes = graph.nodes()
    # Maps every original node to its current super-node in the working graph.
    node_to_super: Dict[Node, Node] = {node: node for node in original_nodes}

    working = graph.copy()
    dendrogram: List[Partition] = []
    best_partition = Partition.singletons(original_nodes)
    # Per-level scoring against the original graph, flattened once
    # (bit-identical to repro.clustering.modularity.modularity).
    scorer = _ModularityArrays(graph)
    best_q = scorer.value(best_partition)

    run_started = TRACER.now() if TRACER.enabled else 0.0
    levels_run = 0
    passes_run = 0
    for _level in range(max_levels):
        state = _LouvainState(working)
        if rng is None:
            order = sorted(working.nodes(), key=repr)
        else:
            order = list(working.nodes())
            rng.shuffle(order)
        improved_any = False
        sweeps = 0
        for _sweep in range(1000):
            if not state.one_pass(order):
                break
            improved_any = True
            sweeps += 1
        levels_run += 1
        passes_run += sweeps
        local_partition = state.partition()

        # Express the level's partition in terms of the original nodes.
        super_cluster = {
            super_node: local_partition.cluster_index(super_node)
            for super_node in working.nodes()
        }
        membership = {
            node: super_cluster[node_to_super[node]] for node in original_nodes
        }
        level_partition = Partition.from_membership(membership)
        level_q = scorer.value(level_partition)
        dendrogram.append(level_partition)
        if TRACER.full:
            TRACER.event(
                "louvain.level",
                level=levels_run,
                nodes=len(order),
                sweeps=sweeps,
                modularity=level_q,
            )

        if level_q > best_q + min_gain:
            best_q = level_q
            best_partition = level_partition
        elif not improved_any or level_q <= best_q + min_gain:
            break

        # Aggregate and continue on the coarser graph.
        working_new = _aggregate(working, local_partition)
        node_to_super = {
            node: local_partition.cluster_index(node_to_super[node])
            for node in original_nodes
        }
        working = working_new
        if len(working) <= 1:
            break

    METRICS.count("louvain.runs")
    METRICS.count("louvain.levels", levels_run)
    METRICS.count("louvain.passes", passes_run)
    if TRACER.enabled:
        TRACER.span_record(
            "louvain.run",
            run_started,
            levels=levels_run,
            passes=passes_run,
            modularity=best_q,
        )
    if not dendrogram:
        dendrogram.append(best_partition)
    return LouvainResult(
        partition=best_partition,
        modularity=best_q,
        dendrogram=dendrogram,
        levels=len(dendrogram),
    )
