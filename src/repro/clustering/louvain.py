"""The Louvain method (Blondel et al. 2008) for weighted modularity maximisation.

The algorithm alternates two phases until modularity stops improving:

1. **local moving** — repeatedly move single nodes to the neighbouring
   community that yields the largest modularity gain;
2. **aggregation** — collapse each community into a super-node (intra-community
   weight becomes a self-loop) and repeat on the smaller graph.

Each aggregation produces one level of the dendrogram.  As in the paper, the
partition returned by :func:`louvain` is the dendrogram cut with the highest
modularity — in practice the final level, since every level is at least as
good as the previous one, but the full dendrogram is exposed for the
hierarchical extension the paper discusses as future work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.clustering.modularity import modularity
from repro.clustering.partition import Partition
from repro.graph.wgraph import WeightedGraph

Node = Hashable


@dataclass
class LouvainResult:
    """Outcome of a Louvain run.

    Attributes
    ----------
    partition:
        Best partition found (highest-modularity dendrogram cut).
    modularity:
        Its modularity value.
    dendrogram:
        One partition (of the *original* nodes) per aggregation level, coarse
        levels last.
    levels:
        Number of aggregation levels performed.
    """

    partition: Partition
    modularity: float
    dendrogram: List[Partition]
    levels: int


class _LouvainState:
    """Mutable community bookkeeping for one level of local moving."""

    def __init__(self, graph: WeightedGraph) -> None:
        self.graph = graph
        self.nodes = graph.nodes()
        self.total_weight = graph.total_weight()
        self.node_degree: Dict[Node, float] = {
            node: graph.degree_weight(node) for node in self.nodes
        }
        self.self_loops: Dict[Node, float] = {
            node: graph.edge_weight(node, node) for node in self.nodes
        }
        # community id -> sum of member degrees; start with singletons.
        self.community: Dict[Node, int] = {node: i for i, node in enumerate(self.nodes)}
        self.community_degree: Dict[int, float] = {
            self.community[node]: self.node_degree[node] for node in self.nodes
        }

    def neighbour_community_weights(self, node: Node) -> Dict[int, float]:
        """Total edge weight from ``node`` to each neighbouring community."""
        weights: Dict[int, float] = {}
        for nbr, w in self.graph.neighbors(node).items():
            if nbr == node:
                continue
            community = self.community[nbr]
            weights[community] = weights.get(community, 0.0) + w
        return weights

    def remove(self, node: Node) -> None:
        community = self.community[node]
        self.community_degree[community] -= self.node_degree[node]
        if self.community_degree[community] <= 1e-12:
            self.community_degree[community] = 0.0
        self.community[node] = -1

    def insert(self, node: Node, community: int) -> None:
        self.community[node] = community
        self.community_degree[community] = (
            self.community_degree.get(community, 0.0) + self.node_degree[node]
        )

    def gain(self, node: Node, community: int, weight_to_community: float) -> float:
        """Modularity gain of inserting ``node`` (currently removed) into ``community``."""
        two_m = 2.0 * self.total_weight
        sigma_tot = self.community_degree.get(community, 0.0)
        k_i = self.node_degree[node]
        return weight_to_community / self.total_weight - (sigma_tot * k_i) / (two_m * two_m / 2.0)

    def one_pass(self, order: Sequence[Node]) -> bool:
        """One sweep of local moving; returns True if any node moved."""
        moved = False
        for node in order:
            current = self.community[node]
            weights = self.neighbour_community_weights(node)
            self.remove(node)
            best_community = current
            best_gain = self.gain(node, current, weights.get(current, 0.0))
            for community, weight in weights.items():
                candidate_gain = self.gain(node, community, weight)
                if candidate_gain > best_gain + 1e-12:
                    best_gain = candidate_gain
                    best_community = community
            self.insert(node, best_community)
            if best_community != current:
                moved = True
        return moved

    def partition(self) -> Partition:
        groups: Dict[int, set] = {}
        for node, community in self.community.items():
            groups.setdefault(community, set()).add(node)
        return Partition(groups.values())


def _aggregate(graph: WeightedGraph, partition: Partition) -> WeightedGraph:
    """Collapse each cluster to a super-node; intra-cluster weight becomes a self-loop."""
    aggregated = WeightedGraph()
    for idx in range(partition.num_clusters):
        aggregated.add_node(idx)
    for u, v, w in graph.edges():
        cu = partition.cluster_index(u)
        cv = partition.cluster_index(v)
        aggregated.add_edge(cu, cv, w, accumulate=True)
    return aggregated


def louvain(
    graph: WeightedGraph,
    rng: Optional[np.random.Generator] = None,
    max_levels: int = 32,
    min_gain: float = 1e-9,
) -> LouvainResult:
    """Run the Louvain method on a weighted graph.

    Parameters
    ----------
    graph:
        Weighted undirected graph (the aggregated tomography measurement).
    rng:
        Generator used to randomise the node visiting order; ``None`` uses a
        deterministic (sorted) order, which is what the pipeline defaults to
        so that experiment results are reproducible.
    max_levels:
        Safety bound on aggregation levels.
    min_gain:
        Stop when a full level improves modularity by less than this.

    Raises
    ------
    ValueError
        If the graph has no edges with positive weight (modularity undefined).
    """
    if graph.total_weight() <= 0:
        raise ValueError("Louvain requires a graph with positive total edge weight")

    original_nodes = graph.nodes()
    # Maps every original node to its current super-node in the working graph.
    node_to_super: Dict[Node, Node] = {node: node for node in original_nodes}

    working = graph.copy()
    dendrogram: List[Partition] = []
    best_partition = Partition.singletons(original_nodes)
    best_q = modularity(graph, best_partition)

    for _level in range(max_levels):
        state = _LouvainState(working)
        if rng is None:
            order = sorted(working.nodes(), key=repr)
        else:
            order = list(working.nodes())
            rng.shuffle(order)
        improved_any = False
        for _sweep in range(1000):
            if not state.one_pass(order):
                break
            improved_any = True
        local_partition = state.partition()

        # Express the level's partition in terms of the original nodes.
        super_cluster = {
            super_node: local_partition.cluster_index(super_node)
            for super_node in working.nodes()
        }
        membership = {
            node: super_cluster[node_to_super[node]] for node in original_nodes
        }
        level_partition = Partition.from_membership(membership)
        level_q = modularity(graph, level_partition)
        dendrogram.append(level_partition)

        if level_q > best_q + min_gain:
            best_q = level_q
            best_partition = level_partition
        elif not improved_any or level_q <= best_q + min_gain:
            break

        # Aggregate and continue on the coarser graph.
        working_new = _aggregate(working, local_partition)
        node_to_super = {
            node: local_partition.cluster_index(node_to_super[node])
            for node in original_nodes
        }
        working = working_new
        if len(working) <= 1:
            break

    if not dendrogram:
        dendrogram.append(best_partition)
    return LouvainResult(
        partition=best_partition,
        modularity=best_q,
        dendrogram=dendrogram,
        levels=len(dendrogram),
    )
