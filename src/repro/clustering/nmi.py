"""Normalized Mutual Information between clusterings.

Two variants are provided:

* :func:`normalized_mutual_information` — the classical partition NMI based on
  the confusion matrix, normalised by the arithmetic mean of the entropies;
* :func:`overlapping_nmi` — the normalised-variation-of-information measure of
  Lancichinetti, Fortunato & Kertész (2009), which the paper uses for its
  Fig. 13 scores because it also extends to overlapping covers.

Both return values in ``[0, 1]`` with 1 meaning identical clusterings; for
partitions of the same node set they agree on the extremes, and the
test-suite checks their mutual consistency.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Sequence, Set

import numpy as np

from repro.clustering.partition import Partition

Node = Hashable


def _check_same_nodes(found: Partition, truth: Partition) -> List[Node]:
    nodes_a = found.nodes()
    nodes_b = truth.nodes()
    if nodes_a != nodes_b:
        only_a = sorted(map(repr, nodes_a - nodes_b))[:3]
        only_b = sorted(map(repr, nodes_b - nodes_a))[:3]
        raise ValueError(
            "partitions cover different node sets "
            f"(only in first: {only_a}, only in second: {only_b})"
        )
    return sorted(nodes_a, key=repr)


# ---------------------------------------------------------------------- #
# classical partition NMI
# ---------------------------------------------------------------------- #
def normalized_mutual_information(found: Partition, truth: Partition) -> float:
    """Classical NMI between two partitions of the same node set.

    Normalisation is by the arithmetic mean of the two entropies.  When both
    partitions are the trivial single cluster (zero entropy), they are
    identical and the NMI is defined as 1; if exactly one has zero entropy the
    NMI is 0.
    """
    nodes = _check_same_nodes(found, truth)
    n = len(nodes)
    labels_a = np.array([found.cluster_index(node) for node in nodes])
    labels_b = np.array([truth.cluster_index(node) for node in nodes])

    contingency = np.zeros((found.num_clusters, truth.num_clusters), dtype=float)
    for a, b in zip(labels_a, labels_b):
        contingency[a, b] += 1.0
    joint = contingency / n
    pa = joint.sum(axis=1)
    pb = joint.sum(axis=0)

    h_a = -sum(_plogp(p) for p in pa)
    h_b = -sum(_plogp(p) for p in pb)

    if h_a == 0.0 and h_b == 0.0:
        return 1.0
    if h_a == 0.0 or h_b == 0.0:
        return 0.0

    mutual = 0.0
    for i in range(joint.shape[0]):
        for j in range(joint.shape[1]):
            if joint[i, j] > 0:
                mutual += joint[i, j] * math.log2(joint[i, j] / (pa[i] * pb[j]))
    value = 2.0 * mutual / (h_a + h_b)
    return float(min(max(value, 0.0), 1.0))


def _plogp(p: float) -> float:
    if p <= 0.0:
        return 0.0
    return p * math.log2(p)


# ---------------------------------------------------------------------- #
# overlapping NMI (Lancichinetti / Fortunato / Kertész 2009)
# ---------------------------------------------------------------------- #
def _h(p: float) -> float:
    """Entropy contribution ``-p log2 p`` (0 when ``p`` is 0)."""
    if p <= 0.0:
        return 0.0
    return -p * math.log2(p)


def _cluster_entropy(size: int, n: int) -> float:
    p1 = size / n
    return _h(p1) + _h(1.0 - p1)


def _conditional_entropy(x: Set[Node], y: Set[Node], universe_size: int) -> float:
    """H(X_k | Y_l) for two binary membership indicators, or ``inf`` if inadmissible."""
    n = universe_size
    a = len(x & y)
    b = len(x - y)
    c = len(y - x)
    d = n - a - b - c
    p11, p10, p01, p00 = a / n, b / n, c / n, d / n
    # Admissibility condition of Lancichinetti et al. (appendix B): the joint
    # distribution must look more like "equal" than "complementary" clusters.
    if _h(p11) + _h(p00) < _h(p10) + _h(p01):
        return float("inf")
    joint = _h(p11) + _h(p10) + _h(p01) + _h(p00)
    h_y = _h((a + c) / n) + _h((b + d) / n)
    return joint - h_y


def _normalized_conditional(xs: Sequence[Set[Node]], ys: Sequence[Set[Node]], n: int) -> float:
    """Average over clusters of X of ``H(X_k | Y) / H(X_k)``."""
    terms: List[float] = []
    for x in xs:
        h_x = _cluster_entropy(len(x), n)
        best = min(
            (_conditional_entropy(x, y, n) for y in ys),
            default=float("inf"),
        )
        if not math.isfinite(best):
            best = h_x
        if h_x <= 0.0:
            # A cluster covering every node (or none) carries no information.
            terms.append(0.0)
        else:
            terms.append(min(max(best / h_x, 0.0), 1.0))
    if not terms:
        return 0.0
    return sum(terms) / len(terms)


def overlapping_nmi(found: Partition, truth: Partition) -> float:
    """Overlapping NMI of Lancichinetti et al. between two clusterings.

    Implemented for :class:`Partition` inputs (the paper restricts itself to
    non-overlapping ground truths) but the formulation itself is the cover
    version, so extending to overlapping covers only requires accepting raw
    cluster lists.
    """
    nodes = _check_same_nodes(found, truth)
    n = len(nodes)
    xs = [set(c) for c in found.clusters]
    ys = [set(c) for c in truth.clusters]
    h_x_given_y = _normalized_conditional(xs, ys, n)
    h_y_given_x = _normalized_conditional(ys, xs, n)
    value = 1.0 - 0.5 * (h_x_given_y + h_y_given_x)
    return float(min(max(value, 0.0), 1.0))
