"""Clustering phase of the tomography method.

The paper's analysis phase optimizes weighted Newman–Girvan modularity with
the Louvain method and evaluates the recovered clustering against a
ground-truth partition using (overlapping) Normalized Mutual Information.
An Infomap-style map-equation clusterer is included because the paper reports
trying it and finding it inferior for this problem.
"""

from repro.clustering.partition import Partition
from repro.clustering.modularity import modularity, modularity_matrix_form
from repro.clustering.louvain import LouvainResult, louvain
from repro.clustering.infomap import infomap
from repro.clustering.hierarchical import HierarchicalClustering, recursive_louvain
from repro.clustering.nmi import normalized_mutual_information, overlapping_nmi

__all__ = [
    "Partition",
    "modularity",
    "modularity_matrix_form",
    "LouvainResult",
    "louvain",
    "infomap",
    "HierarchicalClustering",
    "recursive_louvain",
    "normalized_mutual_information",
    "overlapping_nmi",
]
