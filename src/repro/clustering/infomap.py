"""A two-level map-equation ("Infomap") clusterer.

The paper mentions trying Infomap (Rosvall & Bergström 2008) as an
alternative to modularity clustering and finding it less effective on the
tomography graphs; this module provides a self-contained two-level map
equation optimiser so that comparison can be reproduced
(``benchmarks/test_bench_ablation_clustering.py``).

For an undirected weighted graph the stationary visit frequency of node α is
``p_α = k_α / 2m``; the per-module exit probability is the weight of edges
leaving the module divided by ``2m``.  The description length

    L(M) = q H(Q) + Σ_i (q_i + p_i) H(P_i)

is minimised by Louvain-style local moving of nodes between modules,
recomputing the affected terms exactly (the graphs in this application have
at most a few hundred nodes, so exact recomputation is cheap and keeps the
implementation easy to verify).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.clustering.partition import Partition
from repro.graph.wgraph import WeightedGraph

Node = Hashable


def _plogp(x: float) -> float:
    """``x log2 x`` with the convention ``0 log 0 = 0``."""
    if x <= 0.0:
        return 0.0
    return x * math.log2(x)


def map_equation(graph: WeightedGraph, partition: Partition) -> float:
    """Description length (bits) of a random walk under a two-level partition."""
    total = graph.total_weight()
    if total <= 0:
        raise ValueError("map equation is undefined for graphs with zero total weight")
    two_m = 2.0 * total

    node_p = {node: graph.degree_weight(node) / two_m for node in graph.nodes()}

    num_modules = partition.num_clusters
    module_p = [0.0] * num_modules
    module_exit = [0.0] * num_modules
    for node, p in node_p.items():
        module_p[partition.cluster_index(node)] += p
    for u, v, w in graph.edges():
        cu = partition.cluster_index(u)
        cv = partition.cluster_index(v)
        if cu != cv:
            module_exit[cu] += w / two_m
            module_exit[cv] += w / two_m

    q_total = sum(module_exit)

    # Index codebook: H(Q) weighted by q_total.
    index_term = _plogp(q_total) - sum(_plogp(q) for q in module_exit)

    # Module codebooks.
    module_term = 0.0
    for i in range(num_modules):
        inside = module_exit[i] + module_p[i]
        module_term += _plogp(inside)
    module_term -= sum(_plogp(q) for q in module_exit)
    module_term -= sum(_plogp(p) for p in node_p.values())

    # Note the node-visit entropy term is partition independent but kept so the
    # value matches the textbook definition of L(M).
    return index_term + module_term


def infomap(
    graph: WeightedGraph,
    rng: Optional[np.random.Generator] = None,
    max_sweeps: int = 50,
) -> Partition:
    """Greedy two-level map-equation clustering.

    Starts from singleton modules and performs local-moving sweeps (each node
    tries every neighbouring module and the move that most decreases the map
    equation is applied) until a full sweep makes no move.
    """
    if graph.total_weight() <= 0:
        raise ValueError("Infomap requires a graph with positive total edge weight")

    nodes = graph.nodes()
    membership: Dict[Node, int] = {node: i for i, node in enumerate(nodes)}

    def as_partition() -> Partition:
        return Partition.from_membership(membership)

    current_length = map_equation(graph, as_partition())

    for _sweep in range(max_sweeps):
        if rng is None:
            order = sorted(nodes, key=repr)
        else:
            order = list(nodes)
            rng.shuffle(order)
        moved = False
        for node in order:
            original = membership[node]
            candidate_modules = {
                membership[nbr] for nbr in graph.neighbors(node) if nbr != node
            }
            candidate_modules.discard(original)
            best_module = original
            best_length = current_length
            for module in candidate_modules:
                membership[node] = module
                trial_length = map_equation(graph, as_partition())
                if trial_length < best_length - 1e-12:
                    best_length = trial_length
                    best_module = module
            membership[node] = best_module
            if best_module != original:
                current_length = best_length
                moved = True
        if not moved:
            break

    return as_partition()
