"""Declarative fault plans and the preset registry.

A :class:`FaultPlan` mirrors :class:`~repro.workloads.spec.WorkloadSpec`:
a frozen, picklable composition of fault injectors whose parameters are
expressed *relative* to the measured campaign's scale (fractions of the
expected broadcast duration), so one plan applies unchanged to any
topology and fragment count.  Absolute values are resolved at build time
by :func:`build_fault_actors`, and every injector's RNG stream is derived
statelessly from the campaign seed and the fault label —
``(seed, "fault", iteration, label)`` — the same discipline workload
actors (``"workload"``) and measured broadcasts (``"broadcast"``) use.
The empty plan (:data:`NO_FAULTS`) therefore adds no actor, draws no
random number and perturbs no existing stream: campaigns replay their
pinned sha256 goldens bit for bit (``tests/test_seed_replay.py``).

A fault may be scoped to part of a campaign with the ``from_iteration`` /
``until_iteration`` params — the substrate of the detection scenarios,
where a bottleneck link fails halfway through a campaign and the question
is how many iterations the tomography needs to notice.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bittorrent.swarm import SwarmConfig
from repro.faults.actors import (
    FAILURE_RESIDUAL,
    LinkFailureActor,
    RouteFlapActor,
    TenantCycleActor,
    TrackerOutageActor,
)
from repro.simulation.rng import derive_seed
from repro.workloads.spec import expected_broadcast_duration

#: Fault kinds a plan may declare.
FAULT_KINDS = ("link-failure", "route-flap", "tracker-outage", "tenant-cycle")

#: Sub-tenant kinds :class:`TenantCycleActor` can cycle in and out.
TENANT_KINDS = ("poisson", "bulk", "rival")


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One declared fault injector.

    ``params`` is a frozen ``(key, value)`` mapping of *relative* knobs;
    the accepted keys depend on ``kind`` (see :func:`_build_fault_actor`).
    Every kind accepts ``from_iteration`` / ``until_iteration`` to scope
    the fault to a slice of the campaign.
    """

    kind: str
    label: str
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not self.label:
            raise ValueError("fault label must be non-empty")

    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def applies_to(self, iteration: int) -> bool:
        """Whether this fault is active in campaign iteration ``iteration``."""
        p = self.param_dict()
        if iteration < int(p.get("from_iteration", 0)):
            return False
        until = p.get("until_iteration")
        return until is None or iteration < int(until)


def fault(kind: str, label: str, **params) -> FaultSpec:
    """Convenience constructor: ``fault("link-failure", "lf", mtbf_frac=0.4)``."""
    return FaultSpec(kind=kind, label=label, params=tuple(sorted(params.items())))


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A named composition of fault injectors.

    ``intensity`` is the plan's headline failure-intensity knob (recorded
    in summaries and BENCH rows); its meaning is per-family — failure
    frequency relative to the broadcast timescale, outage pressure,
    cycled-tenant load.
    """

    name: str
    description: str = ""
    faults: Tuple[FaultSpec, ...] = ()
    intensity: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("fault plan name must be non-empty")
        labels = [spec.label for spec in self.faults]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate fault labels in plan {self.name!r}")

    def __bool__(self) -> bool:
        return bool(self.faults)

    @property
    def fault_count(self) -> int:
        return len(self.faults)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for spec in self.faults:
            counts[spec.kind] = counts.get(spec.kind, 0) + 1
        return counts

    def active_in(self, iteration: int) -> Tuple[FaultSpec, ...]:
        """The plan's faults that apply to campaign iteration ``iteration``."""
        return tuple(s for s in self.faults if s.applies_to(iteration))

    def metadata(self) -> Dict[str, object]:
        """Fault descriptors recorded in summaries and BENCH rows."""
        return {
            "faults": self.name,
            "fault_injectors": self.fault_count,
            "fault_kinds": self.counts_by_kind(),
            "fault_intensity": self.intensity,
        }


# ---------------------------------------------------------------------- #
# fault builders (relative spec -> absolute actor)
# ---------------------------------------------------------------------- #
def _build_fault_actor(
    spec: FaultSpec,
    config: SwarmConfig,
    hosts: Sequence[str],
    primary,
    rng: np.random.Generator,
):
    p = spec.param_dict()
    duration = expected_broadcast_duration(config)
    hosts = list(hosts)

    if spec.kind == "link-failure":
        return LinkFailureActor(
            spec.label,
            rng,
            mtbf=float(p.get("mtbf_frac", 0.35)) * duration,
            repair_mean=float(p.get("repair_frac", 0.1)) * duration,
            links=p.get("links"),
            residual=float(p.get("residual", FAILURE_RESIDUAL)),
            persistent=bool(p.get("persistent", False)),
            limit=p.get("limit"),
            start_time=float(p.get("start_frac", 0.0)) * duration,
            reroute=bool(p.get("reroute", False)),
        )
    if spec.kind == "route-flap":
        return RouteFlapActor(
            spec.label,
            rng,
            interval_mean=float(p.get("interval_frac", 0.35)) * duration,
            duration_mean=float(p.get("duration_frac", 0.08)) * duration,
            links=p.get("links"),
            severity=float(p.get("severity", 0.25)),
            start_time=float(p.get("start_frac", 0.0)) * duration,
            repin=bool(p.get("repin", False)),
        )
    if spec.kind == "tracker-outage":
        return TrackerOutageActor(
            spec.label,
            rng,
            interval_mean=float(p.get("interval_frac", 0.3)) * duration,
            outage_mean=float(p.get("outage_frac", 0.15)) * duration,
            start_time=float(p.get("start_frac", 0.0)) * duration,
        )
    if spec.kind == "tenant-cycle":
        return _build_tenant_cycle(spec, p, config, hosts, rng, duration)
    raise ValueError(f"unknown fault kind {spec.kind!r}")  # pragma: no cover


def _build_tenant_cycle(
    spec: FaultSpec,
    p: Dict[str, object],
    config: SwarmConfig,
    hosts: List[str],
    rng: np.random.Generator,
    duration: float,
):
    from repro.network.grid5000 import NODE_ACCESS_CAPACITY
    from repro.workloads.actors import (
        BroadcastActor,
        BulkTransferActor,
        PoissonTrafficActor,
    )

    tenant_kind = str(p.get("tenant", "poisson"))
    if tenant_kind not in TENANT_KINDS:
        raise ValueError(
            f"unknown cycled tenant {tenant_kind!r}; expected one of {TENANT_KINDS}"
        )
    size = float(config.torrent.size)
    intensity = float(p.get("intensity", 0.5))
    sub_label = f"{spec.label}.tenant"

    if tenant_kind == "poisson":
        def factory(start_time: float):
            return PoissonTrafficActor(
                sub_label,
                rng,
                offered_load=intensity * NODE_ACCESS_CAPACITY,
                mean_size=0.25 * size,
                hosts=hosts,
                start_time=start_time,
            )
    elif tenant_kind == "bulk":
        def factory(start_time: float):
            return BulkTransferActor(
                sub_label,
                rng,
                src=hosts[int(p.get("src_index", 0)) % len(hosts)],
                dst=hosts[int(p.get("dst_index", -1)) % len(hosts)],
                size=float(p.get("size_frac", 2.0)) * size,
                start_time=start_time,
            )
    else:  # rival broadcast: runs to completion, never "departs"
        def factory(start_time: float):
            return BroadcastActor(
                sub_label,
                config,
                hosts=hosts,
                root=hosts[int(p.get("root_index", -1)) % len(hosts)],
                rng=rng,
                start_time=start_time,
                blocking=False,
            )

    departure_frac = p.get("departure_frac", 0.7)
    if tenant_kind == "rival":
        departure_frac = None
    return TenantCycleActor(
        spec.label,
        rng,
        factory=factory,
        arrival=float(p.get("arrival_frac", 0.2)) * duration,
        departure=(
            None if departure_frac is None else float(departure_frac) * duration
        ),
        needs_tracker=(tenant_kind == "rival"),
        retry_base=float(p.get("retry_frac", 0.02)) * duration,
    )


def build_fault_actors(
    plan: "FaultPlan",
    config: SwarmConfig,
    hosts: Sequence[str],
    primary,
    base_seed: int,
    iteration: int,
) -> List[object]:
    """Instantiate the plan's injectors active in ``iteration``.

    Each actor draws from ``(seed, "fault", iteration, label)`` — derived
    statelessly, never shared — so fault campaigns replay bit-for-bit and
    the measured broadcast / workload streams are never perturbed.
    """
    actors = []
    for spec in plan.active_in(iteration):
        rng = np.random.default_rng(
            derive_seed(base_seed, "fault", iteration, spec.label)
        )
        actors.append(_build_fault_actor(spec, config, hosts, primary, rng))
    return actors


# ---------------------------------------------------------------------- #
# preset plans
# ---------------------------------------------------------------------- #
def link_failure_plan(
    intensity: float = 1.0,
    residual: float = FAILURE_RESIDUAL,
    from_iteration: int = 0,
) -> FaultPlan:
    """Transient fail-and-repair cycles on the shared links; ``intensity``
    scales the failure frequency (mean time between failures is
    ``0.35 / intensity`` of the expected broadcast duration)."""
    if intensity <= 0:
        raise ValueError("intensity must be positive")
    return FaultPlan(
        name=f"link-failure-{intensity:g}",
        description=f"transient link failures at intensity {intensity:g}",
        faults=(
            fault(
                "link-failure",
                "linkfail",
                mtbf_frac=0.35 / intensity,
                repair_frac=0.1,
                residual=residual,
                from_iteration=from_iteration,
            ),
        ),
        intensity=float(intensity),
    )


def blackout_plan(
    from_iteration: int = 2,
    residual: float = 0.02,
    start_frac: float = 0.1,
    link: Optional[str] = None,
) -> FaultPlan:
    """A persistent bottleneck failure landing mid-campaign.

    From iteration ``from_iteration`` on, one shared link collapses to
    ``residual`` of its nominal capacity early in the broadcast and is
    never repaired — the substrate of the time-to-detect scenarios.  The
    residual is large enough that broadcasts still complete (slowly), so
    the failure shows up as a duration spike and a shifted matrix rather
    than an aborted iteration; combine with ``quorum=`` for aborts.
    """
    params = dict(
        mtbf_frac=start_frac,
        repair_frac=1.0,
        residual=residual,
        persistent=True,
        limit=1,
        from_iteration=from_iteration,
    )
    if link is not None:
        params["links"] = (link,)
    return FaultPlan(
        name="blackout",
        description=(
            f"persistent bottleneck failure from iteration {from_iteration}"
        ),
        faults=(fault("link-failure", "blackout", **params),),
        intensity=1.0 - float(residual),
    )


def migrating_plan(
    links: Sequence[str],
    onsets: Sequence[int],
    residual: float = 0.02,
    start_frac: float = 0.1,
    reroute: bool = True,
) -> FaultPlan:
    """A persistent failure that *relocates* between campaign epochs.

    ``links[k]`` fails persistently for the epoch spanning iterations
    ``[onsets[k], onsets[k+1])`` (the last epoch runs to the end of the
    campaign); with ``reroute=True`` the control plane recomputes routes
    around each epoch's victim, so the study exercises detection *and*
    self-healing, then must re-detect and re-localize when the failure
    moves.  Onsets must be strictly increasing and align one-to-one with
    the victim links.
    """
    links = tuple(links)
    onsets = tuple(int(o) for o in onsets)
    if not links:
        raise ValueError("migrating plan needs at least one victim link")
    if len(links) != len(onsets):
        raise ValueError("migrating plan needs one onset per victim link")
    if any(b <= a for a, b in zip(onsets, onsets[1:])):
        raise ValueError("migrating plan onsets must be strictly increasing")
    specs = []
    for k, (link, onset) in enumerate(zip(links, onsets)):
        until = onsets[k + 1] if k + 1 < len(onsets) else None
        specs.append(
            fault(
                "link-failure",
                f"migrate-{k}",
                mtbf_frac=start_frac,
                repair_frac=1.0,
                residual=residual,
                persistent=True,
                limit=1,
                links=(link,),
                from_iteration=onset,
                until_iteration=until,
                reroute=reroute,
            )
        )
    return FaultPlan(
        name="migrating",
        description=(
            f"persistent failure relocating across {len(links)} epochs "
            f"(onsets {', '.join(str(o) for o in onsets)})"
        ),
        faults=tuple(specs),
        intensity=1.0 - float(residual),
    )


def route_flap_plan(intensity: float = 1.0, severity: float = 0.25) -> FaultPlan:
    """Route flaps on the shared links: new flows are steered around the
    flapping link and its capacity is degraded for the flap window."""
    if intensity <= 0:
        raise ValueError("intensity must be positive")
    return FaultPlan(
        name=f"route-flap-{intensity:g}",
        description=f"route flaps at intensity {intensity:g}",
        faults=(
            fault(
                "route-flap",
                "flap",
                interval_frac=0.35 / intensity,
                duration_frac=0.08,
                severity=severity,
            ),
        ),
        intensity=float(intensity),
    )


def tracker_outage_plan(intensity: float = 1.0) -> FaultPlan:
    """Tracker outages plus a late-arriving rival tenant whose announce
    exercises the peer-side retry/backoff path."""
    if intensity <= 0:
        raise ValueError("intensity must be positive")
    return FaultPlan(
        name=f"tracker-outage-{intensity:g}",
        description=f"tracker outages at intensity {intensity:g} + rival arrival",
        faults=(
            fault(
                "tracker-outage",
                "outage",
                interval_frac=0.3 / intensity,
                outage_frac=0.15 * intensity,
            ),
            fault("tenant-cycle", "latecomer", tenant="rival", arrival_frac=0.3),
        ),
        intensity=float(intensity),
    )


def tenant_cycle_plan(intensity: float = 0.5) -> FaultPlan:
    """Whole-tenant arrival and departure mid-iteration: a Poisson tenant
    and a staggered bulk tenant cycle in and out of the live engine."""
    if intensity <= 0:
        raise ValueError("intensity must be positive")
    return FaultPlan(
        name=f"tenant-cycle-{intensity:g}",
        description="background tenants arriving and departing mid-iteration",
        faults=(
            fault(
                "tenant-cycle",
                "cycle-poisson",
                tenant="poisson",
                intensity=intensity,
                arrival_frac=0.15,
                departure_frac=0.6,
            ),
            fault(
                "tenant-cycle",
                "cycle-bulk",
                tenant="bulk",
                arrival_frac=0.35,
                departure_frac=0.85,
            ),
        ),
        intensity=float(intensity),
    )


def chaos_plan(intensity: float = 1.0) -> FaultPlan:
    """Everything at once: link failures, route flaps, tracker outages and
    tenant cycling — the chaos suite's standard plan."""
    if intensity <= 0:
        raise ValueError("intensity must be positive")
    return FaultPlan(
        name=f"chaos-{intensity:g}",
        description="link failures + route flaps + tracker outages + tenant cycling",
        faults=(
            fault("link-failure", "linkfail", mtbf_frac=0.4 / intensity,
                  repair_frac=0.1),
            fault("route-flap", "flap", interval_frac=0.5 / intensity,
                  duration_frac=0.06),
            fault("tracker-outage", "outage", interval_frac=0.45 / intensity,
                  outage_frac=0.1),
            fault("tenant-cycle", "cycle", tenant="poisson",
                  intensity=0.5 * intensity, arrival_frac=0.2,
                  departure_frac=0.7),
        ),
        intensity=float(intensity),
    )


#: The empty plan: nothing ever breaks (today's campaigns, bit for bit).
NO_FAULTS = FaultPlan(name="none", description="no injected faults")

#: Named presets reachable from the CLI (``repro run <scenario> --faults X``).
FAULT_PRESETS: Dict[str, FaultPlan] = {
    "none": NO_FAULTS,
    "link-failure": link_failure_plan(intensity=1.0),
    "blackout": blackout_plan(),
    "route-flap": route_flap_plan(intensity=1.0),
    "tracker-outage": tracker_outage_plan(intensity=1.0),
    "tenant-cycle": tenant_cycle_plan(intensity=0.5),
    "chaos": chaos_plan(intensity=1.0),
}

#: Preset names in CLI display order.
FAULT_NAMES = tuple(sorted(FAULT_PRESETS))


def fault_plan_from_name(name) -> FaultPlan:
    """Resolve a preset name (or pass a plan through unchanged)."""
    if isinstance(name, FaultPlan):
        return name
    key = (name or "none").strip().lower()
    try:
        return FAULT_PRESETS[key]
    except KeyError as exc:
        raise ValueError(
            f"unknown fault plan {name!r}; available: {', '.join(FAULT_NAMES)}"
        ) from exc
