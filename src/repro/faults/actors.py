"""Fault actors: deterministic failure injection on the shared agenda.

Faults are tenants too: every injector below is a
:class:`~repro.workloads.actors.WorkloadActor` scheduled on the same
:class:`~repro.workloads.engine.WorkloadEngine` agenda as the measured
broadcast and its background workload, drawing from its own stateless RNG
stream (``(seed, "fault", iteration, label)``, see
:mod:`repro.faults.spec`).  Injecting a fault is therefore just another
agenda dispatch: capacity transitions notify every other actor through
``on_network_change`` exactly like capacity drift does, so fixed and
event stepping stay bit-identical under faults.

The catalogue:

* :class:`LinkFailureActor` — link outages: capacity collapses to a tiny
  residual (the fluid engine requires positive capacities) and is restored
  after an exponential repair time, via the counted
  :meth:`~repro.network.fluid.FluidNetwork.set_link_capacity` transitions.
* :class:`RouteFlapActor` — routing instability: a link flaps, new flows
  are steered around it (when an alternate path exists) and its capacity is
  degraded for the flap window; in-flight flows keep their pinned routes,
  as real connections survive a reconverging control plane.
* :class:`TrackerOutageActor` — the rendezvous service goes dark: announce
  attempts made during the outage window fail and callers retry with
  bounded exponential backoff (see :class:`~repro.workloads.actors
  .ChurnActor` and :class:`TenantCycleActor`).
* :class:`TenantCycleActor` — whole-tenant arrival and departure
  mid-iteration: a background tenant is constructed and added to the live
  engine at its arrival time and stopped (in-flight flows cancelled) at its
  departure time.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.observability.metrics import METRICS
from repro.observability.tracer import TRACER
from repro.workloads.actors import MAX_ANNOUNCE_RETRIES, WorkloadActor

#: Fraction of nominal capacity a "failed" link retains.  The fluid engine
#: rejects non-positive capacities, so an outage is a collapse to a residual
#: trickle: flows crossing the link are effectively stalled (the transition
#: predictor treats them as such) but the allocation stays well-defined.
FAILURE_RESIDUAL = 1e-6

__all__ = [
    "FAILURE_RESIDUAL",
    "MAX_ANNOUNCE_RETRIES",
    "FaultActor",
    "LinkFailureActor",
    "RouteFlapActor",
    "TenantCycleActor",
    "TrackerOutageActor",
    "shared_links",
]


def shared_links(topology) -> list:
    """Switch-to-switch link names: the shared resources faults target."""
    return [
        link.name
        for link in topology.links
        if not (topology.is_host(link.a) or topology.is_host(link.b))
    ]


class FaultActor(WorkloadActor):
    """Base class for fault injectors (a plain actor with a fault tag).

    Besides the fault tag, the base carries the injectors' shared *control
    plane*: :meth:`_routing_for` derives (and caches, per avoid-set) a
    Dijkstra-recomputed :class:`~repro.network.routing.RoutingTable` that
    steers around a set of failed/flapping links, falling back to the
    nominal table for pairs the exclusion would disconnect.
    """

    #: Distinguishes fault rows in per-iteration stats aggregation.
    fault = True

    def __init__(self, label: str) -> None:
        super().__init__(label)
        self._route_tables: Dict[frozenset, object] = {}
        self._base_routing = None

    def bind(self, engine) -> None:
        super().bind(engine)
        self._base_routing = engine.routing

    def stats(self) -> Dict[str, object]:
        out = super().stats()
        out["fault"] = True
        return out

    def _routing_for(self, avoid: frozenset):
        """Control-plane recompute: a table avoiding ``avoid``, cached.

        An empty avoid-set is the nominal table itself; every distinct
        non-empty set is computed once (lazy Dijkstra per source inside the
        table), counted under ``routing.recomputes`` and traced on the
        simulation clock.  The fallback keeps pairs reachable when the
        avoided link is their only path.
        """
        if not avoid:
            return self._base_routing
        table = self._route_tables.get(avoid)
        if table is None:
            from repro.network.routing import RoutingTable

            table = RoutingTable(
                self.engine.topology, avoid=avoid, fallback=self._base_routing
            )
            self._route_tables[avoid] = table
            METRICS.count("routing.recomputes")
            if TRACER.enabled:
                TRACER.event(
                    "routing.recompute",
                    sim_time=self.engine.now,
                    actor=self.label,
                    avoid=sorted(avoid),
                )
        return table

    def _record_fault(self, event: str, **args) -> None:
        """Count and (when tracing) record one injected fault event.

        ``event`` follows the ``{kind}`` / ``{kind}-phase`` convention
        (``link-failure``, ``link-repair``, ``tenant-arrival``, ...); the
        trace record is sim-time stamped at the injection instant.  Pure
        telemetry: no random draws, no clock movement.
        """
        METRICS.count("faults.injected")
        METRICS.count(f"faults.{event}")
        if TRACER.enabled:
            TRACER.event(
                f"fault.{event}",
                sim_time=self.engine.now,
                actor=self.label,
                **args,
            )


# ---------------------------------------------------------------------- #
# link failures
# ---------------------------------------------------------------------- #
class LinkFailureActor(FaultActor):
    """Fail-and-repair cycles on shared links.

    Every ``mtbf`` (exponential) seconds one of the watched links that is
    currently up collapses to ``nominal × residual``; it is repaired after
    an exponential ``repair_mean`` unless ``persistent`` is set, in which
    case the link stays down for the rest of the iteration.  ``limit``
    bounds the number of failures injected (``None`` → unbounded).

    Both the failure and the repair go through the counted
    ``set_link_capacity`` transition, so event-stepped sessions are woken
    at the exact instants the world changes.

    With ``reroute=True`` the actor is also a self-healing control plane:
    each failure (and repair) derives a routing table avoiding every
    currently-down link (:meth:`FaultActor._routing_for`) and installs it
    with ``repin=True`` — live flows converge onto the surviving paths at
    the same instant the capacity collapses.  The default is off, keeping
    the classic avoid-nothing behaviour (and its goldens) intact.
    """

    kind = "link-failure"

    def __init__(
        self,
        label: str,
        rng: np.random.Generator,
        mtbf: float,
        repair_mean: float,
        links: Optional[Sequence[str]] = None,
        residual: float = FAILURE_RESIDUAL,
        persistent: bool = False,
        limit: Optional[int] = None,
        start_time: float = 0.0,
        reroute: bool = False,
    ) -> None:
        super().__init__(label)
        if mtbf <= 0:
            raise ValueError("mtbf must be positive")
        if not persistent and repair_mean <= 0:
            raise ValueError("repair_mean must be positive")
        if not 0 < residual < 1:
            raise ValueError("residual must be in (0, 1)")
        self.rng = rng
        self.mtbf = mtbf
        self.repair_mean = repair_mean
        self.links = list(links) if links is not None else None
        self.residual = residual
        self.persistent = persistent
        self.limit = limit
        self.start_time = float(start_time)
        self.reroute = bool(reroute)
        self.failures = 0
        self.repairs = 0
        self.downtime = 0.0
        self.failed_links: List[str] = []  # victims, in failure order
        self._nominal: Dict[str, float] = {}
        self._down: Dict[str, float] = {}  # link -> failure time

    def bind(self, engine) -> None:
        super().bind(engine)
        if self.links is None:
            self.links = shared_links(engine.topology)
        if not self.links:
            raise ValueError(f"link-failure actor {self.label!r} has no links")
        self._nominal = {
            name: engine.fluid.link_capacity(name) for name in self.links
        }

    def start(self) -> None:
        self._schedule_failure(self.start_time)

    def _schedule_failure(self, after: float) -> None:
        if self.limit is not None and self.failures >= self.limit:
            return
        delay = float(self.rng.exponential(self.mtbf))
        self.engine.schedule(self, after + delay, self._on_fail)

    def _on_fail(self) -> None:
        up = [name for name in self.links if name not in self._down]
        if up:
            victim = up[int(self.rng.integers(0, len(up)))]
            now = self.engine.now
            self._down[victim] = now
            self.engine.fluid.set_link_capacity(
                victim, self._nominal[victim] * self.residual
            )
            self.failures += 1
            if victim not in self.failed_links:
                self.failed_links.append(victim)
            self._record_fault("link-failure", link=victim)
            if self.reroute:
                self._apply_routing()
            if not self.persistent:
                repair = float(self.rng.exponential(self.repair_mean))
                self.engine.schedule(
                    self, now + repair, lambda name=victim: self._on_repair(name)
                )
        self._schedule_failure(self.engine.now)

    def _on_repair(self, name: str) -> None:
        failed_at = self._down.pop(name, None)
        if failed_at is None:
            return
        self.downtime += self.engine.now - failed_at
        self.engine.fluid.set_link_capacity(name, self._nominal[name])
        self.repairs += 1
        self._record_fault("link-repair", link=name)
        if self.reroute:
            self._apply_routing()

    def _apply_routing(self) -> None:
        """Install the recomputed table for the current down-set, converging
        live flows onto the surviving paths (the self-healing step)."""
        self.engine.set_routing(
            self._routing_for(frozenset(self._down)), repin=True
        )

    def stats(self) -> Dict[str, object]:
        out = super().stats()
        out.update(
            {
                "links_watched": len(self.links),
                "failures": self.failures,
                "repairs": self.repairs,
                "down_now": len(self._down),
                "downtime": self.downtime,
                "failed_links": list(self.failed_links),
                "rerouted": self.reroute,
            }
        )
        return out


# ---------------------------------------------------------------------- #
# route flaps
# ---------------------------------------------------------------------- #
class RouteFlapActor(FaultActor):
    """Routing instability: recompute routing around a flapping link.

    Every ``interval_mean`` (exponential) seconds one watched link starts a
    flap of exponential ``duration_mean``: the engine's routing table is
    swapped for one that avoids every currently-flapping link (newly opened
    flows are steered around it where an alternate path exists; on tree
    topologies the fallback keeps the nominal route), and the link's
    capacity is degraded to ``nominal × severity`` for the window —
    reconverging control planes blackhole traffic briefly, which is what
    makes a flap observable even without path diversity.  By default
    in-flight flows keep the route they were opened with; ``repin=True``
    converges them onto the recomputed paths at each flap/settle instant,
    mirroring the self-healing link-failure mode.
    """

    kind = "route-flap"

    def __init__(
        self,
        label: str,
        rng: np.random.Generator,
        interval_mean: float,
        duration_mean: float,
        links: Optional[Sequence[str]] = None,
        severity: float = 0.25,
        start_time: float = 0.0,
        repin: bool = False,
    ) -> None:
        super().__init__(label)
        if interval_mean <= 0 or duration_mean <= 0:
            raise ValueError("interval and duration means must be positive")
        if not 0 < severity <= 1:
            raise ValueError("severity must be in (0, 1]")
        self.rng = rng
        self.interval_mean = interval_mean
        self.duration_mean = duration_mean
        self.links = list(links) if links is not None else None
        self.severity = severity
        self.start_time = float(start_time)
        self.repin = bool(repin)
        self.flaps = 0
        self.reroutes = 0
        self._nominal: Dict[str, float] = {}
        self._active: set = set()

    def bind(self, engine) -> None:
        super().bind(engine)
        if self.links is None:
            self.links = shared_links(engine.topology)
        if not self.links:
            raise ValueError(f"route-flap actor {self.label!r} has no links")
        self._nominal = {
            name: engine.fluid.link_capacity(name) for name in self.links
        }

    def start(self) -> None:
        self._schedule_flap(self.start_time)

    def _schedule_flap(self, after: float) -> None:
        delay = float(self.rng.exponential(self.interval_mean))
        self.engine.schedule(self, after + delay, self._on_flap)

    def _on_flap(self) -> None:
        stable = [name for name in self.links if name not in self._active]
        if stable:
            victim = stable[int(self.rng.integers(0, len(stable)))]
            self._active.add(victim)
            self.flaps += 1
            self._record_fault("route-flap", link=victim)
            self._apply_routing()
            if self.severity < 1.0:
                self.engine.fluid.set_link_capacity(
                    victim, self._nominal[victim] * self.severity
                )
            duration = float(self.rng.exponential(self.duration_mean))
            self.engine.schedule(
                self,
                self.engine.now + duration,
                lambda name=victim: self._on_settle(name),
            )
        self._schedule_flap(self.engine.now)

    def _on_settle(self, name: str) -> None:
        if name not in self._active:
            return
        self._active.discard(name)
        self._record_fault("route-settle", link=name)
        self._apply_routing()
        self.engine.fluid.set_link_capacity(name, self._nominal[name])

    def _apply_routing(self) -> None:
        self.engine.set_routing(
            self._routing_for(frozenset(self._active)), repin=self.repin
        )
        self.reroutes += 1

    def stats(self) -> Dict[str, object]:
        out = super().stats()
        out.update(
            {
                "links_watched": len(self.links),
                "flaps": self.flaps,
                "reroutes": self.reroutes,
                "flapping_now": len(self._active),
            }
        )
        return out


# ---------------------------------------------------------------------- #
# tracker outages
# ---------------------------------------------------------------------- #
class TrackerOutageActor(FaultActor):
    """The tracker goes dark for exponential outage windows.

    While :attr:`~repro.workloads.engine.WorkloadEngine.tracker_down` is
    set, announce attempts (churn rejoins, rival-tenant arrivals) fail at
    the caller, which retries with bounded exponential backoff drawn
    against its own deterministic schedule — the fault never touches any
    other actor's random stream.
    """

    kind = "tracker-outage"

    def __init__(
        self,
        label: str,
        rng: np.random.Generator,
        interval_mean: float,
        outage_mean: float,
        start_time: float = 0.0,
    ) -> None:
        super().__init__(label)
        if interval_mean <= 0 or outage_mean <= 0:
            raise ValueError("interval and outage means must be positive")
        self.rng = rng
        self.interval_mean = interval_mean
        self.outage_mean = outage_mean
        self.start_time = float(start_time)
        self.outages = 0
        self.outage_time = 0.0

    def start(self) -> None:
        delay = float(self.rng.exponential(self.interval_mean))
        self.engine.schedule(self, self.start_time + delay, self._on_outage)

    def _on_outage(self) -> None:
        self.engine.tracker_down = True
        self.outages += 1
        self._record_fault("tracker-outage")
        duration = float(self.rng.exponential(self.outage_mean))
        self.outage_time += duration
        recover_at = self.engine.now + duration
        self.engine.schedule(self, recover_at, self._on_recover)
        delay = float(self.rng.exponential(self.interval_mean))
        self.engine.schedule(self, recover_at + delay, self._on_outage)

    def _on_recover(self) -> None:
        self.engine.tracker_down = False
        self._record_fault("tracker-recover")

    def stats(self) -> Dict[str, object]:
        out = super().stats()
        out.update({"outages": self.outages, "outage_time": self.outage_time})
        return out


# ---------------------------------------------------------------------- #
# tenant arrival / departure
# ---------------------------------------------------------------------- #
class TenantCycleActor(FaultActor):
    """Whole-tenant arrival and departure mid-iteration.

    At ``arrival`` the ``factory`` is called with the current simulation
    time and the returned actor is added to the *live* engine
    (:meth:`~repro.workloads.engine.WorkloadEngine.add_runtime`); at
    ``departure`` (``None`` → never) the tenant is stopped and its
    in-flight flows are cancelled.  Tenants that must announce to the
    tracker (``needs_tracker=True``, e.g. rival broadcasts) respect
    tracker outages: the arrival is retried with bounded exponential
    backoff until the tracker is reachable again.
    """

    kind = "tenant-cycle"

    def __init__(
        self,
        label: str,
        rng: np.random.Generator,
        factory: Callable[[float], WorkloadActor],
        arrival: float,
        departure: Optional[float] = None,
        needs_tracker: bool = False,
        retry_base: Optional[float] = None,
    ) -> None:
        super().__init__(label)
        if arrival < 0:
            raise ValueError("arrival must be non-negative")
        if departure is not None and departure <= arrival:
            raise ValueError("departure must come after arrival")
        self.rng = rng
        self.factory = factory
        self.arrival = float(arrival)
        self.departure = departure if departure is None else float(departure)
        self.needs_tracker = needs_tracker
        self.retry_base = retry_base
        self.tenant: Optional[WorkloadActor] = None
        self.arrivals = 0
        self.departures = 0
        self.announce_retries = 0
        self.announce_failures = 0

    def start(self) -> None:
        self.engine.schedule(self, self.arrival, self._on_arrival)

    def _on_arrival(self, attempt: int = 0) -> None:
        if self.needs_tracker and getattr(self.engine, "tracker_down", False):
            if attempt >= MAX_ANNOUNCE_RETRIES:
                self.announce_failures += 1
                return
            base = self.retry_base
            if base is None:
                base = max(self.arrival, 1e-3) * 0.05
            self.announce_retries += 1
            self.engine.schedule(
                self,
                self.engine.now + base * (2.0 ** attempt),
                lambda: self._on_arrival(attempt + 1),
            )
            return
        self.tenant = self.factory(self.engine.now)
        self.engine.add_runtime(self.tenant)
        self.arrivals += 1
        self._record_fault("tenant-arrival", tenant=self.tenant.label)
        if self.departure is not None:
            self.engine.schedule(
                self, max(self.departure, self.engine.now), self._on_departure
            )

    def _on_departure(self) -> None:
        if self.tenant is None or self.tenant.stopped:
            return
        self.tenant.stop()
        self.departures += 1
        self._record_fault("tenant-departure", tenant=self.tenant.label)

    def stats(self) -> Dict[str, object]:
        out = super().stats()
        out.update(
            {
                "arrivals": self.arrivals,
                "departures": self.departures,
                "announce_retries": self.announce_retries,
                "announce_failures": self.announce_failures,
            }
        )
        return out
