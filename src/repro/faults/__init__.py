"""Deterministic fault injection for measurement campaigns.

Declarative :class:`FaultPlan` presets compose fault actors — link
failures, route flaps, tracker outages, tenant arrival/departure — onto
the shared workload agenda, seeded from stateless
``(seed, "fault", iteration, label)`` streams so campaigns stay
bit-for-bit reproducible under injected failure.  See ``docs/faults.md``.
"""

from repro.faults.actors import (
    FAILURE_RESIDUAL,
    MAX_ANNOUNCE_RETRIES,
    FaultActor,
    LinkFailureActor,
    RouteFlapActor,
    TenantCycleActor,
    TrackerOutageActor,
    shared_links,
)
from repro.faults.spec import (
    FAULT_KINDS,
    FAULT_NAMES,
    FAULT_PRESETS,
    NO_FAULTS,
    FaultPlan,
    FaultSpec,
    blackout_plan,
    build_fault_actors,
    chaos_plan,
    fault,
    fault_plan_from_name,
    link_failure_plan,
    migrating_plan,
    route_flap_plan,
    tenant_cycle_plan,
    tracker_outage_plan,
)

__all__ = [
    "FAILURE_RESIDUAL",
    "MAX_ANNOUNCE_RETRIES",
    "FAULT_KINDS",
    "FAULT_NAMES",
    "FAULT_PRESETS",
    "NO_FAULTS",
    "FaultActor",
    "FaultPlan",
    "FaultSpec",
    "LinkFailureActor",
    "RouteFlapActor",
    "TenantCycleActor",
    "TrackerOutageActor",
    "blackout_plan",
    "build_fault_actors",
    "chaos_plan",
    "fault",
    "fault_plan_from_name",
    "link_failure_plan",
    "migrating_plan",
    "route_flap_plan",
    "shared_links",
    "tenant_cycle_plan",
    "tracker_outage_plan",
]
