"""Workload actors: the tenants of a shared simulated cluster.

Every actor owns a label, draws from its own stateless RNG stream (derived
from the workload seed and the label, exactly like the campaign executors
derive per-broadcast streams), and schedules callbacks on the shared
:class:`~repro.workloads.engine.WorkloadEngine` agenda.  The catalogue:

* :class:`BroadcastActor` — runs an instrumented BitTorrent broadcast as a
  scheduled actor: the :class:`~repro.bittorrent.swarm.BroadcastSession`
  generator issues clock requests and this adapter turns them into agenda
  events.  The *measured* broadcast of an interference scenario is a
  blocking actor; rival broadcasts are the same actor marked non-blocking.
* :class:`PoissonTrafficActor` — memoryless cross traffic: flow arrivals
  are a Poisson process, sizes exponential, endpoints uniform host pairs.
* :class:`OnOffTrafficActor` — bursty cross traffic: alternating
  exponential ON (one bulk flow) and OFF (silence) periods.
* :class:`BulkTransferActor` — a long-lived background transfer between
  fixed endpoints, optionally restarted for the whole run.
* :class:`CapacityDriftActor` — slow link-capacity drift: periodically
  rescales chosen links to a random fraction of their nominal capacity.
* :class:`ChurnActor` — peer churn: repeatedly picks a live peer of a
  target broadcast, makes it leave, and schedules its rejoin.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bittorrent.swarm import BitTorrentBroadcast, BroadcastSession, SwarmConfig

#: Bounded announce retries before a caller gives up on a dark tracker.
MAX_ANNOUNCE_RETRIES = 10


class WorkloadActor:
    """Base class for everything scheduled on the shared workload agenda."""

    #: Actor family name recorded in stats/BENCH rows.
    kind = "abstract"
    #: Engine.run() returns once every *blocking* actor reports ``done``.
    blocking = False

    def __init__(self, label: str) -> None:
        if not label:
            raise ValueError("actor label must be non-empty")
        self.label = label
        self.engine = None
        #: Set by :meth:`stop`; a stopped actor schedules no further work.
        self.stopped = False

    def bind(self, engine) -> None:
        """Attach to an engine (called by ``WorkloadEngine.add``)."""
        self.engine = engine

    def start(self) -> None:
        """Schedule the actor's first event (called once by ``engine.run``)."""
        raise NotImplementedError

    def stop(self) -> None:
        """Retire the actor mid-run (tenant departure).

        Pending agenda callbacks still fire but must no-op once ``stopped``
        is set; subclasses additionally tear down in-flight flows.
        """
        self.stopped = True

    @property
    def done(self) -> bool:
        """Whether a blocking actor has finished its work."""
        return True

    def on_network_change(self, time: float) -> None:
        """The shared rate allocation changed at ``time`` (another tenant)."""

    def stats(self) -> Dict[str, object]:
        """Summary dictionary recorded per iteration (override and extend)."""
        return {"actor": self.label, "kind": self.kind}


# ---------------------------------------------------------------------- #
# broadcasts as actors
# ---------------------------------------------------------------------- #
class BroadcastActor(WorkloadActor):
    """Adapter running a swarm broadcast as one tenant of the shared clock.

    The session generator's requests map onto agenda events:

    * ``("advance", step, T)`` → an event at ``T``; the engine brings the
      shared fluid network to ``T`` before the callback resumes the loop.
    * ``("sleep", from, target, T)`` → an event at ``T`` carrying the
      granted landing step.  :meth:`on_network_change` (cross traffic,
      churn, capacity drift) reschedules it to the first grid point after
      the disturbance — the conservative landing that keeps the event-
      stepped loop exact in a changing network.
    """

    kind = "broadcast"

    def __init__(
        self,
        label: str,
        config: SwarmConfig,
        hosts: Optional[Sequence[str]] = None,
        root: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
        start_time: float = 0.0,
        trace: Optional[List[Tuple[float, str, str, int]]] = None,
        blocking: bool = True,
    ) -> None:
        super().__init__(label)
        self.config = config
        self.hosts = list(hosts) if hosts is not None else None
        self.rng = rng
        self.start_time = float(start_time)
        self.trace = trace
        self.blocking = blocking
        self.broadcast: Optional[BitTorrentBroadcast] = None
        self.session: Optional[BroadcastSession] = None
        self.root = root
        self._event = None
        self._pending_sleep: Optional[Tuple] = None
        self._granted: Optional[int] = None

    def bind(self, engine) -> None:
        super().bind(engine)
        self.broadcast = BitTorrentBroadcast(
            engine.topology, self.config, hosts=self.hosts, routing=engine.routing
        )
        if self.root is None:
            self.root = self.broadcast.hosts[0]
        self.session = BroadcastSession(
            self.broadcast,
            root=self.root,
            rng=self.rng,
            trace=self.trace,
            fluid=engine.fluid,
            start_time=self.start_time,
        )

    # -------------------------------------------------------------- #
    def start(self) -> None:
        self._event = self.engine.schedule(self, self.start_time, self._on_start)

    @property
    def done(self) -> bool:
        return self.session is not None and self.session.finished

    @property
    def result(self):
        """The broadcast's :class:`BroadcastResult` once finished."""
        return self.session.result if self.session is not None else None

    def _on_start(self) -> None:
        self._handle(self.session.start())

    def _on_advance(self) -> None:
        # The engine advanced the shared fluid clock to this event's time.
        self._handle(self.session.resume(None))

    def _on_wake(self) -> None:
        self._handle(self.session.resume(self._granted))

    def _handle(self, request: Optional[Tuple]) -> None:
        self._event = None
        self._pending_sleep = None
        self._granted = None
        if self.session.finished:
            return
        if request[0] == "advance":
            self._event = self.engine.schedule(self, request[2], self._on_advance)
        else:  # ("sleep", from_step, target_step, time)
            self._pending_sleep = request
            self._granted = request[2]
            self._event = self.engine.schedule(self, request[3], self._on_wake)

    # -------------------------------------------------------------- #
    def wake_at(self, time: float) -> None:
        """Cut a planned jump short: land at the first grid point >= ``time``.

        No-op unless the session is sleeping past ``time``.  Early landings
        are always exact — the fixed-dt oracle visits every grid point — so
        callers may wake conservatively (e.g. on every foreign transition).
        """
        pending = self._pending_sleep
        if pending is None:
            return
        _, from_step, target_step, target_time = pending
        if time >= target_time - 1e-12:
            return
        dt = self.config.control_dt
        k = int(math.ceil((time - self.start_time) / dt - 1e-9))
        k = max(k, from_step + 1)
        while self.start_time + k * dt < time - 1e-12:
            k += 1
        if k >= target_step:
            return
        wake_time = max(self.start_time + k * dt, time)
        self._event.cancel()
        self._granted = k
        self._pending_sleep = ("sleep", from_step, k, wake_time)
        self._event = self.engine.schedule(self, wake_time, self._on_wake)

    def on_network_change(self, time: float) -> None:
        self.wake_at(time)

    def stats(self) -> Dict[str, object]:
        out = super().stats()
        result = self.result
        out.update(
            {
                "blocking": self.blocking,
                "start_time": self.start_time,
                "finished": self.done,
                "churn_events": self.session.churn_events if self.session else 0,
                "duration": result.duration if result is not None else None,
                "control_steps": result.control_steps if result is not None else None,
            }
        )
        return out


# ---------------------------------------------------------------------- #
# generative background traffic
# ---------------------------------------------------------------------- #
class _TrafficActor(WorkloadActor):
    """Shared bookkeeping for flow-generating background actors."""

    def __init__(
        self,
        label: str,
        rng: np.random.Generator,
        hosts: Optional[Sequence[str]] = None,
        rate_cap: Optional[float] = None,
        start_time: float = 0.0,
    ) -> None:
        super().__init__(label)
        self.rng = rng
        self.hosts = list(hosts) if hosts is not None else None
        self.rate_cap = rate_cap
        self.start_time = float(start_time)
        self.flows_started = 0
        self.bytes_offered = 0.0
        self.bytes_delivered = 0.0
        # Insertion-ordered (dict-as-set): ``stop()`` sums transferred bytes
        # over the live flows, and float summation order must not depend on
        # id()-based set iteration or runs stop being bit-reproducible.
        self._active: Dict[object, None] = {}

    def bind(self, engine) -> None:
        super().bind(engine)
        if self.hosts is None:
            self.hosts = list(engine.topology.host_names)
        if len(self.hosts) < 2:
            raise ValueError(f"traffic actor {self.label!r} needs >= 2 hosts")

    def _pick_pair(self) -> Tuple[str, str]:
        """A uniformly random ordered host pair from this actor's stream."""
        n = len(self.hosts)
        i = int(self.rng.integers(0, n))
        j = int(self.rng.integers(0, n - 1))
        if j >= i:
            j += 1
        return self.hosts[i], self.hosts[j]

    def _launch(self, src: str, dst: str, size: float):
        self.flows_started += 1
        self.bytes_offered += size
        transfer = self.engine.fluid.start_transfer(
            src, dst, size, rate_cap=self.rate_cap, on_complete=self._delivered
        )
        self._active[transfer] = None
        return transfer

    def _delivered(self, transfer) -> None:
        self._active.pop(transfer, None)
        self.bytes_delivered += transfer.transferred

    def stop(self) -> None:
        """Departure: cancel every in-flight flow, keeping delivered bytes."""
        super().stop()
        for transfer in list(self._active):
            if transfer.finish_time is None:
                self.bytes_delivered += transfer.transferred
                self.engine.fluid.cancel_transfer(transfer)
        self._active.clear()

    def stats(self) -> Dict[str, object]:
        out = super().stats()
        out.update(
            {
                "flows_started": self.flows_started,
                "bytes_offered": self.bytes_offered,
                "bytes_delivered": self.bytes_delivered,
            }
        )
        return out


class PoissonTrafficActor(_TrafficActor):
    """Memoryless cross traffic: Poisson arrivals of exponential-size flows.

    ``offered_load`` (bytes/second) fixes the mean injected rate:
    arrivals come at ``offered_load / mean_size`` per second.
    """

    kind = "poisson"

    def __init__(
        self,
        label: str,
        rng: np.random.Generator,
        offered_load: float,
        mean_size: float,
        hosts: Optional[Sequence[str]] = None,
        rate_cap: Optional[float] = None,
        start_time: float = 0.0,
    ) -> None:
        super().__init__(label, rng, hosts, rate_cap, start_time)
        if offered_load <= 0 or mean_size <= 0:
            raise ValueError("offered_load and mean_size must be positive")
        self.offered_load = offered_load
        self.mean_size = mean_size
        self.arrival_rate = offered_load / mean_size

    def start(self) -> None:
        self._schedule_arrival(self.start_time)

    def _schedule_arrival(self, after: float) -> None:
        delay = float(self.rng.exponential(1.0 / self.arrival_rate))
        self.engine.schedule(self, after + delay, self._on_arrival)

    def _on_arrival(self) -> None:
        if self.stopped:
            return
        src, dst = self._pick_pair()
        size = max(float(self.rng.exponential(self.mean_size)), 1.0)
        self._launch(src, dst, size)
        self._schedule_arrival(self.engine.now)


class OnOffTrafficActor(_TrafficActor):
    """Bursty cross traffic: exponential ON periods (one bulk flow) and OFF
    silences.  During ON the flow runs uncapped (beyond ``rate_cap``) and is
    cancelled when the period ends, so its footprint is the period length,
    not a fixed byte budget."""

    kind = "onoff"

    def __init__(
        self,
        label: str,
        rng: np.random.Generator,
        on_mean: float,
        off_mean: float,
        burst_size: float,
        hosts: Optional[Sequence[str]] = None,
        pair: Optional[Tuple[str, str]] = None,
        rate_cap: Optional[float] = None,
        start_time: float = 0.0,
    ) -> None:
        super().__init__(label, rng, hosts, rate_cap, start_time)
        if on_mean <= 0 or off_mean <= 0 or burst_size <= 0:
            raise ValueError("on/off means and burst_size must be positive")
        self.on_mean = on_mean
        self.off_mean = off_mean
        self.burst_size = burst_size
        self.pair = pair
        self._transfer = None

    def start(self) -> None:
        delay = float(self.rng.exponential(self.off_mean))
        self.engine.schedule(self, self.start_time + delay, self._on_period)

    def _on_period(self) -> None:
        if self.stopped:
            return
        src, dst = self.pair if self.pair is not None else self._pick_pair()
        self._transfer = self._launch(src, dst, self.burst_size)
        duration = float(self.rng.exponential(self.on_mean))
        self.engine.schedule(self, self.engine.now + duration, self._off_period)

    def _off_period(self) -> None:
        if self.stopped:
            return
        transfer = self._transfer
        self._transfer = None
        if transfer is not None and transfer.finish_time is None:
            # Count the bytes the burst actually moved before tearing it down.
            self._active.pop(transfer, None)
            self.bytes_delivered += transfer.transferred
            self.engine.fluid.cancel_transfer(transfer)
        delay = float(self.rng.exponential(self.off_mean))
        self.engine.schedule(self, self.engine.now + delay, self._on_period)

    def _delivered(self, transfer) -> None:
        super()._delivered(transfer)
        if transfer is self._transfer:
            self._transfer = None


class BulkTransferActor(_TrafficActor):
    """A long-lived bulk transfer between fixed endpoints.

    With ``repeat=True`` the transfer restarts the moment it completes, so
    the pair's path carries a persistent competing flow for the whole run.
    """

    kind = "bulk"

    def __init__(
        self,
        label: str,
        rng: np.random.Generator,
        src: str,
        dst: str,
        size: float,
        repeat: bool = True,
        rate_cap: Optional[float] = None,
        start_time: float = 0.0,
    ) -> None:
        super().__init__(label, rng, hosts=[src, dst], rate_cap=rate_cap,
                         start_time=start_time)
        if size <= 0:
            raise ValueError("size must be positive")
        self.src = src
        self.dst = dst
        self.size = size
        self.repeat = repeat

    def start(self) -> None:
        self.engine.schedule(self, self.start_time, self._begin)

    def _begin(self) -> None:
        if self.stopped:
            return
        self._launch(self.src, self.dst, self.size)

    def _delivered(self, transfer) -> None:
        super()._delivered(transfer)
        if self.repeat and not self.stopped:
            # Restart at the exact completion time via the shared agenda
            # (clamped: completions can land a float-tolerance behind now).
            restart = max(transfer.finish_time, self.engine.now)
            self.engine.schedule(self, restart, self._begin)


# ---------------------------------------------------------------------- #
# capacity drift
# ---------------------------------------------------------------------- #
class CapacityDriftActor(WorkloadActor):
    """Slow link-capacity drift on shared links.

    Every ``interval_mean`` (exponential) seconds one of the watched links
    is rescaled to ``nominal × U(floor, ceiling)``.  Defaults watch every
    switch-to-switch link — the shared resources whose contention the
    tomography metric measures — leaving host access links untouched.
    """

    kind = "drift"

    def __init__(
        self,
        label: str,
        rng: np.random.Generator,
        interval_mean: float,
        links: Optional[Sequence[str]] = None,
        floor: float = 0.4,
        ceiling: float = 1.0,
        start_time: float = 0.0,
    ) -> None:
        super().__init__(label)
        if interval_mean <= 0:
            raise ValueError("interval_mean must be positive")
        if not 0 < floor <= ceiling:
            raise ValueError("need 0 < floor <= ceiling")
        self.rng = rng
        self.interval_mean = interval_mean
        self.links = list(links) if links is not None else None
        self.floor = floor
        self.ceiling = ceiling
        self.start_time = float(start_time)
        self.changes = 0
        self._nominal: Dict[str, float] = {}

    def bind(self, engine) -> None:
        super().bind(engine)
        topology = engine.topology
        if self.links is None:
            self.links = [
                link.name
                for link in topology.links
                if not (topology.is_host(link.a) or topology.is_host(link.b))
            ]
        if not self.links:
            raise ValueError(f"drift actor {self.label!r} has no links to drift")
        self._nominal = {
            name: engine.fluid.link_capacity(name) for name in self.links
        }

    def start(self) -> None:
        self._schedule_tick(self.start_time)

    def _schedule_tick(self, after: float) -> None:
        delay = float(self.rng.exponential(self.interval_mean))
        self.engine.schedule(self, after + delay, self._on_tick)

    def _on_tick(self) -> None:
        name = self.links[int(self.rng.integers(0, len(self.links)))]
        factor = float(self.rng.uniform(self.floor, self.ceiling))
        self.engine.fluid.set_link_capacity(name, self._nominal[name] * factor)
        self.changes += 1
        self._schedule_tick(self.engine.now)

    def stats(self) -> Dict[str, object]:
        out = super().stats()
        out.update({"links_watched": len(self.links), "changes": self.changes})
        return out


# ---------------------------------------------------------------------- #
# peer churn
# ---------------------------------------------------------------------- #
class ChurnActor(WorkloadActor):
    """Leave/rejoin churn against a target broadcast actor.

    Every ``interval_mean`` (exponential) seconds a uniformly chosen live,
    non-root peer leaves the swarm; it rejoins after an exponential
    ``downtime_mean`` with a fresh tracker announce (drawn from this
    actor's stream, so churn never perturbs the broadcast's own stream).

    A rejoin is an announce, so it respects tracker outages (see
    :class:`~repro.faults.actors.TrackerOutageActor`): while the engine's
    ``tracker_down`` flag is set the rejoin is retried with bounded
    exponential backoff — a deterministic schedule off ``retry_base``
    (default ``0.1 × downtime_mean``), no extra random draws, so an empty
    fault plan leaves the churn stream untouched bit for bit.
    """

    kind = "churn"

    def __init__(
        self,
        label: str,
        rng: np.random.Generator,
        target: BroadcastActor,
        interval_mean: float,
        downtime_mean: float,
        start_time: float = 0.0,
        retry_base: Optional[float] = None,
    ) -> None:
        super().__init__(label)
        if interval_mean <= 0 or downtime_mean <= 0:
            raise ValueError("interval and downtime means must be positive")
        self.rng = rng
        self.target = target
        self.interval_mean = interval_mean
        self.downtime_mean = downtime_mean
        self.start_time = float(start_time)
        self.retry_base = (
            float(retry_base) if retry_base is not None else 0.1 * downtime_mean
        )
        self.leaves = 0
        self.rejoins = 0
        self.announce_retries = 0
        self.announce_failures = 0

    def start(self) -> None:
        self._schedule_leave(self.start_time)

    def _schedule_leave(self, after: float) -> None:
        delay = float(self.rng.exponential(self.interval_mean))
        self.engine.schedule(self, after + delay, self._on_leave)

    def _on_leave(self) -> None:
        target = self.target
        session = target.session
        if not target.done:
            # Exclude departed peers AND victims whose departure is still
            # queued for the next control point — a double leave would no-op
            # at apply time.
            pending = {
                name for op, name, _ in session._pending_churn if op == "leave"
            }
            candidates = [
                h
                for h in target.broadcast.hosts
                if h != target.root
                and h not in session.departed
                and h not in pending
            ]
            if candidates:
                victim = candidates[int(self.rng.integers(0, len(candidates)))]
                session.request_leave(victim)
                target.wake_at(self.engine.now)
                self.leaves += 1
                downtime = float(self.rng.exponential(self.downtime_mean))
                self.engine.schedule(
                    self,
                    self.engine.now + downtime,
                    lambda name=victim: self._on_rejoin(name),
                )
        self._schedule_leave(self.engine.now)

    def _on_rejoin(self, name: str, attempt: int = 0) -> None:
        target = self.target
        if target.done:
            return
        if getattr(self.engine, "tracker_down", False):
            if attempt >= MAX_ANNOUNCE_RETRIES:
                self.announce_failures += 1
                return
            self.announce_retries += 1
            self.engine.schedule(
                self,
                self.engine.now + self.retry_base * (2.0 ** attempt),
                lambda: self._on_rejoin(name, attempt + 1),
            )
            return
        target.session.request_rejoin(name, self.rng)
        target.wake_at(self.engine.now)
        self.rejoins += 1

    def stats(self) -> Dict[str, object]:
        out = super().stats()
        # Report *applied* churn (the session's counters): a request can
        # still no-op at its control point, e.g. when the broadcast finishes
        # first, so the requested tallies (self.leaves/rejoins) overcount.
        applied = self.target.session.churn_applied
        out.update(
            {
                "leaves": applied["leave"],
                "rejoins": applied["rejoin"],
                "leave_requests": self.leaves,
                "rejoin_requests": self.rejoins,
                "announce_retries": self.announce_retries,
                "announce_failures": self.announce_failures,
            }
        )
        return out
