"""The multi-tenant workload engine: one clock, one network, many actors.

The paper measures each BitTorrent broadcast in an otherwise-idle network;
real shared clusters are never idle.  This engine simulates that reality:
every tenant — instrumented broadcasts, rival broadcasts, generative cross
traffic, capacity drift, churn injectors — is a :class:`~repro.workloads
.actors.WorkloadActor` scheduled on **one**
:class:`~repro.simulation.engine.Simulator` agenda and moving bytes through
**one** :class:`~repro.network.fluid.FluidNetwork`, so all flows contend for
the same max-min-fair bandwidth.

The drive loop interleaves two event sources in exact time order:

* *agenda events* — actor callbacks (control points of a broadcast session,
  traffic arrivals, churn timers, capacity drift ticks);
* *fluid transitions* — in-flight transfer completions, processed at their
  exact times so ``on_complete`` callbacks fire with a consistent clock.

After every dispatch the engine compares the fluid network's transition
counter: if the dispatched actor changed the shared rate allocation (opened
or finished a flow, drifted a capacity), every *other* actor gets an
:meth:`~repro.workloads.actors.WorkloadActor.on_network_change` notification.
Event-stepped broadcast sessions use it to cut a planned jump short — their
jump predicates assume piecewise-constant rates, and the notification is
precisely the signal that the constant-rate window ended early.  Landing
early on the control grid is always exact (the fixed-dt oracle visits every
grid point), so a multi-tenant workload replays identically under both
stepping policies — ``tests/test_workloads.py`` pins that equivalence.

With a single broadcast actor and no background tenants nothing ever cuts a
jump short and no foreign flow perturbs the allocation: the engine reduces
to the standalone ``BitTorrentBroadcast.run`` loop bit for bit
(``tests/test_seed_replay.py`` pins the sha256 fingerprints).
"""

from __future__ import annotations

from typing import List, Optional

from repro.network.fluid import FluidNetwork
from repro.network.routing import RoutingTable
from repro.network.topology import Topology
from repro.observability.metrics import METRICS
from repro.observability.tracer import TRACER
from repro.simulation.engine import Event, Simulator
from repro.workloads.actors import WorkloadActor

#: Safety valve on dispatched events per :meth:`WorkloadEngine.run` call.
DEFAULT_MAX_EVENTS = 50_000_000


class WorkloadEngine:
    """Shared simulation clock and fluid network for many workload actors.

    Parameters
    ----------
    topology:
        The network substrate every tenant's flows share.
    routing:
        Optional pre-built routing table (shared across iterations).
    start_time:
        Initial clock value (both the agenda's and the fluid network's).
    """

    def __init__(
        self,
        topology: Topology,
        routing: Optional[RoutingTable] = None,
        start_time: float = 0.0,
    ) -> None:
        self.topology = topology
        self.routing = routing or RoutingTable(topology)
        self.simulator = Simulator(start_time)
        self.fluid = FluidNetwork(topology, self.routing)
        if start_time:
            self.fluid.advance_to(start_time)
        # Long workloads would otherwise accumulate every finished cross-
        # traffic transfer; actors keep their own byte tallies instead.
        self.fluid.retain_completed = False
        self.actors: List[WorkloadActor] = []
        self.events_dispatched = 0
        #: Set by :class:`~repro.faults.actors.TrackerOutageActor` while the
        #: rendezvous service is dark; announce-dependent actors check it and
        #: retry with bounded backoff.
        self.tracker_down = False
        self._running = False

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current shared simulation time in seconds."""
        return self.simulator.now

    def add(self, actor: WorkloadActor) -> WorkloadActor:
        """Register an actor; it may schedule events once :meth:`run` starts."""
        if any(existing.label == actor.label for existing in self.actors):
            raise ValueError(f"duplicate actor label {actor.label!r}")
        actor.bind(self)
        self.actors.append(actor)
        return actor

    def add_runtime(self, actor: WorkloadActor) -> WorkloadActor:
        """Add a tenant to a *live* engine (mid-:meth:`run` arrival).

        Like :meth:`add`, but when the drive loop is already running the
        actor is started immediately so it can schedule its first events
        from the current clock.  Late arrivals must not be blocking: the
        drive loop's exit condition was fixed when :meth:`run` started.
        """
        if actor.blocking and self._running:
            raise ValueError(
                f"cannot add blocking actor {actor.label!r} to a running engine"
            )
        self.add(actor)
        if self._running:
            actor.start()
        return actor

    def set_routing(self, routing: RoutingTable, repin: bool = False) -> None:
        """Swap the routing table mid-run (route flaps, failure recovery).

        By default only *new* transfers consult the table; in-flight flows
        keep the pinned link lists they were opened with (connections
        surviving a reconverging control plane).  With ``repin=True`` the
        swap also converges the data path: every live flow whose route
        changed is moved onto its new path at this instant, in one counted
        fluid transition (:meth:`~repro.network.fluid.FluidNetwork
        .repin_routes`), so event-stepped sessions are woken exactly when
        the allocation changes.  The replacement must be built over the same
        topology so its dense link index stays aligned with the fluid
        network's capacity vector.
        """
        if routing.topology is not self.topology:
            raise ValueError("replacement routing table is over a different topology")
        self.routing = routing
        self.fluid.routing = routing
        if repin:
            moved = self.fluid.repin_routes(routing)
            if moved:
                METRICS.count("routing.repins", moved)
                if TRACER.enabled:
                    TRACER.event(
                        "routing.repin",
                        sim_time=self.now,
                        flows=moved,
                        avoid=sorted(routing.avoid),
                    )

    def schedule(self, actor: WorkloadActor, time: float, callback) -> Event:
        """Put an actor callback on the shared agenda (tagged with its owner)."""
        return self.simulator.schedule_at(time, callback, owner=actor)

    # ------------------------------------------------------------------ #
    def run(
        self,
        until: Optional[float] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> float:
        """Drive the shared agenda until the workload's blocking actors finish.

        ``until`` bounds the simulated horizon; it is required when no actor
        is *blocking* (pure background workloads would otherwise generate
        events forever).  Returns the simulation time at exit.
        """
        blocking = [actor for actor in self.actors if actor.blocking]
        if not blocking and until is None:
            raise ValueError(
                "a workload with no blocking actor needs an explicit horizon"
            )
        self._running = True
        for actor in list(self.actors):
            actor.start()

        trace_full = TRACER.full
        engine_started = TRACER.now() if TRACER.enabled else 0.0
        dispatched_before = self.events_dispatched
        processed = 0
        while True:
            if blocking and all(actor.done for actor in blocking):
                break
            t_event = self.simulator.peek_time()
            t_fluid = self.fluid.next_transition()
            if t_event is None and t_fluid is None:
                break
            if processed >= max_events:
                raise RuntimeError(
                    f"workload exceeded its event budget ({max_events})"
                )
            processed += 1

            if t_event is None or (
                t_fluid is not None and t_fluid < t_event - 1e-12
            ):
                # A transfer finishes strictly before the next agenda event:
                # process it at its exact time so completion callbacks see a
                # consistent clock and freed bandwidth is redistributed.
                if until is not None and t_fluid > until + 1e-12:
                    break
                snapshot = self.fluid.transitions
                self.simulator.advance_to(t_fluid)
                self.fluid.advance_to(t_fluid)
                if self.fluid.transitions != snapshot:
                    if trace_full:
                        TRACER.event(
                            "fluid.transition",
                            sim_time=t_fluid,
                            transitions=self.fluid.transitions - snapshot,
                        )
                    self._network_changed(t_fluid, source=None)
                continue

            if until is not None and t_event > until + 1e-12:
                break
            snapshot = self.fluid.transitions
            self.simulator.advance_to(t_event)
            # Completions landing exactly on the event time are settled
            # before the callback runs, as a real event-list sim would.
            self.fluid.advance_to(t_event)
            event = self.simulator.step()
            self.events_dispatched += 1
            if trace_full and event is not None:
                owner = getattr(event, "owner", None)
                TRACER.event(
                    "workload.dispatch",
                    sim_time=t_event,
                    actor=getattr(owner, "label", None),
                )
            if event is not None and self.fluid.transitions != snapshot:
                self._network_changed(t_event, source=event.owner)

        self._running = False
        dispatched = self.events_dispatched - dispatched_before
        METRICS.count("workload.dispatches", dispatched)
        if TRACER.enabled:
            TRACER.span_record(
                "workload.run",
                engine_started,
                actors=len(self.actors),
                dispatches=dispatched,
                sim_end=self.simulator.now,
            )
        if until is not None:
            self.fluid.advance_to(until)
            self.simulator.advance_to(until)
        return self.simulator.now

    # ------------------------------------------------------------------ #
    def _network_changed(self, time: float, source: Optional[object]) -> None:
        """Tell every other actor the shared rate allocation just changed."""
        METRICS.count("workload.network_changes")
        for actor in self.actors:
            if actor is not source:
                actor.on_network_change(time)

    def stats(self) -> List[dict]:
        """Per-actor summary dictionaries, in registration order."""
        return [actor.stats() for actor in self.actors]
