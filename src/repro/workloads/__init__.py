"""Multi-tenant workload simulation: many tenants, one clock, one network.

See :mod:`repro.workloads.engine` for the shared-agenda model,
:mod:`repro.workloads.actors` for the tenant catalogue and
:mod:`repro.workloads.spec` for declarative composition — and
``docs/workloads.md`` for the design notes and measured noise thresholds.
"""

from repro.workloads.actors import (
    BroadcastActor,
    BulkTransferActor,
    CapacityDriftActor,
    ChurnActor,
    OnOffTrafficActor,
    PoissonTrafficActor,
    WorkloadActor,
)
from repro.workloads.engine import WorkloadEngine
from repro.workloads.spec import (
    NONE,
    WORKLOAD_NAMES,
    WORKLOAD_PRESETS,
    ActorSpec,
    WorkloadSpec,
    actor,
    capacity_drift_workload,
    churn_workload,
    cross_traffic_workload,
    expected_broadcast_duration,
    mixed_workload,
    rival_broadcast_workload,
    run_workload_iteration,
    workload_from_name,
)

__all__ = [
    "ActorSpec",
    "BroadcastActor",
    "BulkTransferActor",
    "CapacityDriftActor",
    "ChurnActor",
    "NONE",
    "OnOffTrafficActor",
    "PoissonTrafficActor",
    "WORKLOAD_NAMES",
    "WORKLOAD_PRESETS",
    "WorkloadActor",
    "WorkloadEngine",
    "WorkloadSpec",
    "actor",
    "capacity_drift_workload",
    "churn_workload",
    "cross_traffic_workload",
    "expected_broadcast_duration",
    "mixed_workload",
    "rival_broadcast_workload",
    "run_workload_iteration",
    "workload_from_name",
]
