"""Declarative workload composition and the preset registry.

A :class:`WorkloadSpec` names the *background* tenants that share the
cluster with a measured broadcast: rival broadcasts, Poisson / on-off cross
traffic, long-lived bulk transfers, capacity drift, peer churn.  Specs are
frozen and picklable — all parameters are plain values expressed *relative*
to the measured campaign's scale (fractions of the expected broadcast
duration, of the torrent size, of a node access link), so one spec applies
unchanged to any topology and fragment count.

Absolute values are resolved at build time by :func:`run_workload_iteration`,
which also derives every actor's RNG stream statelessly from the campaign
seed and the actor label (``(seed, "workload", iteration, label)``) — the
same discipline the campaign executors use for broadcasts, so a workload
campaign replays bit-for-bit from its seed and the measured broadcast's own
stream (``(seed, "broadcast", iteration)``) is never perturbed.  With the
empty spec (:data:`NONE`) the iteration reduces to the classic single-tenant
broadcast exactly.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bittorrent.swarm import SwarmConfig
from repro.bittorrent.torrent import TorrentMeta
from repro.network.grid5000 import NODE_ACCESS_CAPACITY
from repro.network.routing import RoutingTable
from repro.network.topology import Topology
from repro.simulation.rng import derive_seed
from repro.workloads.actors import (
    BroadcastActor,
    BulkTransferActor,
    CapacityDriftActor,
    ChurnActor,
    OnOffTrafficActor,
    PoissonTrafficActor,
    WorkloadActor,
)
from repro.workloads.engine import WorkloadEngine

#: Actor kinds a spec may declare.
ACTOR_KINDS = ("rival", "poisson", "onoff", "bulk", "drift", "churn")


def expected_broadcast_duration(config: SwarmConfig) -> float:
    """The campaign's natural timescale (same model as default_swarm_config):
    a broadcast moves ~4 file transfers' worth of bytes through one access
    link.  Relative workload knobs (start offsets, churn intervals, drift
    ticks) are expressed as fractions of this."""
    return 4.0 * float(config.torrent.size) / NODE_ACCESS_CAPACITY


@dataclasses.dataclass(frozen=True)
class ActorSpec:
    """One declared background tenant.

    ``params`` is a frozen ``(key, value)`` mapping of *relative* knobs; the
    accepted keys depend on ``kind`` (see the builders in this module).
    """

    kind: str
    label: str
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ACTOR_KINDS:
            raise ValueError(
                f"unknown actor kind {self.kind!r}; expected one of {ACTOR_KINDS}"
            )
        if not self.label:
            raise ValueError("actor label must be non-empty")

    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)


def actor(kind: str, label: str, **params) -> ActorSpec:
    """Convenience constructor: ``actor("poisson", "bg", intensity=0.5)``."""
    return ActorSpec(kind=kind, label=label, params=tuple(sorted(params.items())))


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """A named composition of background tenants.

    ``intensity`` is the spec's headline interference knob (recorded in
    summaries and BENCH rows); its meaning is per-family — offered cross
    load as a fraction of a node access link, churn pressure, rival count.
    """

    name: str
    description: str = ""
    actors: Tuple[ActorSpec, ...] = ()
    intensity: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("workload name must be non-empty")
        labels = [spec.label for spec in self.actors]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate actor labels in workload {self.name!r}")

    @property
    def actor_count(self) -> int:
        """Background tenants declared (the measured broadcast adds one)."""
        return len(self.actors)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for spec in self.actors:
            counts[spec.kind] = counts.get(spec.kind, 0) + 1
        return counts

    def metadata(self) -> Dict[str, object]:
        """Workload descriptors recorded in summaries and BENCH rows."""
        return {
            "workload": self.name,
            "workload_actors": self.actor_count + 1,
            "workload_kinds": self.counts_by_kind(),
            "interference_intensity": self.intensity,
        }


# ---------------------------------------------------------------------- #
# actor builders (relative spec -> absolute actor)
# ---------------------------------------------------------------------- #
def _build_actor(
    spec: ActorSpec,
    config: SwarmConfig,
    hosts: Sequence[str],
    primary: BroadcastActor,
    rng: np.random.Generator,
) -> WorkloadActor:
    p = spec.param_dict()
    duration = expected_broadcast_duration(config)
    size = float(config.torrent.size)
    hosts = list(hosts)

    if spec.kind == "rival":
        fragments = p.get("fragments")
        rival_config = config
        if fragments is not None:
            rival_config = dataclasses.replace(
                config, torrent=TorrentMeta.scaled(int(fragments), name="rival")
            )
        root = hosts[int(p.get("root_index", -1)) % len(hosts)]
        return BroadcastActor(
            spec.label,
            rival_config,
            hosts=hosts,
            root=root,
            rng=rng,
            start_time=float(p.get("start_frac", 0.0)) * duration,
            blocking=False,
        )
    if spec.kind == "poisson":
        intensity = float(p.get("intensity", 0.5))
        return PoissonTrafficActor(
            spec.label,
            rng,
            offered_load=intensity * NODE_ACCESS_CAPACITY,
            mean_size=float(p.get("mean_size_frac", 0.25)) * size,
            start_time=float(p.get("start_frac", 0.0)) * duration,
        )
    if spec.kind == "onoff":
        intensity = float(p.get("intensity", 0.5))
        on_mean = float(p.get("on_frac", 0.15)) * duration
        return OnOffTrafficActor(
            spec.label,
            rng,
            on_mean=on_mean,
            off_mean=float(p.get("off_frac", 0.15)) * duration,
            # Big enough that a burst is ended by its timer, not its budget.
            burst_size=4.0 * NODE_ACCESS_CAPACITY * on_mean + size,
            rate_cap=intensity * NODE_ACCESS_CAPACITY,
            start_time=float(p.get("start_frac", 0.0)) * duration,
        )
    if spec.kind == "bulk":
        return BulkTransferActor(
            spec.label,
            rng,
            src=hosts[int(p.get("src_index", 0)) % len(hosts)],
            dst=hosts[int(p.get("dst_index", -1)) % len(hosts)],
            size=float(p.get("size_frac", 2.0)) * size,
            repeat=bool(p.get("repeat", True)),
            start_time=float(p.get("start_frac", 0.0)) * duration,
        )
    if spec.kind == "drift":
        return CapacityDriftActor(
            spec.label,
            rng,
            interval_mean=float(p.get("interval_frac", 0.25)) * duration,
            floor=float(p.get("floor", 0.5)),
            ceiling=float(p.get("ceiling", 1.0)),
            start_time=float(p.get("start_frac", 0.0)) * duration,
        )
    if spec.kind == "churn":
        return ChurnActor(
            spec.label,
            rng,
            target=primary,
            interval_mean=float(p.get("interval_frac", 0.25)) * duration,
            downtime_mean=float(p.get("downtime_frac", 0.15)) * duration,
            start_time=float(p.get("start_frac", 0.0)) * duration,
        )
    raise ValueError(f"unknown actor kind {spec.kind!r}")  # pragma: no cover


# ---------------------------------------------------------------------- #
# running one multi-tenant measurement iteration
# ---------------------------------------------------------------------- #
def run_workload_iteration(
    topology: Topology,
    config: SwarmConfig,
    hosts: Optional[Sequence[str]],
    root: Optional[str],
    base_seed: int,
    iteration: int,
    workload: Optional[WorkloadSpec],
    routing: Optional[RoutingTable] = None,
    trace=None,
    faults=None,
):
    """Run one measured broadcast inside its interference workload.

    Returns ``(BroadcastResult, per-actor stats list)``.  The measured
    broadcast's stream label is ``(seed, "broadcast", iteration)`` — the
    same derivation :class:`~repro.tomography.measurement
    .MeasurementCampaign` uses — so the empty workload reproduces the
    single-tenant campaign bit for bit.

    ``faults`` optionally adds a :class:`~repro.faults.spec.FaultPlan`'s
    injectors to the same agenda, each on its own
    ``(seed, "fault", iteration, label)`` stream; the empty plan adds no
    actor and changes nothing.
    """
    engine = WorkloadEngine(topology, routing=routing)
    rng = np.random.default_rng(derive_seed(base_seed, "broadcast", iteration))
    primary = BroadcastActor(
        "primary", config, hosts=hosts, root=root, rng=rng, trace=trace
    )
    engine.add(primary)
    swarm_hosts = primary.broadcast.hosts
    if workload is not None:
        for spec in workload.actors:
            actor_rng = np.random.default_rng(
                derive_seed(base_seed, "workload", iteration, spec.label)
            )
            engine.add(_build_actor(spec, config, swarm_hosts, primary, actor_rng))
    if faults is not None:
        from repro.faults.spec import build_fault_actors

        for injector in build_fault_actors(
            faults, config, swarm_hosts, primary, base_seed, iteration
        ):
            engine.add(injector)
    engine.run()
    return primary.result, engine.stats()


# ---------------------------------------------------------------------- #
# preset workloads
# ---------------------------------------------------------------------- #
def rival_broadcast_workload(rivals: int = 1, stagger: float = 0.3) -> WorkloadSpec:
    """Concurrent-broadcast contention: ``rivals`` unmeasured broadcasts on
    the same hosts, started at staggered fractions of the expected duration
    and rooted at different hosts."""
    if rivals < 1:
        raise ValueError("need at least one rival broadcast")
    return WorkloadSpec(
        name=f"rival-{rivals}",
        description=f"{rivals} concurrent rival broadcast(s), stagger {stagger:g}",
        actors=tuple(
            actor(
                "rival",
                f"rival-{i}",
                start_frac=stagger * i,
                root_index=-(i + 1),
            )
            for i in range(rivals)
        ),
        intensity=float(rivals),
    )


def cross_traffic_workload(
    intensity: float = 0.5, sources: int = 2, bulk: bool = False
) -> WorkloadSpec:
    """Generative cross traffic: Poisson flow arrivals plus bursty on-off
    sources, each offering ``intensity`` × one access link of load."""
    if intensity <= 0:
        raise ValueError("intensity must be positive")
    actors: List[ActorSpec] = [actor("poisson", "poisson-bg", intensity=intensity)]
    for i in range(max(sources - 1, 0)):
        actors.append(
            actor("onoff", f"onoff-{i}", intensity=intensity, start_frac=0.05 * i)
        )
    if bulk:
        actors.append(actor("bulk", "bulk-bg", size_frac=2.0))
    return WorkloadSpec(
        name=f"cross-{intensity:g}",
        description=f"Poisson + on-off cross traffic at intensity {intensity:g}",
        actors=tuple(actors),
        intensity=float(intensity),
    )


def churn_workload(churn_rate: float = 1.0, downtime_frac: float = 0.15) -> WorkloadSpec:
    """Peer churn: mean leave interval is ``0.25 / churn_rate`` of the
    expected broadcast duration (higher rate → more departures)."""
    if churn_rate <= 0:
        raise ValueError("churn_rate must be positive")
    return WorkloadSpec(
        name=f"churn-{churn_rate:g}",
        description=f"leave/rejoin churn at rate {churn_rate:g}",
        actors=(
            actor(
                "churn",
                "churn",
                interval_frac=0.25 / churn_rate,
                downtime_frac=downtime_frac,
            ),
        ),
        intensity=float(churn_rate),
    )


def capacity_drift_workload(
    interval_frac: float = 0.2, floor: float = 0.5
) -> WorkloadSpec:
    """Link-capacity drift on the shared (switch-to-switch) links."""
    return WorkloadSpec(
        name="drift",
        description=f"capacity drift to [{floor:g}, 1.0] x nominal",
        actors=(actor("drift", "drift", interval_frac=interval_frac, floor=floor),),
        intensity=1.0 - float(floor),
    )


def mixed_workload(intensity: float = 0.5) -> WorkloadSpec:
    """Everything at once: a rival broadcast, cross traffic, drift and churn."""
    return WorkloadSpec(
        name=f"mixed-{intensity:g}",
        description="rival broadcast + cross traffic + drift + churn",
        actors=(
            actor("rival", "rival-0", start_frac=0.25, root_index=-1),
            actor("poisson", "poisson-bg", intensity=intensity),
            actor("onoff", "onoff-0", intensity=intensity),
            actor("drift", "drift", interval_frac=0.25, floor=0.6),
            actor("churn", "churn", interval_frac=0.35, downtime_frac=0.1),
        ),
        intensity=float(intensity),
    )


#: The empty workload: the measured broadcast alone on an idle network.
NONE = WorkloadSpec(name="none", description="single tenant, idle network")

#: Named presets reachable from the CLI (``repro run <scenario> --workload X``).
WORKLOAD_PRESETS: Dict[str, WorkloadSpec] = {
    "none": NONE,
    "rival": rival_broadcast_workload(rivals=1),
    "rival-2": rival_broadcast_workload(rivals=2),
    "cross-light": cross_traffic_workload(intensity=0.25, sources=1),
    "cross-heavy": cross_traffic_workload(intensity=1.0, sources=3, bulk=True),
    "churn": churn_workload(churn_rate=1.0),
    "drift": capacity_drift_workload(),
    "mixed": mixed_workload(intensity=0.5),
}

#: Preset names in CLI display order.
WORKLOAD_NAMES = tuple(sorted(WORKLOAD_PRESETS))


def workload_from_name(name) -> WorkloadSpec:
    """Resolve a preset name (or pass a spec through unchanged)."""
    if isinstance(name, WorkloadSpec):
        return name
    key = (name or "none").strip().lower()
    try:
        return WORKLOAD_PRESETS[key]
    except KeyError as exc:
        raise ValueError(
            f"unknown workload {name!r}; available: {', '.join(WORKLOAD_NAMES)}"
        ) from exc
