"""Classical saturation-tomography baselines (Fig. 2 of the paper).

The paper contrasts its broadcast metric with the traditional measurement
procedure: saturate node pairs with bulk transfers, then add more concurrent
pairs and watch for bandwidth drops that reveal shared bottleneck links.
Two baselines are provided, mirroring the two pieces of related work the
paper discusses:

* :class:`PairwiseSaturationTomography` — measures every unordered host pair
  under concurrent background load, O(N²) probes ([13], the ALNeM-style
  approach, which the paper reports takes about an hour for 20 nodes);
* :class:`TripletSaturationTomography` — additionally runs an interference
  test per node triplet, O(N³) probes ([12]).

Both account the *simulated wall-clock cost* of their measurement phase so
that the efficiency comparison in the paper's Section II-B can be
regenerated, and both feed their measured bandwidth graph to the same
Louvain clustering used by the BitTorrent method so quality is comparable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.clustering.louvain import louvain
from repro.clustering.partition import Partition
from repro.graph.wgraph import WeightedGraph
from repro.network.routing import RoutingTable
from repro.network.topology import Topology
from repro.network.transfer import PointToPointNetwork
from repro.simulation.rng import RandomStreams


@dataclass
class BaselineResult:
    """Result of a saturation-tomography baseline run.

    Attributes
    ----------
    partition:
        Logical clusters recovered from the measured bandwidth graph.
    bandwidth_graph:
        Graph whose edge weights are the measured under-load bandwidths.
    probes:
        Number of saturation probes issued.
    measurement_time:
        Simulated wall-clock seconds spent measuring (the efficiency metric).
    interference:
        Pairs of host pairs found to interfere (triplet baseline only).
    """

    partition: Partition
    bandwidth_graph: WeightedGraph
    probes: int
    measurement_time: float
    interference: List[Tuple[Tuple[str, str], Tuple[str, str]]]


class _SaturationBase:
    """Shared plumbing: probe accounting and clustering of bandwidth graphs."""

    def __init__(
        self,
        topology: Topology,
        hosts: Optional[Sequence[str]] = None,
        probe_size: float = 64e6,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.hosts = list(hosts) if hosts is not None else topology.host_names
        if len(self.hosts) < 2:
            raise ValueError("baseline tomography needs at least two hosts")
        if probe_size <= 0:
            raise ValueError("probe_size must be positive")
        self.probe_size = float(probe_size)
        self.routing = RoutingTable(topology)
        self.network = PointToPointNetwork(topology, self.routing)
        self.streams = RandomStreams(seed)

    def _cluster(self, graph: WeightedGraph) -> Partition:
        if graph.total_weight() <= 0:
            return Partition.whole(self.hosts)
        return louvain(graph).partition

    def pair_count(self) -> int:
        n = len(self.hosts)
        return n * (n - 1) // 2

    def all_pairs(self) -> List[Tuple[str, str]]:
        return list(itertools.combinations(self.hosts, 2))


class PairwiseSaturationTomography(_SaturationBase):
    """O(N²) baseline: measure every pair while background pairs are active.

    Each unordered pair is probed with a bulk transfer while
    ``concurrent_load`` disjoint random pairs transfer simultaneously.  The
    under-load bandwidth exposes shared bottlenecks (pairs crossing one get a
    reduced share), which an isolated probe cannot see — that is exactly why
    the traditional procedure needs the concurrent step and why it is so
    expensive.
    """

    def __init__(
        self,
        topology: Topology,
        hosts: Optional[Sequence[str]] = None,
        probe_size: float = 64e6,
        concurrent_load: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__(topology, hosts=hosts, probe_size=probe_size, seed=seed)
        if concurrent_load < 0:
            raise ValueError("concurrent_load must be non-negative")
        self.concurrent_load = concurrent_load

    def _background_pairs(
        self, exclude: Tuple[str, str], rng: np.random.Generator
    ) -> List[Tuple[str, str]]:
        """Random disjoint host pairs providing load during a probe."""
        available = [h for h in self.hosts if h not in exclude]
        rng.shuffle(available)
        background = []
        for i in range(0, len(available) - 1, 2):
            if len(background) >= self.concurrent_load:
                break
            background.append((available[i], available[i + 1]))
        return background

    def run(self) -> BaselineResult:
        """Run the full O(N²) measurement and cluster the result."""
        graph = WeightedGraph()
        for host in self.hosts:
            graph.add_node(host)
        rng = self.streams.stream("pairwise")
        start_time = self.network.total_busy_time
        probes = 0
        for idx, (a, b) in enumerate(self.all_pairs()):
            background = self._background_pairs((a, b), rng)
            requests = [(a, b, self.probe_size)] + [
                (u, v, self.probe_size) for u, v in background
            ]
            results = self.network.run_concurrent(requests)
            probes += 1
            graph.add_edge(a, b, results[0].bandwidth)
        measurement_time = self.network.total_busy_time - start_time
        return BaselineResult(
            partition=self._cluster(graph),
            bandwidth_graph=graph,
            probes=probes,
            measurement_time=measurement_time,
            interference=[],
        )

    def estimated_probe_count(self, n: Optional[int] = None) -> int:
        """Number of probes the method needs for ``n`` hosts (O(N²) scaling)."""
        n = n if n is not None else len(self.hosts)
        return n * (n - 1) // 2


class TripletSaturationTomography(_SaturationBase):
    """O(N³) baseline: per-triplet interference tests ([12]).

    For every triplet ``(a, b, c)`` the method saturates ``a→b`` alone and then
    ``a→b`` together with ``a→c``; a significant drop in the ``a→b`` bandwidth
    indicates the two connections share a link.  The measured under-load
    bandwidths form the graph that is clustered; the detected interferences are
    also reported.
    """

    def __init__(
        self,
        topology: Topology,
        hosts: Optional[Sequence[str]] = None,
        probe_size: float = 64e6,
        interference_threshold: float = 0.85,
        max_triplets: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(topology, hosts=hosts, probe_size=probe_size, seed=seed)
        if not 0.0 < interference_threshold <= 1.0:
            raise ValueError("interference_threshold must be in (0, 1]")
        self.interference_threshold = interference_threshold
        self.max_triplets = max_triplets

    def all_triplets(self) -> List[Tuple[str, str, str]]:
        triplets = list(itertools.combinations(self.hosts, 3))
        if self.max_triplets is not None:
            triplets = triplets[: self.max_triplets]
        return triplets

    def run(self) -> BaselineResult:
        """Run the triplet interference procedure and cluster the result."""
        # Track, per pair, the lowest bandwidth observed under interference.
        best_estimate: Dict[Tuple[str, str], float] = {}
        interference: List[Tuple[Tuple[str, str], Tuple[str, str]]] = []
        start_time = self.network.total_busy_time
        probes = 0

        def key(u: str, v: str) -> Tuple[str, str]:
            return (u, v) if u <= v else (v, u)

        for a, b, c in self.all_triplets():
            isolated = self.network.measure_pair(a, b, self.probe_size)
            probes += 1
            concurrent = self.network.run_concurrent(
                [(a, b, self.probe_size), (a, c, self.probe_size)]
            )
            probes += 1
            loaded_ab = concurrent[0].bandwidth
            loaded_ac = concurrent[1].bandwidth
            if loaded_ab < isolated.bandwidth * self.interference_threshold:
                interference.append((key(a, b), key(a, c)))
            for pair, bandwidth in ((key(a, b), loaded_ab), (key(a, c), loaded_ac)):
                previous = best_estimate.get(pair)
                best_estimate[pair] = bandwidth if previous is None else min(previous, bandwidth)

        measurement_time = self.network.total_busy_time - start_time
        graph = WeightedGraph()
        for host in self.hosts:
            graph.add_node(host)
        for (u, v), bandwidth in best_estimate.items():
            graph.add_edge(u, v, bandwidth)
        return BaselineResult(
            partition=self._cluster(graph),
            bandwidth_graph=graph,
            probes=probes,
            measurement_time=measurement_time,
            interference=interference,
        )

    def estimated_probe_count(self, n: Optional[int] = None) -> int:
        """Number of probes for ``n`` hosts (two per triplet, O(N³) scaling)."""
        n = n if n is not None else len(self.hosts)
        return 2 * (n * (n - 1) * (n - 2)) // 6
