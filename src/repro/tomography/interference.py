"""Interference-robustness measurement: tomography under shared-cluster load.

The paper's campaigns measure in an idle network; this module asks the
question its premise raises — does the fragment metric still recover the
planted bandwidth structure when the measured broadcasts compete with other
tenants?  :func:`run_interference_study` runs a full measure → aggregate →
cluster → evaluate campaign with every broadcast embedded in a
:class:`~repro.workloads.WorkloadSpec` (rival broadcasts, Poisson/on-off
cross traffic, peer churn, link-capacity drift) and reports the recovered
clustering together with the interference that was actually injected.

Each scenario family documents a *noise threshold*: the overlapping-NMI
floor the recovery is expected to stay above at the family's default
interference intensity (see ``docs/workloads.md`` for the measured curves).
The summary carries both the threshold and the measurement, so sweeps can
chart exactly where recovery degrades.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.datasets import Dataset
from repro.tomography.pipeline import TomographyPipeline, default_swarm_config
from repro.workloads import WorkloadSpec, workload_from_name


def summarize_workload_stats(stats_per_iteration: List[List[Dict]]) -> Dict[str, object]:
    """Aggregate per-iteration actor stats into campaign-level totals.

    Fault-injector rows (``fault: True``, see :mod:`repro.faults.actors`)
    aggregate alongside the workload rows so a summary shows both the
    interference *and* the failures the measurement survived.
    """
    totals = {
        "background_flows": 0,
        "background_bytes_offered": 0.0,
        "background_bytes_delivered": 0.0,
        "churn_leaves": 0,
        "churn_rejoins": 0,
        "capacity_changes": 0,
        "rival_broadcasts": 0,
        "link_failures": 0,
        "link_repairs": 0,
        "link_downtime_s": 0.0,
        "route_flaps": 0,
        "tracker_outages": 0,
        "tenant_arrivals": 0,
        "tenant_departures": 0,
        "announce_retries": 0,
        "announce_failures": 0,
    }
    for iteration in stats_per_iteration:
        for row in iteration:
            kind = row.get("kind")
            if kind in ("poisson", "onoff", "bulk"):
                totals["background_flows"] += int(row.get("flows_started", 0))
                totals["background_bytes_offered"] += float(row.get("bytes_offered", 0.0))
                totals["background_bytes_delivered"] += float(
                    row.get("bytes_delivered", 0.0)
                )
            elif kind == "churn":
                totals["churn_leaves"] += int(row.get("leaves", 0))
                totals["churn_rejoins"] += int(row.get("rejoins", 0))
                totals["announce_retries"] += int(row.get("announce_retries", 0))
                totals["announce_failures"] += int(row.get("announce_failures", 0))
            elif kind == "drift":
                totals["capacity_changes"] += int(row.get("changes", 0))
            elif kind == "broadcast" and row.get("actor") != "primary":
                totals["rival_broadcasts"] += 1
            elif kind == "link-failure":
                totals["link_failures"] += int(row.get("failures", 0))
                totals["link_repairs"] += int(row.get("repairs", 0))
                totals["link_downtime_s"] += float(row.get("downtime", 0.0))
            elif kind == "route-flap":
                totals["route_flaps"] += int(row.get("flaps", 0))
            elif kind == "tracker-outage":
                totals["tracker_outages"] += int(row.get("outages", 0))
            elif kind == "tenant-cycle":
                totals["tenant_arrivals"] += int(row.get("arrivals", 0))
                totals["tenant_departures"] += int(row.get("departures", 0))
                totals["announce_retries"] += int(row.get("announce_retries", 0))
                totals["announce_failures"] += int(row.get("announce_failures", 0))
    return totals


def run_interference_study(
    ds: Dataset,
    workload: WorkloadSpec,
    iterations: int = 6,
    num_fragments: int = 300,
    seed: int = 2012,
    noise_threshold: float = 0.8,
    stepping: Optional[str] = None,
    track_convergence: bool = False,
    executor=None,
    faults=None,
    quorum: Optional[int] = None,
) -> Dict[str, object]:
    """Measure a dataset under a workload and evaluate the recovery.

    Returns the standard campaign summary extended with the workload
    metadata, the injected-interference totals, and the
    ``noise_threshold`` / ``recovered`` verdict.  ``faults`` additionally
    injects a :class:`~repro.faults.FaultPlan`'s failures (its metadata and
    fault totals join the summary), and ``quorum`` lets the campaign
    degrade gracefully instead of aborting on a failed iteration.
    """
    workload = workload_from_name(workload)
    config = default_swarm_config(num_fragments, stepping=stepping)
    pipeline = TomographyPipeline(
        ds.topology,
        hosts=ds.hosts,
        ground_truth=ds.ground_truth,
        config=config,
        seed=seed,
        workload=workload,
        executor=executor,
        faults=faults,
    )
    result = pipeline.run(
        iterations, track_convergence=track_convergence, quorum=quorum
    )
    summary: Dict[str, object] = {
        "dataset": ds.name,
        "hosts": ds.num_hosts,
        "iterations": iterations,
        "achieved_iterations": result.achieved_iterations,
        "degraded": result.degraded,
        "found_clusters": result.num_clusters,
        "expected_clusters": ds.expectation.expected_clusters,
        "measured_nmi": result.nmi,
        "measured_classical_nmi": result.classical_nmi,
        "modularity": result.modularity,
        "measurement_time_s": result.measurement_time,
        "nmi_per_iteration": result.nmi_per_iteration,
        "stepping": config.stepping,
        "control_steps": result.record.total_control_steps(),
        "executor": getattr(executor, "name", None) or "serial",
        "noise_threshold": noise_threshold,
        "recovered": result.nmi is not None and result.nmi >= noise_threshold,
        "result": result,
        "ground_truth": ds.ground_truth,
    }
    summary.update(workload.metadata())
    if pipeline.campaign.faults is not None:
        summary.update(pipeline.campaign.faults.metadata())
    summary.update(summarize_workload_stats(result.record.workload_stats))
    return summary
