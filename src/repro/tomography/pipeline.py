"""End-to-end tomography pipeline: measure → aggregate → cluster → evaluate.

This is the user-facing entry point of the library.  Given a topology, a set
of participating hosts and (optionally) a ground-truth partition, the
pipeline runs the measurement campaign of repeated BitTorrent broadcasts,
aggregates the fragment metric, clusters the resulting weighted graph with
the Louvain method, and reports the recovered logical clusters together with
their agreement with the ground truth (overlapping NMI, as in Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.bittorrent.swarm import SwarmConfig
from repro.bittorrent.torrent import TorrentMeta
from repro.clustering.louvain import louvain
from repro.clustering.modularity import modularity
from repro.clustering.nmi import normalized_mutual_information, overlapping_nmi
from repro.clustering.partition import Partition
from repro.graph.wgraph import WeightedGraph
from repro.network.topology import Topology
from repro.observability.metrics import METRICS
from repro.observability.tracer import TRACER
from repro.tomography.measurement import MeasurementCampaign, MeasurementRecord
from repro.tomography.metric import EdgeMetric, metric_graph

#: Default fragment count for simulated campaigns: small enough to run dozens
#: of iterations quickly, large enough that per-edge counts are informative.
DEFAULT_SIMULATED_FRAGMENTS = 1200


@dataclass
class TomographyResult:
    """Outcome of a full tomography run.

    Attributes
    ----------
    metric:
        Aggregated edge metric over all iterations.
    graph:
        Weighted graph built from the metric.
    partition:
        Logical clusters recovered by modularity clustering.
    modularity:
        Modularity value of the recovered partition.
    nmi:
        Overlapping NMI against the ground truth (None when no ground truth).
    classical_nmi:
        Classical partition NMI against the ground truth (None likewise).
    record:
        Full measurement record (per-iteration matrices, durations).
    nmi_per_iteration:
        Overlapping NMI of the clustering computed from the first k iterations,
        for k = 1..n (the Fig. 13 convergence curve); empty when no ground
        truth was supplied or convergence tracking was disabled.
    """

    metric: EdgeMetric
    graph: WeightedGraph
    partition: Partition
    modularity: float
    record: MeasurementRecord
    nmi: Optional[float] = None
    classical_nmi: Optional[float] = None
    nmi_per_iteration: List[float] = field(default_factory=list)

    @property
    def num_clusters(self) -> int:
        return self.partition.num_clusters

    @property
    def measurement_time(self) -> float:
        """Total simulated measurement time (sum of broadcast durations)."""
        return self.record.total_measurement_time()

    @property
    def degraded(self) -> bool:
        """True when the record proceeded on a quorum (iterations failed)."""
        return self.record.degraded

    @property
    def achieved_iterations(self) -> int:
        """Iterations that actually contributed measurements."""
        return self.record.iterations


def default_swarm_config(
    num_fragments: int = DEFAULT_SIMULATED_FRAGMENTS,
    stepping: Optional[str] = None,
    **overrides,
) -> SwarmConfig:
    """A sensible default swarm configuration for simulated campaigns.

    The paper's broadcast of a 239 MB file takes ≈20 s against a 10 s rechoke
    timer, i.e. a broadcast spans a couple of choking rounds and many
    scheduling quanta.  Scaled-down files finish proportionally faster, so the
    control step and rechoke interval are scaled with the expected broadcast
    duration to preserve those ratios (otherwise a whole broadcast would fit
    in a handful of control steps and the concurrent-flow contention that the
    metric measures would never build up).

    ``stepping`` selects the control-loop policy (``"fixed"``/``"event"``,
    see docs/simulation.md); ``None`` defers to the ``REPRO_STEPPING``
    environment variable and ultimately the event-stepped default.  Both
    policies produce bit-for-bit identical measurements.
    """
    from repro.bittorrent.swarm import default_stepping
    from repro.network.grid5000 import NODE_ACCESS_CAPACITY

    torrent = TorrentMeta.scaled(num_fragments)
    if "control_dt" not in overrides or "rechoke_interval" not in overrides:
        single_flow_time = torrent.size / NODE_ACCESS_CAPACITY
        expected_duration = 4.0 * single_flow_time
        overrides.setdefault("control_dt", max(expected_duration / 80.0, 1e-4))
        overrides.setdefault(
            "rechoke_interval", max(expected_duration / 4.0, overrides["control_dt"])
        )
    overrides["stepping"] = stepping if stepping is not None else default_stepping()
    return SwarmConfig(torrent=torrent, **overrides)


class TomographyPipeline:
    """The two-phase tomography method of the paper.

    Parameters
    ----------
    topology:
        Network substrate to measure.
    hosts:
        Participating hosts (defaults to every host of the topology).
    ground_truth:
        Optional reference partition used for NMI evaluation.
    config:
        Swarm configuration; defaults to :func:`default_swarm_config`.
    seed:
        Base seed of the measurement random streams.
    clusterer:
        Function mapping a weighted graph to a :class:`Partition`; defaults to
        the Louvain method.  Swappable so that the Infomap ablation reuses the
        same pipeline.
    executor:
        Optional campaign executor (see :mod:`repro.scenarios.executors`)
        the measurement iterations fan out through; ``None`` keeps the
        serial in-process loop.  Records are bit-for-bit identical across
        backends.
    workload:
        Optional :class:`~repro.workloads.WorkloadSpec`: the measurement
        phase then runs every broadcast inside that multi-tenant workload
        (concurrent broadcasts, cross traffic, churn, capacity drift on a
        shared clock) — the interference-robustness setting of
        ``docs/workloads.md``.
    faults:
        Optional :class:`~repro.faults.FaultPlan` (or preset name): the
        measurement phase then injects the plan's deterministic failures —
        link outages, route flaps, tracker outages, tenant cycling — into
        every iteration (see ``docs/faults.md``).
    checkpoint:
        Optional directory for per-iteration measurement checkpoints (see
        :class:`~repro.tomography.measurement.MeasurementCampaign`).
    """

    def __init__(
        self,
        topology: Topology,
        hosts: Optional[Sequence[str]] = None,
        ground_truth: Optional[Partition] = None,
        config: Optional[SwarmConfig] = None,
        seed: int = 0,
        rotate_root: bool = False,
        clusterer: Optional[Callable[[WeightedGraph], Partition]] = None,
        executor=None,
        workload=None,
        faults=None,
        checkpoint=None,
    ) -> None:
        self.topology = topology
        self.hosts = list(hosts) if hosts is not None else topology.host_names
        if ground_truth is not None:
            missing = set(self.hosts) - ground_truth.nodes()
            if missing:
                raise ValueError(
                    f"ground truth does not cover hosts: {sorted(missing)[:3]}"
                )
            ground_truth = ground_truth.restrict(self.hosts)
        self.ground_truth = ground_truth
        self.config = config or default_swarm_config()
        self.seed = seed
        self.campaign = MeasurementCampaign(
            topology,
            self.config,
            hosts=self.hosts,
            seed=seed,
            rotate_root=rotate_root,
            executor=executor,
            workload=workload,
            faults=faults,
            checkpoint=checkpoint,
        )
        self._clusterer = clusterer or (lambda graph: louvain(graph).partition)

    # ------------------------------------------------------------------ #
    def cluster_metric(self, metric: EdgeMetric) -> Partition:
        """Phase 2 alone: cluster an aggregated metric into logical clusters."""
        graph = metric_graph(metric)
        if graph.total_weight() <= 0:
            # Degenerate measurement (no fragments exchanged): a single cluster.
            return Partition.whole(metric.labels)
        return self._clusterer(graph)

    def evaluate(self, partition: Partition) -> Dict[str, float]:
        """NMI scores of a partition against the configured ground truth."""
        if self.ground_truth is None:
            raise ValueError("no ground truth configured")
        return {
            "overlapping_nmi": overlapping_nmi(partition, self.ground_truth),
            "classical_nmi": normalized_mutual_information(partition, self.ground_truth),
        }

    # ------------------------------------------------------------------ #
    def run(
        self,
        iterations: int,
        track_convergence: bool = True,
        resume: bool = True,
        quorum: Optional[int] = None,
    ) -> TomographyResult:
        """Run the full two-phase method with ``iterations`` broadcasts.

        ``resume``/``quorum`` pass through to :meth:`MeasurementCampaign
        .run`: with a quorum, the analysis proceeds on the surviving ≥k of
        n iterations and the result reports itself :attr:`TomographyResult
        .degraded` instead of raising.
        """
        with METRICS.timer("pipeline.measure_s"), TRACER.span(
            "pipeline.measure", iterations=iterations
        ):
            record = self.campaign.run(iterations, resume=resume, quorum=quorum)
        return self.analyze(record, track_convergence=track_convergence)

    def analyze(
        self, record: MeasurementRecord, track_convergence: bool = True
    ) -> TomographyResult:
        """Phase 2 applied to an existing measurement record."""
        analyze_started = TRACER.now() if TRACER.enabled else 0.0
        with METRICS.timer("pipeline.analyze_s"):
            metric = record.aggregate()
            graph = metric_graph(metric)
            partition = self.cluster_metric(metric)
            q = modularity(graph, partition) if graph.total_weight() > 0 else 0.0

            nmi = classical = None
            convergence: List[float] = []
            if self.ground_truth is not None:
                scores = self.evaluate(partition)
                nmi = scores["overlapping_nmi"]
                classical = scores["classical_nmi"]
                if track_convergence:
                    # Incremental prefix aggregates: one matrix pass per prefix
                    # instead of re-averaging every prefix from scratch.
                    tracing = TRACER.enabled
                    for k, partial_metric in enumerate(
                        record.cumulative_aggregates(), start=1
                    ):
                        partial = self.cluster_metric(partial_metric)
                        value = overlapping_nmi(partial, self.ground_truth)
                        convergence.append(value)
                        if tracing:
                            TRACER.event(
                                "pipeline.nmi", iterations=k, nmi=value
                            )

        METRICS.count("pipeline.runs")
        METRICS.count("pipeline.iterations", record.iterations)
        if nmi is not None:
            METRICS.gauge("pipeline.nmi", nmi)
        if TRACER.enabled:
            TRACER.span_record(
                "pipeline.analyze",
                analyze_started,
                iterations=record.iterations,
                clusters=partition.num_clusters,
                modularity=q,
                nmi=nmi,
            )
        return TomographyResult(
            metric=metric,
            graph=graph,
            partition=partition,
            modularity=q,
            record=record,
            nmi=nmi,
            classical_nmi=classical,
            nmi_per_iteration=convergence,
        )
