"""Measurement campaigns: repeated synchronized BitTorrent broadcasts.

A campaign runs ``n`` instrumented broadcasts on the same host set (optionally
rotating the seeding root, which the paper suggests as a remedy for the
asymmetry of broadcast traffic), collects the per-iteration
:class:`FragmentMatrix` measurements, and exposes cumulative aggregates so
that convergence with the number of iterations (Fig. 13) can be studied.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.scenarios.executors import CampaignExecutor

from repro.bittorrent.instrumentation import FragmentMatrix
from repro.bittorrent.swarm import BitTorrentBroadcast, BroadcastResult, SwarmConfig
from repro.network.routing import RoutingTable
from repro.network.topology import Topology
from repro.observability.metrics import METRICS
from repro.observability.tracer import TRACER
from repro.simulation.rng import RandomStreams, derive_seed
from repro.tomography.metric import EdgeMetric, aggregate_mean

#: On-disk checkpoint layout version (bump on incompatible change).
CHECKPOINT_VERSION = 1


@dataclass
class MeasurementRecord:
    """Everything collected during one measurement campaign.

    Attributes
    ----------
    hosts:
        Host order shared by all matrices.
    results:
        Per-iteration broadcast results (fragment matrices, durations, roots).
    """

    hosts: List[str]
    results: List[BroadcastResult] = field(default_factory=list)
    #: Per-iteration actor stats when the campaign ran inside a workload
    #: (one list of per-actor dicts per iteration); empty for single-tenant
    #: campaigns.
    workload_stats: List[List[Dict[str, object]]] = field(default_factory=list)
    #: True when the campaign proceeded on a quorum: some planned
    #: iterations failed and the matrices aggregate fewer samples.
    degraded: bool = False
    #: Zero-based indices of planned iterations that failed (quorum runs).
    failed_iterations: List[int] = field(default_factory=list)
    #: Iterations the campaign was asked for (``None`` → same as achieved).
    planned_iterations: Optional[int] = None

    @property
    def iterations(self) -> int:
        return len(self.results)

    @property
    def matrices(self) -> List[FragmentMatrix]:
        return [r.fragments for r in self.results]

    @property
    def durations(self) -> List[float]:
        return [r.duration for r in self.results]

    @property
    def control_steps(self) -> List[int]:
        """Per-iteration count of control points the swarm loop executed."""
        return [r.control_steps for r in self.results]

    def total_measurement_time(self) -> float:
        """Simulated wall-clock cost of the whole campaign (sum of broadcasts)."""
        return float(sum(self.durations))

    def total_control_steps(self) -> int:
        """Control points executed across the campaign (the event mode's
        figure of merit; see docs/simulation.md)."""
        return int(sum(self.control_steps))

    def aggregate(self, iterations: Optional[int] = None) -> EdgeMetric:
        """Metric aggregated over the first ``iterations`` runs (all by default)."""
        if not self.results:
            raise ValueError("campaign has no measurements yet")
        count = self.iterations if iterations is None else iterations
        if not 1 <= count <= self.iterations:
            raise ValueError(
                f"iterations must be in [1, {self.iterations}], got {count}"
            )
        return aggregate_mean(self.matrices[:count])

    def cumulative_aggregates(self) -> List[EdgeMetric]:
        """Aggregates after 1, 2, ..., n iterations (the Fig. 13 x-axis).

        Maintained incrementally: one running sum over the symmetrised
        matrices, divided by the prefix length — O(n) matrix passes instead
        of the O(n²) of re-averaging every prefix.  Fragment counts are
        integer-valued, so the running sum is exact and each prefix mean is
        identical to what :meth:`aggregate` computes.
        """
        if not self.results:
            raise ValueError("campaign has no measurements yet")
        matrices = self.matrices
        labels = matrices[0].labels
        for m in matrices[1:]:
            if m.labels != labels:
                raise ValueError("all measurements must share the same host order")
        running = np.zeros((len(labels), len(labels)), dtype=float)
        aggregates: List[EdgeMetric] = []
        for k, matrix in enumerate(matrices, start=1):
            running += matrix.symmetric_weights()
            mean = running / k
            np.fill_diagonal(mean, 0.0)
            aggregates.append(
                EdgeMetric(labels=tuple(labels), weights=mean, iterations=k)
            )
        return aggregates


class MeasurementCampaign:
    """Runs the measurement phase of the tomography method.

    Parameters
    ----------
    topology:
        Network substrate.
    hosts:
        Participating hosts (defaults to all hosts of the topology).
    config:
        Swarm configuration (torrent size, protocol knobs).
    seed:
        Base random seed; iteration ``i`` uses an independent derived stream,
        so that single-run statistics (Fig. 5) are meaningful.
    rotate_root:
        When True, iteration ``i`` is seeded by host ``i mod len(hosts)``;
        otherwise the first host always seeds (the paper's default setup).
    executor:
        Optional :class:`~repro.scenarios.executors.CampaignExecutor` the
        independent iterations are fanned out through.  ``None`` runs the
        classic in-process loop.  Because every iteration's random stream is
        derived statelessly from ``(seed, "broadcast", i)`` and results are
        reassembled in iteration order, any backend produces a record
        bit-for-bit identical to the serial one.
    workload:
        Optional :class:`~repro.workloads.WorkloadSpec`: every measured
        broadcast then runs inside a multi-tenant
        :class:`~repro.workloads.WorkloadEngine` with the spec's background
        actors (rival broadcasts, cross traffic, churn, capacity drift)
        sharing the clock and the fluid network.  The measured broadcast
        keeps the standard ``(seed, "broadcast", i)`` stream, so the empty
        workload reproduces the single-tenant campaign bit for bit.
    faults:
        Optional :class:`~repro.faults.FaultPlan` (or preset name): each
        iteration then also carries the plan's fault injectors — link
        failures, route flaps, tracker outages, tenant cycling — on the
        shared agenda, seeded from ``(seed, "fault", i, label)`` streams.
        The empty plan is dropped and changes nothing.
    checkpoint:
        Optional directory for per-iteration checkpoints.  After every
        completed iteration its result (and workload stats) is pickled to
        ``iter_{i:05d}.pkl`` via an atomic rename; :meth:`run` with
        ``resume=True`` (the default) skips iterations already on disk, so
        a campaign killed mid-run resumes where it stopped and produces a
        record byte-identical to an uninterrupted one.
    """

    def __init__(
        self,
        topology: Topology,
        config: SwarmConfig,
        hosts: Optional[Sequence[str]] = None,
        seed: int = 0,
        rotate_root: bool = False,
        executor: Optional["CampaignExecutor"] = None,
        workload=None,
        faults=None,
        checkpoint=None,
    ) -> None:
        self.topology = topology
        self.config = config
        self.hosts = list(hosts) if hosts is not None else topology.host_names
        self.streams = RandomStreams(seed)
        self.rotate_root = rotate_root
        self.executor = executor
        if workload is not None:
            from repro.workloads import workload_from_name

            workload = workload_from_name(workload)
            if not workload.actors:
                # The empty workload is the classic single-tenant campaign.
                workload = None
        self.workload = workload
        if faults is not None:
            from repro.faults import fault_plan_from_name

            faults = fault_plan_from_name(faults)
            if not faults.faults:
                # The empty plan is the fault-free campaign.
                faults = None
        self.faults = faults
        self.checkpoint = Path(checkpoint) if checkpoint is not None else None
        self.routing = RoutingTable(topology)
        self._broadcast = BitTorrentBroadcast(
            topology, config, hosts=self.hosts, routing=self.routing
        )

    def root_of(self, iteration: int) -> str:
        """Seeding host of broadcast number ``iteration`` (zero-based)."""
        if self.rotate_root:
            return self.hosts[iteration % len(self.hosts)]
        return self.hosts[0]

    def run_iteration(self, iteration: int, root: Optional[str] = None) -> BroadcastResult:
        """Run broadcast number ``iteration`` (zero-based) and return its result.

        The generator is freshly derived from ``(seed, "broadcast",
        iteration)`` on every call — never reused across calls — so
        replaying an iteration (or re-running the campaign) is idempotent
        and matches what executor workers derive for the same iteration.
        """
        if root is None:
            root = self.root_of(iteration)
        rng = np.random.default_rng(
            derive_seed(self.streams.seed, "broadcast", iteration)
        )
        return self._broadcast.run(root=root, rng=rng)

    @property
    def _multi_tenant(self) -> bool:
        return self.workload is not None or self.faults is not None

    def _run_one(self, iteration: int) -> Tuple[BroadcastResult, Optional[list]]:
        """One iteration in-process: ``(result, actor stats or None)``."""
        if self._multi_tenant:
            from repro.workloads import run_workload_iteration

            return run_workload_iteration(
                self.topology,
                self.config,
                self.hosts,
                self.root_of(iteration),
                self.streams.seed,
                iteration,
                self.workload,
                routing=self.routing,
                faults=self.faults,
            )
        return self.run_iteration(iteration), None

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def _checkpoint_path(self, iteration: int) -> Path:
        return self.checkpoint / f"iter_{iteration:05d}.pkl"

    def _save_checkpoint(
        self, iteration: int, result: BroadcastResult, stats: Optional[list]
    ) -> None:
        """Atomically persist one finished iteration (tmp + rename), so a
        kill mid-write never leaves a truncated checkpoint behind."""
        self.checkpoint.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CHECKPOINT_VERSION,
            "seed": self.streams.seed,
            "iteration": iteration,
            "root": self.root_of(iteration),
            "result": result,
            "stats": stats,
        }
        path = self._checkpoint_path(iteration)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(payload, handle)
        os.replace(tmp, path)
        METRICS.count("campaign.checkpoint_writes")
        if TRACER.enabled:
            TRACER.event("checkpoint.write", iteration=iteration)

    def _load_checkpoint(
        self, iteration: int
    ) -> Optional[Tuple[BroadcastResult, Optional[list]]]:
        """A completed iteration from disk, or ``None`` to (re-)run it.

        Unreadable or version-skewed checkpoints are treated as missing;
        a *seed* mismatch raises, because silently mixing measurements
        from two different campaigns would corrupt the record.
        """
        path = self._checkpoint_path(iteration)
        if not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except Exception:
            return None
        if payload.get("version") != CHECKPOINT_VERSION:
            return None
        if payload.get("seed") != self.streams.seed:
            raise ValueError(
                f"checkpoint {path} belongs to seed {payload.get('seed')}, "
                f"not this campaign's seed {self.streams.seed}"
            )
        if payload.get("iteration") != iteration:
            return None
        METRICS.count("campaign.checkpoint_resumes")
        if TRACER.enabled:
            TRACER.event("checkpoint.resume", iteration=iteration)
        return payload["result"], payload.get("stats")

    # ------------------------------------------------------------------ #
    def run(
        self,
        iterations: int,
        resume: bool = True,
        quorum: Optional[int] = None,
    ) -> MeasurementRecord:
        """Run ``iterations`` synchronized broadcasts and collect the record.

        ``resume`` (with a ``checkpoint`` directory) skips iterations whose
        results are already on disk.  ``quorum`` enables graceful
        degradation: instead of aborting on the first failed iteration, the
        campaign keeps going and returns once at least ``quorum`` of the
        planned iterations succeeded, flagging the record ``degraded`` and
        listing the casualties; fewer survivors than the quorum raises.
        """
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        if quorum is not None and not 1 <= quorum <= iterations:
            raise ValueError(
                f"quorum must be in [1, {iterations}], got {quorum}"
            )
        outputs: Dict[int, Tuple[BroadcastResult, Optional[list]]] = {}
        failed: List[int] = []
        pending = list(range(iterations))
        if self.checkpoint is not None and resume:
            for i in list(pending):
                loaded = self._load_checkpoint(i)
                if loaded is not None:
                    outputs[i] = loaded
                    pending.remove(i)

        if pending and self.executor is not None and quorum is None:
            self._run_fanned_out(pending, outputs)
        else:
            for i in pending:
                try:
                    outputs[i] = self._run_one(i)
                except Exception:
                    if quorum is None:
                        raise
                    failed.append(i)
                    continue
                if self.checkpoint is not None:
                    self._save_checkpoint(i, *outputs[i])

        if quorum is not None and len(outputs) < quorum:
            raise RuntimeError(
                f"campaign quorum not met: {len(outputs)} of {iterations} "
                f"iterations succeeded, needed {quorum}"
            )
        METRICS.count("campaign.iterations", len(outputs))
        record = MeasurementRecord(
            hosts=list(self.hosts),
            degraded=bool(failed),
            failed_iterations=sorted(failed),
            planned_iterations=iterations,
        )
        for i in sorted(outputs):
            result, stats = outputs[i]
            record.results.append(result)
            if stats is not None:
                record.workload_stats.append(stats)
        return record

    def _run_fanned_out(
        self,
        pending: List[int],
        outputs: Dict[int, Tuple[BroadcastResult, Optional[list]]],
    ) -> None:
        """Fan the pending iterations out through the executor.

        The executor retries crashed/hung tasks internally (see
        :class:`~repro.scenarios.executors.ProcessPoolExecutor`); results
        come back in spec order, so they pair up with ``pending`` directly.
        """
        specs = [(("broadcast", i), self.root_of(i)) for i in pending]
        results, stats = self.executor.run_campaign(
            self.topology,
            self.config,
            self.hosts,
            self.streams.seed,
            specs,
            workload=self.workload,
            faults=self.faults,
        )
        for i, result, actor_stats in zip(pending, results, stats):
            outputs[i] = (result, actor_stats)
            if self.checkpoint is not None:
                self._save_checkpoint(i, result, actor_stats)
