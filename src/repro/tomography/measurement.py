"""Measurement campaigns: repeated synchronized BitTorrent broadcasts.

A campaign runs ``n`` instrumented broadcasts on the same host set (optionally
rotating the seeding root, which the paper suggests as a remedy for the
asymmetry of broadcast traffic), collects the per-iteration
:class:`FragmentMatrix` measurements, and exposes cumulative aggregates so
that convergence with the number of iterations (Fig. 13) can be studied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.scenarios.executors import CampaignExecutor

from repro.bittorrent.instrumentation import FragmentMatrix
from repro.bittorrent.swarm import BitTorrentBroadcast, BroadcastResult, SwarmConfig
from repro.network.routing import RoutingTable
from repro.network.topology import Topology
from repro.simulation.rng import RandomStreams, derive_seed
from repro.tomography.metric import EdgeMetric, aggregate_mean


@dataclass
class MeasurementRecord:
    """Everything collected during one measurement campaign.

    Attributes
    ----------
    hosts:
        Host order shared by all matrices.
    results:
        Per-iteration broadcast results (fragment matrices, durations, roots).
    """

    hosts: List[str]
    results: List[BroadcastResult] = field(default_factory=list)
    #: Per-iteration actor stats when the campaign ran inside a workload
    #: (one list of per-actor dicts per iteration); empty for single-tenant
    #: campaigns.
    workload_stats: List[List[Dict[str, object]]] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        return len(self.results)

    @property
    def matrices(self) -> List[FragmentMatrix]:
        return [r.fragments for r in self.results]

    @property
    def durations(self) -> List[float]:
        return [r.duration for r in self.results]

    @property
    def control_steps(self) -> List[int]:
        """Per-iteration count of control points the swarm loop executed."""
        return [r.control_steps for r in self.results]

    def total_measurement_time(self) -> float:
        """Simulated wall-clock cost of the whole campaign (sum of broadcasts)."""
        return float(sum(self.durations))

    def total_control_steps(self) -> int:
        """Control points executed across the campaign (the event mode's
        figure of merit; see docs/simulation.md)."""
        return int(sum(self.control_steps))

    def aggregate(self, iterations: Optional[int] = None) -> EdgeMetric:
        """Metric aggregated over the first ``iterations`` runs (all by default)."""
        if not self.results:
            raise ValueError("campaign has no measurements yet")
        count = self.iterations if iterations is None else iterations
        if not 1 <= count <= self.iterations:
            raise ValueError(
                f"iterations must be in [1, {self.iterations}], got {count}"
            )
        return aggregate_mean(self.matrices[:count])

    def cumulative_aggregates(self) -> List[EdgeMetric]:
        """Aggregates after 1, 2, ..., n iterations (the Fig. 13 x-axis).

        Maintained incrementally: one running sum over the symmetrised
        matrices, divided by the prefix length — O(n) matrix passes instead
        of the O(n²) of re-averaging every prefix.  Fragment counts are
        integer-valued, so the running sum is exact and each prefix mean is
        identical to what :meth:`aggregate` computes.
        """
        if not self.results:
            raise ValueError("campaign has no measurements yet")
        matrices = self.matrices
        labels = matrices[0].labels
        for m in matrices[1:]:
            if m.labels != labels:
                raise ValueError("all measurements must share the same host order")
        running = np.zeros((len(labels), len(labels)), dtype=float)
        aggregates: List[EdgeMetric] = []
        for k, matrix in enumerate(matrices, start=1):
            running += matrix.symmetric_weights()
            mean = running / k
            np.fill_diagonal(mean, 0.0)
            aggregates.append(
                EdgeMetric(labels=tuple(labels), weights=mean, iterations=k)
            )
        return aggregates


class MeasurementCampaign:
    """Runs the measurement phase of the tomography method.

    Parameters
    ----------
    topology:
        Network substrate.
    hosts:
        Participating hosts (defaults to all hosts of the topology).
    config:
        Swarm configuration (torrent size, protocol knobs).
    seed:
        Base random seed; iteration ``i`` uses an independent derived stream,
        so that single-run statistics (Fig. 5) are meaningful.
    rotate_root:
        When True, iteration ``i`` is seeded by host ``i mod len(hosts)``;
        otherwise the first host always seeds (the paper's default setup).
    executor:
        Optional :class:`~repro.scenarios.executors.CampaignExecutor` the
        independent iterations are fanned out through.  ``None`` runs the
        classic in-process loop.  Because every iteration's random stream is
        derived statelessly from ``(seed, "broadcast", i)`` and results are
        reassembled in iteration order, any backend produces a record
        bit-for-bit identical to the serial one.
    workload:
        Optional :class:`~repro.workloads.WorkloadSpec`: every measured
        broadcast then runs inside a multi-tenant
        :class:`~repro.workloads.WorkloadEngine` with the spec's background
        actors (rival broadcasts, cross traffic, churn, capacity drift)
        sharing the clock and the fluid network.  The measured broadcast
        keeps the standard ``(seed, "broadcast", i)`` stream, so the empty
        workload reproduces the single-tenant campaign bit for bit.
        Workload campaigns run in-process (``executor`` is not consulted).
    """

    def __init__(
        self,
        topology: Topology,
        config: SwarmConfig,
        hosts: Optional[Sequence[str]] = None,
        seed: int = 0,
        rotate_root: bool = False,
        executor: Optional["CampaignExecutor"] = None,
        workload=None,
    ) -> None:
        self.topology = topology
        self.config = config
        self.hosts = list(hosts) if hosts is not None else topology.host_names
        self.streams = RandomStreams(seed)
        self.rotate_root = rotate_root
        self.executor = executor
        if workload is not None:
            from repro.workloads import workload_from_name

            workload = workload_from_name(workload)
            if not workload.actors:
                # The empty workload is the classic single-tenant campaign.
                workload = None
        self.workload = workload
        self.routing = RoutingTable(topology)
        self._broadcast = BitTorrentBroadcast(
            topology, config, hosts=self.hosts, routing=self.routing
        )

    def root_of(self, iteration: int) -> str:
        """Seeding host of broadcast number ``iteration`` (zero-based)."""
        if self.rotate_root:
            return self.hosts[iteration % len(self.hosts)]
        return self.hosts[0]

    def run_iteration(self, iteration: int, root: Optional[str] = None) -> BroadcastResult:
        """Run broadcast number ``iteration`` (zero-based) and return its result.

        The generator is freshly derived from ``(seed, "broadcast",
        iteration)`` on every call — never reused across calls — so
        replaying an iteration (or re-running the campaign) is idempotent
        and matches what executor workers derive for the same iteration.
        """
        if root is None:
            root = self.root_of(iteration)
        rng = np.random.default_rng(
            derive_seed(self.streams.seed, "broadcast", iteration)
        )
        return self._broadcast.run(root=root, rng=rng)

    def run(self, iterations: int) -> MeasurementRecord:
        """Run ``iterations`` synchronized broadcasts and collect the record."""
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        record = MeasurementRecord(hosts=list(self.hosts))
        if self.workload is not None:
            # Multi-tenant measurement: each iteration is its own workload
            # engine run (fresh background actors, same shared substrate).
            from repro.workloads import run_workload_iteration

            for i in range(iterations):
                result, stats = run_workload_iteration(
                    self.topology,
                    self.config,
                    self.hosts,
                    self.root_of(i),
                    self.streams.seed,
                    i,
                    self.workload,
                    routing=self.routing,
                )
                record.results.append(result)
                record.workload_stats.append(stats)
        elif self.executor is None:
            for i in range(iterations):
                record.results.append(self.run_iteration(i))
        else:
            specs = [
                (("broadcast", i), self.root_of(i)) for i in range(iterations)
            ]
            record.results.extend(
                self.executor.run_broadcasts(
                    self.topology,
                    self.config,
                    self.hosts,
                    self.streams.seed,
                    specs,
                )
            )
        return record
