"""Measurement campaigns: repeated synchronized BitTorrent broadcasts.

A campaign runs ``n`` instrumented broadcasts on the same host set (optionally
rotating the seeding root, which the paper suggests as a remedy for the
asymmetry of broadcast traffic), collects the per-iteration
:class:`FragmentMatrix` measurements, and exposes cumulative aggregates so
that convergence with the number of iterations (Fig. 13) can be studied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bittorrent.instrumentation import FragmentMatrix
from repro.bittorrent.swarm import BitTorrentBroadcast, BroadcastResult, SwarmConfig
from repro.network.routing import RoutingTable
from repro.network.topology import Topology
from repro.simulation.rng import RandomStreams
from repro.tomography.metric import EdgeMetric, aggregate_mean


@dataclass
class MeasurementRecord:
    """Everything collected during one measurement campaign.

    Attributes
    ----------
    hosts:
        Host order shared by all matrices.
    results:
        Per-iteration broadcast results (fragment matrices, durations, roots).
    """

    hosts: List[str]
    results: List[BroadcastResult] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        return len(self.results)

    @property
    def matrices(self) -> List[FragmentMatrix]:
        return [r.fragments for r in self.results]

    @property
    def durations(self) -> List[float]:
        return [r.duration for r in self.results]

    def total_measurement_time(self) -> float:
        """Simulated wall-clock cost of the whole campaign (sum of broadcasts)."""
        return float(sum(self.durations))

    def aggregate(self, iterations: Optional[int] = None) -> EdgeMetric:
        """Metric aggregated over the first ``iterations`` runs (all by default)."""
        if not self.results:
            raise ValueError("campaign has no measurements yet")
        count = self.iterations if iterations is None else iterations
        if not 1 <= count <= self.iterations:
            raise ValueError(
                f"iterations must be in [1, {self.iterations}], got {count}"
            )
        return aggregate_mean(self.matrices[:count])

    def cumulative_aggregates(self) -> List[EdgeMetric]:
        """Aggregates after 1, 2, ..., n iterations (the Fig. 13 x-axis)."""
        return [self.aggregate(i) for i in range(1, self.iterations + 1)]


class MeasurementCampaign:
    """Runs the measurement phase of the tomography method.

    Parameters
    ----------
    topology:
        Network substrate.
    hosts:
        Participating hosts (defaults to all hosts of the topology).
    config:
        Swarm configuration (torrent size, protocol knobs).
    seed:
        Base random seed; iteration ``i`` uses an independent derived stream,
        so that single-run statistics (Fig. 5) are meaningful.
    rotate_root:
        When True, iteration ``i`` is seeded by host ``i mod len(hosts)``;
        otherwise the first host always seeds (the paper's default setup).
    """

    def __init__(
        self,
        topology: Topology,
        config: SwarmConfig,
        hosts: Optional[Sequence[str]] = None,
        seed: int = 0,
        rotate_root: bool = False,
    ) -> None:
        self.topology = topology
        self.config = config
        self.hosts = list(hosts) if hosts is not None else topology.host_names
        self.streams = RandomStreams(seed)
        self.rotate_root = rotate_root
        self.routing = RoutingTable(topology)
        self._broadcast = BitTorrentBroadcast(
            topology, config, hosts=self.hosts, routing=self.routing
        )

    def run_iteration(self, iteration: int, root: Optional[str] = None) -> BroadcastResult:
        """Run broadcast number ``iteration`` (zero-based) and return its result."""
        if root is None:
            root = (
                self.hosts[iteration % len(self.hosts)]
                if self.rotate_root
                else self.hosts[0]
            )
        rng = self.streams.stream("broadcast", iteration)
        return self._broadcast.run(root=root, rng=rng)

    def run(self, iterations: int) -> MeasurementRecord:
        """Run ``iterations`` synchronized broadcasts and collect the record."""
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        record = MeasurementRecord(hosts=list(self.hosts))
        for i in range(iterations):
            record.results.append(self.run_iteration(i))
        return record
