"""Locating bottleneck links from a recovered clustering.

The paper's conclusion highlights that the method "correctly identified
communication bottleneck links ... by placing the nodes communicating across
the bottleneck link in different logical clusters".  Given the logical
clusters and a routing view of the (physical or assumed) topology, the links
shared by inter-cluster routes are exactly the candidate bottlenecks; ranking
them by how many inter-cluster host pairs traverse them pinpoints the culprit
(the Dell↔Cisco 1 GbE link in Bordeaux).

This analysis needs topology knowledge and is therefore a *diagnosis* step on
top of the tomography output, not part of the measurement: the measurement
itself never looks at the physical topology.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.clustering.partition import Partition
from repro.network.routing import RoutingTable
from repro.network.topology import Topology


@dataclass(frozen=True)
class BottleneckReport:
    """Candidate bottleneck links between two logical clusters.

    Attributes
    ----------
    cluster_a, cluster_b:
        Indices of the two clusters in the partition.
    shared_links:
        Link names traversed by *every* inter-cluster route, i.e. links whose
        failure or saturation affects all traffic between the clusters.
    link_pair_counts:
        For every link appearing on at least one inter-cluster route, the
        number of inter-cluster host pairs routed across it.
    pair_count:
        Total number of inter-cluster host pairs considered.
    """

    cluster_a: int
    cluster_b: int
    shared_links: Tuple[str, ...]
    link_pair_counts: Dict[str, int]
    pair_count: int

    def ranked_links(self) -> List[Tuple[str, int]]:
        """Links ordered by how many inter-cluster pairs cross them."""
        return sorted(
            self.link_pair_counts.items(), key=lambda item: (-item[1], item[0])
        )

    def primary_bottleneck(self) -> Optional[str]:
        """The narrowest link crossed by every inter-cluster pair, if any."""
        return self.shared_links[0] if self.shared_links else None


def find_bottleneck_links(
    topology: Topology,
    partition: Partition,
    routing: Optional[RoutingTable] = None,
    max_pairs_per_cluster_pair: int = 64,
) -> List[BottleneckReport]:
    """Identify candidate bottleneck links for every pair of logical clusters.

    Parameters
    ----------
    topology:
        The (physical or assumed) topology to diagnose against.
    partition:
        Logical clusters recovered by the tomography pipeline; every member
        must be a host of the topology.
    routing:
        Optional pre-built routing table.
    max_pairs_per_cluster_pair:
        Cap on the number of host pairs sampled per cluster pair (routes in
        Grid'5000-style networks are highly redundant, so a sample suffices
        and keeps the analysis linear in practice).

    Returns
    -------
    list of BottleneckReport
        One report per unordered pair of clusters, in cluster-index order.
    """
    if max_pairs_per_cluster_pair < 1:
        raise ValueError("max_pairs_per_cluster_pair must be at least 1")
    for node in partition.nodes():
        if not topology.is_host(node):
            raise ValueError(f"partition member {node!r} is not a host of the topology")
    routing = routing or RoutingTable(topology)

    clusters = [sorted(cluster, key=str) for cluster in partition.clusters]
    # Sort the narrowest links first so ties in the ranking favour them.
    capacity = {link.name: link.capacity for link in topology.links}

    reports: List[BottleneckReport] = []
    for index_a, index_b in itertools.combinations(range(len(clusters)), 2):
        pairs = list(itertools.product(clusters[index_a], clusters[index_b]))
        pairs = pairs[:max_pairs_per_cluster_pair]
        shared: Optional[set] = None
        counts: Dict[str, int] = {}
        for src, dst in pairs:
            route = set(routing.route(src, dst))
            shared = route if shared is None else (shared & route)
            for link in route:
                counts[link] = counts.get(link, 0) + 1
        shared_links = tuple(
            sorted(shared or (), key=lambda name: (capacity.get(name, float("inf")), name))
        )
        reports.append(
            BottleneckReport(
                cluster_a=index_a,
                cluster_b=index_b,
                shared_links=shared_links,
                link_pair_counts=counts,
                pair_count=len(pairs),
            )
        )
    return reports


def describe_bottlenecks(
    topology: Topology, reports: Sequence[BottleneckReport]
) -> str:
    """Human-readable summary of bottleneck reports (used by examples/CLI)."""
    lines: List[str] = []
    for report in reports:
        lines.append(
            f"clusters {report.cluster_a} <-> {report.cluster_b} "
            f"({report.pair_count} host pairs considered):"
        )
        if not report.shared_links:
            lines.append("  no link is shared by every inter-cluster route")
            continue
        for name in report.shared_links:
            link = topology.link(name)
            lines.append(
                f"  shared link {name}: capacity {link.capacity * 8 / 1e9:.2f} Gb/s"
            )
    return "\n".join(lines)
