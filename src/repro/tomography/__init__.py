"""The paper's primary contribution: BitTorrent-based bandwidth tomography.

* :mod:`repro.tomography.metric` — the "received fragments per peer" metric
  (Eq. 1–2) and its aggregation over iterations;
* :mod:`repro.tomography.measurement` — running the measurement phase
  (repeated synchronized broadcasts) on a topology;
* :mod:`repro.tomography.pipeline` — the end-to-end two-phase method:
  measure, aggregate, cluster, evaluate against ground truth;
* :mod:`repro.tomography.netpipe` — NetPIPE-style point-to-point reference
  probes;
* :mod:`repro.tomography.baselines` — classical saturation tomography
  (pairwise and triplet interference probing) used as cost/quality baselines;
* :mod:`repro.tomography.interference` — robustness of the recovery when the
  measured broadcasts share the cluster with other tenants (multi-tenant
  workloads: concurrent broadcasts, cross traffic, churn, capacity drift).
"""

from repro.tomography.interference import run_interference_study
from repro.tomography.metric import EdgeMetric, aggregate_mean, metric_graph
from repro.tomography.measurement import MeasurementCampaign, MeasurementRecord
from repro.tomography.pipeline import TomographyPipeline, TomographyResult
from repro.tomography.netpipe import NetPipeProbe, NetPipeResult
from repro.tomography.bottleneck import BottleneckReport, describe_bottlenecks, find_bottleneck_links
from repro.tomography.baselines import (
    BaselineResult,
    PairwiseSaturationTomography,
    TripletSaturationTomography,
)

__all__ = [
    "EdgeMetric",
    "aggregate_mean",
    "metric_graph",
    "MeasurementCampaign",
    "MeasurementRecord",
    "TomographyPipeline",
    "TomographyResult",
    "NetPipeProbe",
    "NetPipeResult",
    "BottleneckReport",
    "find_bottleneck_links",
    "describe_bottlenecks",
    "BaselineResult",
    "PairwiseSaturationTomography",
    "TripletSaturationTomography",
    "run_interference_study",
]
