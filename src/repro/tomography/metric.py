"""The "received fragments per peer" metric (Section II of the paper).

For a single broadcast ``i`` and an edge ``e = (v1, v2)``:

    w_i(e) = (v1 →_i v2) + (v2 →_i v1)                       (Eq. 1)

and aggregated over ``n`` iterations:

    w(e) = Σ_i w_i(e) / n                                    (Eq. 2)

The functions here turn the directed :class:`FragmentMatrix` measurements into
symmetric edge metrics and into the weighted graph consumed by the
clustering phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.bittorrent.instrumentation import FragmentMatrix
from repro.graph.wgraph import WeightedGraph


@dataclass(frozen=True)
class EdgeMetric:
    """Aggregated symmetric edge weights ``w(e)`` over a set of hosts.

    Attributes
    ----------
    labels:
        Host order of the matrix.
    weights:
        Symmetric matrix; ``weights[i, j]`` is ``w((labels[i], labels[j]))``.
    iterations:
        Number of broadcast iterations aggregated.
    """

    labels: Tuple[str, ...]
    weights: np.ndarray
    iterations: int

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights, dtype=float)
        n = len(self.labels)
        if weights.shape != (n, n):
            raise ValueError(f"weights must be {n}x{n}")
        if not np.allclose(weights, weights.T, atol=1e-9):
            raise ValueError("edge metric matrix must be symmetric")
        if (weights < 0).any():
            raise ValueError("edge metrics must be non-negative")
        if self.iterations < 1:
            raise ValueError("iterations must be at least 1")
        object.__setattr__(self, "weights", weights)
        object.__setattr__(self, "labels", tuple(self.labels))

    # ------------------------------------------------------------------ #
    def index_of(self, host: str) -> int:
        try:
            return self.labels.index(host)
        except ValueError as exc:
            raise KeyError(f"unknown host {host!r}") from exc

    def weight(self, u: str, v: str) -> float:
        """``w((u, v))``; zero for never-communicating pairs."""
        return float(self.weights[self.index_of(u), self.index_of(v)])

    def edges_of(self, host: str) -> Dict[str, float]:
        """All edge weights incident to ``host`` (Fig. 4's bar chart data)."""
        i = self.index_of(host)
        return {
            other: float(self.weights[i, j])
            for j, other in enumerate(self.labels)
            if j != i
        }

    def nonzero_edge_count(self) -> int:
        return int(np.count_nonzero(np.triu(self.weights, k=1)))

    def total_weight(self) -> float:
        return float(np.triu(self.weights, k=1).sum())


def aggregate_mean(matrices: Sequence[FragmentMatrix]) -> EdgeMetric:
    """Aggregate broadcast measurements into the per-edge metric of Eq. 2."""
    if not matrices:
        raise ValueError("at least one measurement is required")
    labels = matrices[0].labels
    for m in matrices[1:]:
        if m.labels != labels:
            raise ValueError("all measurements must share the same host order")
    stacked = np.stack([m.symmetric_weights() for m in matrices])
    mean = stacked.mean(axis=0)
    np.fill_diagonal(mean, 0.0)
    return EdgeMetric(labels=tuple(labels), weights=mean, iterations=len(matrices))


def single_run_metric(matrix: FragmentMatrix) -> EdgeMetric:
    """The (noisy) metric of a single broadcast, per Eq. 1."""
    return aggregate_mean([matrix])


def metric_graph(metric: EdgeMetric, drop_zero: bool = True) -> WeightedGraph:
    """Convert an :class:`EdgeMetric` into the weighted graph fed to clustering.

    Parameters
    ----------
    metric:
        Aggregated edge metric.
    drop_zero:
        When True (default) pairs that never exchanged fragments contribute no
        edge; nodes are always present even if isolated.
    """
    graph = WeightedGraph()
    for label in metric.labels:
        graph.add_node(label)
    n = len(metric.labels)
    for i in range(n):
        for j in range(i + 1, n):
            w = float(metric.weights[i, j])
            if w > 0 or not drop_zero:
                graph.add_edge(metric.labels[i], metric.labels[j], w)
    return graph


def edge_weight_history(
    matrices: Sequence[FragmentMatrix], u: str, v: str
) -> List[float]:
    """Per-iteration ``w_i(e)`` values for one edge (the data behind Fig. 5)."""
    if not matrices:
        raise ValueError("at least one measurement is required")
    return [m.edge_weight(u, v) for m in matrices]


def local_remote_split(
    metric: EdgeMetric, host: str, local_hosts: Iterable[str]
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Split the edges of ``host`` into local-cluster and remote groups (Fig. 4)."""
    local = set(local_hosts)
    if host not in metric.labels:
        raise KeyError(f"unknown host {host!r}")
    edges = metric.edges_of(host)
    local_edges = {k: v for k, v in edges.items() if k in local}
    remote_edges = {k: v for k, v in edges.items() if k not in local}
    return local_edges, remote_edges
