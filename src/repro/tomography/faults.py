"""Fault-robustness measurement: tomography under injected failure.

The interference studies ask whether the fragment metric survives *load*;
this module asks whether it survives *failure* — and how fast it notices
one.  :func:`run_fault_study` runs a full measure → aggregate → cluster →
evaluate campaign with every iteration carrying a
:class:`~repro.faults.FaultPlan`'s injectors, and reports the recovered
clustering, the injected-failure totals, and the study's two headline
metrics: **time to detect** a failed bottleneck link and **time to
localize** it (:mod:`repro.tomography.localization`).

Detection is duration-based, which is exactly the signal a production
tomography service has for free: a persistent capacity collapse on a
shared link stretches the measured broadcasts.  The detector is *online*
and *windowed* — each post-onset duration is compared against a rolling
median of the last :data:`DETECT_WINDOW` healthy samples plus a MAD
guard band, and samples that pass are absorbed into the healthy history.
A static pre-onset median would mis-fire the moment the baseline drifts
(capacity drift, slow load growth); the rolling baseline tracks the
drift and still trips on a genuine spike.  ``time_to_detect_s`` charges
the detector for every simulated second of measurement between the
failure's onset iteration and the detection (inclusive) — the cost of
noticing, in measurement time.

For plans whose failure *relocates* mid-campaign (``migrating_plan``),
:func:`detect_epochs` re-runs the verdict per failure epoch against the
pre-first-onset healthy history, and ``run_fault_study`` reports the
merged per-epoch detection + localization verdicts under ``epochs``.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional, Sequence

from repro.experiments.datasets import Dataset
from repro.faults import FaultPlan, fault_plan_from_name
from repro.tomography.interference import summarize_workload_stats
from repro.tomography.localization import localize_epochs
from repro.tomography.pipeline import TomographyPipeline, default_swarm_config
from repro.workloads.spec import expected_broadcast_duration

#: Default duration-spike ratio that counts as "failure detected".
DETECT_FACTOR = 1.25

#: Healthy samples the rolling-median baseline looks back over.
DETECT_WINDOW = 8

#: MAD multiples added to the spike threshold as a noise guard band.
MAD_FACTOR = 3.0


def fault_onset_iteration(plan: FaultPlan) -> int:
    """First campaign iteration any of the plan's faults is active in."""
    if not plan.faults:
        return 0
    return min(
        int(spec.param_dict().get("from_iteration", 0)) for spec in plan.faults
    )


def fault_epoch_onsets(plan: FaultPlan) -> List[int]:
    """Distinct fault-onset iterations, sorted — the plan's failure epochs.

    A plan whose injectors all start together has one epoch; a migrating
    plan (per-epoch ``from_iteration`` scoping) has several, and each is
    detected and localized independently.
    """
    if not plan.faults:
        return []
    return sorted(
        {int(s.param_dict().get("from_iteration", 0)) for s in plan.faults}
    )


def detect_failure(
    durations: Sequence[Optional[float]],
    onset: int,
    expected_duration: float,
    detect_factor: float = DETECT_FACTOR,
    window: int = DETECT_WINDOW,
    mad_factor: float = MAD_FACTOR,
) -> Dict[str, object]:
    """Online duration-spike failure detection over a campaign's iterations.

    Walks the post-onset durations in order, comparing each against a
    rolling median of the last ``window`` healthy samples (seeded with
    the pre-onset durations, or the config's expected broadcast duration
    when the failure starts at iteration 0) plus ``mad_factor`` median
    absolute deviations of noise head-room.  Samples under the threshold
    are absorbed into the healthy history, so a drifting baseline moves
    the threshold with it instead of tripping false positives.  ``None``
    entries (iterations a quorum campaign lost) are skipped.

    Returns the detection verdict plus the two headline numbers:
    ``iterations_to_detect`` (how many post-onset measurements it took)
    and ``time_to_detect_s`` (the simulated measurement time they cost).
    """
    if detect_factor <= 1.0:
        raise ValueError(
            f"detect_factor must exceed 1.0 (a spike *ratio*), got {detect_factor}"
        )
    if window < 1:
        raise ValueError(f"detect window must be at least 1, got {window}")
    healthy = [float(d) for d in durations[:onset] if d is not None]
    if not healthy:
        healthy = [float(expected_duration)]
    baseline: Optional[float] = None
    detected_iteration: Optional[int] = None
    for i in range(onset, len(durations)):
        d = durations[i]
        if d is None:
            continue
        recent = healthy[-window:]
        baseline = statistics.median(recent)
        mad = statistics.median(abs(x - baseline) for x in recent)
        if d > detect_factor * baseline + mad_factor * mad:
            detected_iteration = i
            break
        healthy.append(float(d))
    if baseline is None:
        # No post-onset measurement arrived (empty or all-failed window).
        baseline = statistics.median(healthy[-window:])
    out: Dict[str, object] = {
        "baseline_duration_s": float(baseline),
        "detect_factor": detect_factor,
        "fault_onset_iteration": onset,
        "detected": detected_iteration is not None,
        "detected_iteration": detected_iteration,
        "iterations_to_detect": None,
        "time_to_detect_s": None,
    }
    if detected_iteration is not None:
        out["iterations_to_detect"] = detected_iteration - onset + 1
        out["time_to_detect_s"] = float(
            sum(
                d
                for d in durations[onset : detected_iteration + 1]
                if d is not None
            )
        )
    return out


def detect_epochs(
    durations: Sequence[Optional[float]],
    onsets: Sequence[int],
    expected_duration: float,
    detect_factor: float = DETECT_FACTOR,
    window: int = DETECT_WINDOW,
    mad_factor: float = MAD_FACTOR,
) -> List[Dict[str, object]]:
    """Per-epoch detection for a failure that relocates mid-campaign.

    Epoch ``k`` spans ``[onsets[k], onsets[k+1])`` (the last runs to the
    end).  Every epoch's healthy history is seeded from the durations
    *before the first onset* — once any failure has been active, later
    windows are no longer healthy references.
    """
    onsets = [int(o) for o in onsets]
    if any(b <= a for a, b in zip(onsets, onsets[1:])):
        raise ValueError("epoch onsets must be strictly increasing")
    seed = list(durations[: onsets[0]])
    verdicts = []
    for k, onset in enumerate(onsets):
        end = onsets[k + 1] if k + 1 < len(onsets) else len(durations)
        verdict = detect_failure(
            seed + list(durations[onset:end]),
            len(seed),
            expected_duration,
            detect_factor=detect_factor,
            window=window,
            mad_factor=mad_factor,
        )
        # Remap the synthetic sequence's index back to campaign iterations.
        shift = onset - len(seed)
        if verdict["detected_iteration"] is not None:
            verdict["detected_iteration"] += shift
        verdict["fault_onset_iteration"] = onset
        verdict["epoch"] = k
        verdict["end_iteration"] = end
        verdicts.append(verdict)
    return verdicts


def _epoch_truths(
    plan: FaultPlan,
    onsets: Sequence[int],
    ends: Sequence[int],
    aligned_stats: Sequence[Optional[list]],
) -> List[Optional[str]]:
    """Ground-truth failed link per epoch, when it is unambiguous.

    Preferred source: the plan itself (a single pinned ``links`` victim
    on the epoch's link-failure spec).  Fallback: the union of victim
    names the injectors actually recorded (``failed_links`` in the
    epoch's workload stats).  Several distinct victims → no single truth.
    """
    truths: List[Optional[str]] = []
    for onset, end in zip(onsets, ends):
        pinned = set()
        for spec in plan.faults:
            if spec.kind != "link-failure":
                continue
            p = spec.param_dict()
            if int(p.get("from_iteration", 0)) != onset:
                continue
            pinned.update(p.get("links") or ())
        if len(pinned) != 1:
            pinned = set()
            for i in range(onset, min(end, len(aligned_stats))):
                for row in aligned_stats[i] or ():
                    pinned.update(row.get("failed_links") or ())
        truths.append(next(iter(pinned)) if len(pinned) == 1 else None)
    return truths


def _aligned_record(record, planned: int):
    """Planned-iteration-aligned (completions, durations, stats) lists.

    ``MeasurementRecord`` stores only the *achieved* iterations; quorum
    campaigns may have holes.  Detection and localization reason about
    planned iteration indices (fault onsets are planned indices), so the
    record is re-spread with ``None`` in the failed slots.
    """
    failed = set(record.failed_iterations)
    achieved_slots = [i for i in range(planned) if i not in failed]
    completions: List[Optional[Dict[str, float]]] = [None] * planned
    durations: List[Optional[float]] = [None] * planned
    stats: List[Optional[list]] = [None] * planned
    for slot, result in zip(achieved_slots, record.results):
        completions[slot] = result.completion_times
        durations[slot] = result.duration
    for slot, rows in zip(achieved_slots, record.workload_stats):
        stats[slot] = rows
    return completions, durations, stats


def run_fault_study(
    ds: Dataset,
    faults="blackout",
    workload=None,
    iterations: int = 6,
    num_fragments: int = 300,
    seed: int = 2012,
    noise_threshold: float = 0.8,
    stepping: Optional[str] = None,
    track_convergence: bool = False,
    detect_factor: float = DETECT_FACTOR,
    executor=None,
    quorum: Optional[int] = None,
) -> Dict[str, object]:
    """Measure a dataset under a fault plan and evaluate recovery,
    detection and localization.

    ``workload`` optionally layers an interference workload under the
    faults (failures rarely arrive on an idle cluster).  ``quorum`` lets
    the campaign proceed with ≥k surviving iterations; the summary then
    reports ``degraded`` and the achieved count instead of raising.
    """
    plan = fault_plan_from_name(faults)
    config = default_swarm_config(num_fragments, stepping=stepping)
    pipeline = TomographyPipeline(
        ds.topology,
        hosts=ds.hosts,
        ground_truth=ds.ground_truth,
        config=config,
        seed=seed,
        workload=workload,
        faults=plan,
        executor=executor,
    )
    result = pipeline.run(
        iterations, track_convergence=track_convergence, quorum=quorum
    )
    record = result.record
    planned = record.planned_iterations or record.iterations
    completions, durations, stats = _aligned_record(record, planned)
    expected = expected_broadcast_duration(config)
    detection = detect_failure(
        durations,
        fault_onset_iteration(plan),
        expected,
        detect_factor=detect_factor,
    )
    summary: Dict[str, object] = {
        "dataset": ds.name,
        "hosts": ds.num_hosts,
        "iterations": iterations,
        "achieved_iterations": result.achieved_iterations,
        "degraded": result.degraded,
        "failed_iterations": record.failed_iterations,
        "found_clusters": result.num_clusters,
        "expected_clusters": ds.expectation.expected_clusters,
        "measured_nmi": result.nmi,
        "measured_classical_nmi": result.classical_nmi,
        "modularity": result.modularity,
        "measurement_time_s": result.measurement_time,
        "nmi_per_iteration": result.nmi_per_iteration,
        "stepping": config.stepping,
        "control_steps": record.total_control_steps(),
        "executor": getattr(executor, "name", None) or "serial",
        "noise_threshold": noise_threshold,
        "recovered": result.nmi is not None and result.nmi >= noise_threshold,
        "result": result,
        "ground_truth": ds.ground_truth,
    }
    summary.update(detection)
    summary.update(_localization_summary(
        plan, completions, durations, stats, planned,
        pipeline.campaign.routing, expected, detect_factor,
    ))
    summary.update(plan.metadata())
    if pipeline.campaign.workload is not None:
        summary.update(pipeline.campaign.workload.metadata())
    summary.update(summarize_workload_stats(record.workload_stats))
    return summary


def _localization_summary(
    plan: FaultPlan,
    completions: Sequence[Optional[Dict[str, float]]],
    durations: Sequence[Optional[float]],
    stats: Sequence[Optional[list]],
    planned: int,
    routing,
    expected_duration: float,
    detect_factor: float,
) -> Dict[str, object]:
    """Localization + per-epoch verdicts for the study summary.

    The top-level headline numbers aggregate across epochs the way an
    operator would score the study: ``time_to_localize_s`` sums the
    per-epoch costs (``None`` if any epoch never converged),
    ``localization_rank`` is the *worst* epoch's rank, and
    ``localized_link`` is the most recent epoch's verdict.
    """
    out: Dict[str, object] = {
        "localized_link": None,
        "localization_status": "no-faults",
        "localization_rank": None,
        "localization_candidates": [],
        "true_link": None,
        "iterations_to_localize": None,
        "time_to_localize_s": None,
        "epochs": [],
    }
    onsets = fault_epoch_onsets(plan)
    if not onsets:
        return out
    ends = [
        onsets[k + 1] if k + 1 < len(onsets) else planned
        for k in range(len(onsets))
    ]
    truths = _epoch_truths(plan, onsets, ends, stats)
    located = localize_epochs(completions, durations, onsets, routing, truths)
    detected = detect_epochs(
        durations, onsets, expected_duration, detect_factor=detect_factor
    )
    epochs = []
    for det, loc in zip(detected, located):
        merged = dict(det)
        merged.update(loc)
        epochs.append(merged)
    ranks = [e["localization_rank"] for e in located]
    times = [e["time_to_localize_s"] for e in located]
    iters = [e["iterations_to_localize"] for e in located]
    last = located[-1]
    out.update(
        localized_link=last["localized_link"],
        localization_status=last["localization_status"],
        localization_candidates=last["localization_candidates"],
        true_link=last["true_link"],
        localization_rank=(
            max(ranks) if ranks and all(r is not None for r in ranks) else None
        ),
        time_to_localize_s=(
            float(sum(times)) if times and all(t is not None for t in times) else None
        ),
        iterations_to_localize=(
            int(sum(iters)) if iters and all(i is not None for i in iters) else None
        ),
        epochs=epochs,
    )
    return out
