"""Fault-robustness measurement: tomography under injected failure.

The interference studies ask whether the fragment metric survives *load*;
this module asks whether it survives *failure* — and how fast it notices
one.  :func:`run_fault_study` runs a full measure → aggregate → cluster →
evaluate campaign with every iteration carrying a
:class:`~repro.faults.FaultPlan`'s injectors, and reports the recovered
clustering, the injected-failure totals, and the study's headline metric:
**time to detect** a failed bottleneck link.

Detection is duration-based, which is exactly the signal a production
tomography service has for free: a persistent capacity collapse on a
shared link stretches the measured broadcasts, so the first iteration
whose duration exceeds ``detect_factor ×`` the pre-failure baseline is
the detection point.  ``time_to_detect_s`` charges the detector for every
simulated second of measurement between the failure's onset iteration and
the detection (inclusive) — the cost of noticing, in measurement time.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional

from repro.experiments.datasets import Dataset
from repro.faults import FaultPlan, fault_plan_from_name
from repro.tomography.interference import summarize_workload_stats
from repro.tomography.pipeline import TomographyPipeline, default_swarm_config
from repro.workloads.spec import expected_broadcast_duration

#: Default duration-spike ratio that counts as "failure detected".
DETECT_FACTOR = 1.25


def fault_onset_iteration(plan: FaultPlan) -> int:
    """First campaign iteration any of the plan's faults is active in."""
    if not plan.faults:
        return 0
    return min(
        int(spec.param_dict().get("from_iteration", 0)) for spec in plan.faults
    )


def detect_failure(
    durations: List[float],
    onset: int,
    expected_duration: float,
    detect_factor: float = DETECT_FACTOR,
) -> Dict[str, object]:
    """Duration-spike failure detection over a campaign's iterations.

    The baseline is the median pre-onset duration (falling back to the
    config's expected broadcast duration when the failure starts at
    iteration 0, so detection needs no healthy samples).  Returns the
    detection verdict plus the two headline numbers: ``iterations_to_detect``
    (how many post-onset measurements it took) and ``time_to_detect_s``
    (the simulated measurement time they cost).
    """
    healthy = durations[:onset]
    baseline = statistics.median(healthy) if healthy else expected_duration
    detected_iteration: Optional[int] = None
    for i in range(onset, len(durations)):
        if durations[i] > detect_factor * baseline:
            detected_iteration = i
            break
    out: Dict[str, object] = {
        "baseline_duration_s": baseline,
        "detect_factor": detect_factor,
        "fault_onset_iteration": onset,
        "detected": detected_iteration is not None,
        "detected_iteration": detected_iteration,
        "iterations_to_detect": None,
        "time_to_detect_s": None,
    }
    if detected_iteration is not None:
        out["iterations_to_detect"] = detected_iteration - onset + 1
        out["time_to_detect_s"] = float(
            sum(durations[onset : detected_iteration + 1])
        )
    return out


def run_fault_study(
    ds: Dataset,
    faults="blackout",
    workload=None,
    iterations: int = 6,
    num_fragments: int = 300,
    seed: int = 2012,
    noise_threshold: float = 0.8,
    stepping: Optional[str] = None,
    track_convergence: bool = False,
    detect_factor: float = DETECT_FACTOR,
    executor=None,
    quorum: Optional[int] = None,
) -> Dict[str, object]:
    """Measure a dataset under a fault plan and evaluate recovery + detection.

    ``workload`` optionally layers an interference workload under the
    faults (failures rarely arrive on an idle cluster).  ``quorum`` lets
    the campaign proceed with ≥k surviving iterations; the summary then
    reports ``degraded`` and the achieved count instead of raising.
    """
    plan = fault_plan_from_name(faults)
    config = default_swarm_config(num_fragments, stepping=stepping)
    pipeline = TomographyPipeline(
        ds.topology,
        hosts=ds.hosts,
        ground_truth=ds.ground_truth,
        config=config,
        seed=seed,
        workload=workload,
        faults=plan,
        executor=executor,
    )
    result = pipeline.run(
        iterations, track_convergence=track_convergence, quorum=quorum
    )
    record = result.record
    detection = detect_failure(
        record.durations,
        fault_onset_iteration(plan),
        expected_broadcast_duration(config),
        detect_factor=detect_factor,
    )
    summary: Dict[str, object] = {
        "dataset": ds.name,
        "hosts": ds.num_hosts,
        "iterations": iterations,
        "achieved_iterations": result.achieved_iterations,
        "degraded": result.degraded,
        "failed_iterations": record.failed_iterations,
        "found_clusters": result.num_clusters,
        "expected_clusters": ds.expectation.expected_clusters,
        "measured_nmi": result.nmi,
        "measured_classical_nmi": result.classical_nmi,
        "modularity": result.modularity,
        "measurement_time_s": result.measurement_time,
        "nmi_per_iteration": result.nmi_per_iteration,
        "stepping": config.stepping,
        "control_steps": record.total_control_steps(),
        "executor": getattr(executor, "name", None) or "serial",
        "noise_threshold": noise_threshold,
        "recovered": result.nmi is not None and result.nmi >= noise_threshold,
        "result": result,
        "ground_truth": ds.ground_truth,
    }
    summary.update(detection)
    summary.update(plan.metadata())
    if pipeline.campaign.workload is not None:
        summary.update(pipeline.campaign.workload.metadata())
    summary.update(summarize_workload_stats(record.workload_stats))
    return summary
