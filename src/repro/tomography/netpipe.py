"""NetPIPE-style point-to-point bandwidth probes.

The paper uses NetPIPE to establish reference numbers: ≈890 Mb/s between two
nodes of the same Ethernet cluster, ≈787 Mb/s between Bordeaux and Toulouse,
both with very low variance — in contrast to the highly variable BitTorrent
metric.  The probe here saturates a single pair with a sweep of message sizes
on an otherwise idle network and reports the peak achieved bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.network.fluid import FluidNetwork
from repro.network.grid5000 import DEFAULT_TCP_WINDOW, flow_rate_cap
from repro.network.routing import RoutingTable
from repro.network.topology import Topology


@dataclass(frozen=True)
class NetPipeResult:
    """Result of one NetPIPE-style probe between a host pair.

    Attributes
    ----------
    src, dst:
        The probed pair.
    message_sizes:
        Message sizes swept (bytes).
    bandwidths:
        Achieved bandwidth per message size (bytes/second).
    peak_bandwidth:
        Maximum over the sweep — the "achievable bandwidth" number quoted in
        the paper.
    """

    src: str
    dst: str
    message_sizes: Tuple[int, ...]
    bandwidths: Tuple[float, ...]

    @property
    def peak_bandwidth(self) -> float:
        return max(self.bandwidths)

    @property
    def peak_megabits(self) -> float:
        """Peak bandwidth in Mb/s, the unit the paper quotes."""
        return self.peak_bandwidth * 8.0 / 1e6


class NetPipeProbe:
    """Runs saturation probes between host pairs on an idle network."""

    #: Default message-size sweep (bytes): 4 KiB up to 64 MiB.
    DEFAULT_SIZES: Tuple[int, ...] = tuple(4096 * (4 ** k) for k in range(8))

    def __init__(
        self,
        topology: Topology,
        routing: Optional[RoutingTable] = None,
        tcp_window: Optional[float] = DEFAULT_TCP_WINDOW,
    ) -> None:
        self.topology = topology
        self.routing = routing or RoutingTable(topology)
        self.tcp_window = tcp_window

    def _pair_rate_cap(self, src: str, dst: str) -> Optional[float]:
        if self.tcp_window is None:
            return None
        cap = flow_rate_cap(self.routing, src, dst, self.tcp_window)
        return cap if np.isfinite(cap) else None

    def probe(
        self, src: str, dst: str, message_sizes: Optional[Sequence[int]] = None
    ) -> NetPipeResult:
        """Measure achievable bandwidth from ``src`` to ``dst``.

        Each message size is transferred on an otherwise idle network; the
        reported bandwidth includes the path latency, so small messages see
        lower effective bandwidth exactly as in the real tool.
        """
        if src == dst:
            raise ValueError("NetPIPE probes require two distinct hosts")
        if message_sizes is None:
            message_sizes = self.DEFAULT_SIZES
        sizes = tuple(int(s) for s in message_sizes)
        if not sizes or any(s <= 0 for s in sizes):
            raise ValueError("message sizes must be a non-empty list of positive sizes")
        rate_cap = self._pair_rate_cap(src, dst)
        latency = self.routing.path_latency(src, dst)
        bandwidths: List[float] = []
        for size in sizes:
            network = FluidNetwork(self.topology, self.routing)
            network.start_transfer(src, dst, float(size), rate_cap=rate_cap)
            network.run_until_complete()
            duration = network.now + latency
            bandwidths.append(size / duration)
        return NetPipeResult(
            src=src, dst=dst, message_sizes=sizes, bandwidths=tuple(bandwidths)
        )

    def repeated_peak(
        self, src: str, dst: str, repeats: int = 10, message_size: int = 16 * 1024 * 1024
    ) -> List[float]:
        """Repeat a large-message probe; on the fluid model the variance is zero,
        mirroring the paper's observation that NetPIPE measurements are dense
        around their mean (in contrast to Fig. 5)."""
        if repeats < 1:
            raise ValueError("repeats must be at least 1")
        return [
            self.probe(src, dst, message_sizes=[message_size]).peak_bandwidth
            for _ in range(repeats)
        ]
