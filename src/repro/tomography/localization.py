"""Boolean-tomography fault localization: *name* the failed link.

Detection (:mod:`repro.tomography.faults`) answers *whether* a shared
link failed and how long noticing took; this module answers *which* one.
The signal is the campaign's own measurement record: every broadcast
iteration reports a per-host download completion time, and each of those
is an end-to-end *path* measurement from the seeding root — exactly the
probe classic boolean network tomography works from.  A persistent
capacity collapse on a shared link slows precisely the hosts whose
traffic crosses it, so the host set splits into a slowed side and a
healthy side, and the *cut pairs* between the two sides are the boolean
signature of the failed link's location.

Why not the fragment matrices?  Fragment-exchange counts are nearly
conserved across a topology cut — every fragment must cross the failed
link about once regardless of its capacity — so per-pair weight
divergence barely moves when a link collapses (the very robustness that
keeps the clustering NMI high under failure).  Completion times are the
complementary signal the same record already carries: invisible to the
clustering, maximally sensitive to a capacity collapse.

The algorithm:

1. **Divergence** — average per-host completion times before the
   failure's onset (the baseline) and after it; each host's *slowdown*
   is the ratio.  A host pair whose slowdowns differ by at least
   :data:`DIVERGENCE_RATIO` (and whose slower end actually slowed by
   that much) is *affected* — it crosses the cut; every other measured
   pair is *clean*.
2. **Intersection** — candidate links are those appearing on an
   affected pair's nominal route (:meth:`~repro.network.routing
   .RoutingTable.route_tuple`).
3. **Coverage ranking** — each candidate scores ``affected_hits -
   clean_hits``: it should explain every affected pair and no clean
   one.  Ties within :data:`SCORE_TIE_EPS` are honest ambiguity —
   serial links crossed by exactly the same pairs are indistinguishable
   to boolean tomography — so the verdict degrades to a ranked
   candidate set instead of naming an arbitrary winner.

``time_to_localize_s`` mirrors ``time_to_detect_s``: the simulated
measurement seconds from the onset until the *incremental* verdict first
names the link the full window ends up naming — the cost of knowing
*where*, next to the cost of knowing *that*.

:func:`localize_epochs` re-runs the verdict per failure epoch for plans
whose failure *relocates* mid-campaign (the ``MIGRATING-BOTTLENECK``
scenario), always against the pre-first-onset baseline — later
"healthy" windows are contaminated by the previous epoch's failure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.routing import RoutingTable
from repro.observability.metrics import METRICS

#: Slowdown ratio between a pair's endpoints that marks the pair affected.
DIVERGENCE_RATIO = 1.5

#: Score gap below which two candidates are indistinguishable.
SCORE_TIE_EPS = 1e-9

#: Candidates retained in the reported ranking.
MAX_CANDIDATES = 5

Pair = Tuple[str, str]


def _mean_completions(
    records: Sequence[Dict[str, float]],
) -> Dict[str, float]:
    """Per-host mean completion time over the given iteration records."""
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for record in records:
        for host, t in record.items():
            totals[host] = totals.get(host, 0.0) + float(t)
            counts[host] = counts.get(host, 0) + 1
    return {host: totals[host] / counts[host] for host in totals}


def _divergent_pairs(
    baseline: Dict[str, float],
    observed: Dict[str, float],
    ratio: float,
) -> Tuple[List[Pair], List[Pair]]:
    """Split measured host pairs into (affected, clean) by slowdown cut.

    A pair is affected when its endpoints' post/pre slowdown factors
    differ by at least ``ratio`` *and* the slower endpoint really slowed
    by that much — one endpoint getting faster must not flag a failure.
    """
    hosts = sorted(
        h for h, base in baseline.items() if base > 1e-9 and h in observed
    )
    slowdown = {h: max(observed[h], 1e-12) / baseline[h] for h in hosts}
    affected: List[Pair] = []
    clean: List[Pair] = []
    for i, a in enumerate(hosts):
        for b in hosts[i + 1 :]:
            hi = max(slowdown[a], slowdown[b])
            lo = min(slowdown[a], slowdown[b])
            if hi >= ratio and hi / lo >= ratio:
                affected.append((a, b))
            else:
                clean.append((a, b))
    return affected, clean


def rank_candidates(
    affected: Sequence[Pair],
    clean: Sequence[Pair],
    routing: RoutingTable,
) -> List[Dict[str, object]]:
    """Score every link on an affected route by explanatory coverage.

    ``score = affected_hits - clean_hits``: the failed link should sit on
    every affected pair's route and on no clean pair's.  Sorted by score
    descending, then name, for a deterministic ranking.
    """
    routes: Dict[Pair, frozenset] = {}
    for pair in list(affected) + list(clean):
        routes[pair] = frozenset(routing.route_tuple(*pair))
    candidates = set()
    for pair in affected:
        candidates |= routes[pair]
    scored = []
    for link in candidates:
        hits = sum(1 for pair in affected if link in routes[pair])
        misses = sum(1 for pair in clean if link in routes[pair])
        scored.append(
            {
                "link": link,
                "affected_hits": hits,
                "clean_hits": misses,
                "score": float(hits - misses),
            }
        )
    scored.sort(key=lambda c: (-c["score"], c["link"]))
    return scored


def _truth_rank(
    scored: Sequence[Dict[str, object]], truth: Optional[str]
) -> Optional[int]:
    """Competition rank of the true link (ties share the best rank)."""
    if truth is None:
        return None
    truth_score = None
    for cand in scored:
        if cand["link"] == truth:
            truth_score = cand["score"]
            break
    if truth_score is None:
        return None
    better = sum(1 for c in scored if c["score"] > truth_score + SCORE_TIE_EPS)
    return better + 1


def _window_verdict(
    baseline: Dict[str, float],
    observed: Dict[str, float],
    routing: RoutingTable,
    ratio: float,
) -> Tuple[str, List[Dict[str, object]], int, int]:
    """(status, ranked candidates, affected count, measured count)."""
    affected, clean = _divergent_pairs(baseline, observed, ratio)
    measured = len(affected) + len(clean)
    if not affected:
        return "no-divergence", [], 0, measured
    scored = rank_candidates(affected, clean, routing)
    ambiguous = (
        len(scored) >= 2
        and scored[0]["score"] - scored[1]["score"] <= SCORE_TIE_EPS
    )
    return ("ambiguous" if ambiguous else "named"), scored, len(affected), measured


def localize_failure(
    completions: Sequence[Optional[Dict[str, float]]],
    durations: Sequence[Optional[float]],
    onset: int,
    routing: RoutingTable,
    truth_link: Optional[str] = None,
    *,
    end: Optional[int] = None,
    baseline_end: Optional[int] = None,
    ratio: float = DIVERGENCE_RATIO,
) -> Dict[str, object]:
    """Localize a persistent failure from a campaign's measurement record.

    ``completions`` / ``durations`` are *planned-iteration aligned* —
    slot ``i`` holds iteration ``i``'s per-host completion-time dict and
    broadcast duration, or ``None`` where a quorum campaign lost the
    iteration.  ``onset`` is the failure's first planned iteration;
    ``end`` bounds the observed window (exclusive, default: campaign
    end); ``baseline_end`` bounds the healthy window (default:
    ``onset``).

    Returns a verdict dict: ``localized_link`` (``None`` unless a single
    candidate wins outright), ``localization_status`` (``named`` /
    ``ambiguous`` / ``no-divergence`` / ``no-baseline`` /
    ``no-measurements``), the ranked ``localization_candidates``,
    ``localization_rank`` of ``truth_link`` when given, and
    ``time_to_localize_s`` — measurement seconds from the onset until
    the incremental verdict first agreed with the full-window one.
    """
    METRICS.count("localization.runs")
    if end is None:
        end = len(completions)
    if baseline_end is None:
        baseline_end = onset
    out: Dict[str, object] = {
        "localized_link": None,
        "localization_status": "no-baseline",
        "localization_rank": None,
        "localization_candidates": [],
        "affected_pairs": 0,
        "measured_pairs": 0,
        "true_link": truth_link,
        "iterations_to_localize": None,
        "time_to_localize_s": None,
    }
    base_records = [c for c in completions[:baseline_end] if c is not None]
    if not base_records:
        return out
    observed_idx = [i for i in range(onset, end) if completions[i] is not None]
    if not observed_idx:
        out["localization_status"] = "no-measurements"
        return out

    baseline = _mean_completions(base_records)
    status, scored, affected_n, measured_n = _window_verdict(
        baseline,
        _mean_completions([completions[i] for i in observed_idx]),
        routing,
        ratio,
    )
    out.update(
        localization_status=status,
        localization_candidates=[dict(c) for c in scored[:MAX_CANDIDATES]],
        affected_pairs=affected_n,
        measured_pairs=measured_n,
        localization_rank=_truth_rank(scored, truth_link),
    )
    if status == "named":
        METRICS.count("localization.named")
        out["localized_link"] = scored[0]["link"]
        # Incremental cost: the first onset-anchored prefix whose
        # unambiguous verdict already names the full window's winner.
        running: List[Dict[str, float]] = []
        for k, i in enumerate(observed_idx):
            running.append(completions[i])
            p_status, p_scored, _, _ = _window_verdict(
                baseline, _mean_completions(running), routing, ratio
            )
            if p_status == "named" and p_scored[0]["link"] == out["localized_link"]:
                out["iterations_to_localize"] = k + 1
                out["time_to_localize_s"] = float(
                    sum(
                        durations[j]
                        for j in range(onset, i + 1)
                        if j < len(durations) and durations[j] is not None
                    )
                )
                break
    elif status == "ambiguous":
        METRICS.count("localization.ambiguous")
    return out


def localize_epochs(
    completions: Sequence[Optional[Dict[str, float]]],
    durations: Sequence[Optional[float]],
    onsets: Sequence[int],
    routing: RoutingTable,
    truth_links: Optional[Sequence[Optional[str]]] = None,
    *,
    ratio: float = DIVERGENCE_RATIO,
) -> List[Dict[str, object]]:
    """Per-epoch localization for a failure that relocates mid-campaign.

    ``onsets`` are the strictly increasing first iterations of each
    failure epoch; epoch ``k`` spans ``[onsets[k], onsets[k+1])`` (the
    last runs to the campaign's end).  Every epoch is judged against the
    *pre-first-onset* baseline — once a failure has been active, later
    windows are no longer healthy references.
    """
    onsets = [int(o) for o in onsets]
    if any(b <= a for a, b in zip(onsets, onsets[1:])):
        raise ValueError("epoch onsets must be strictly increasing")
    verdicts = []
    for k, onset in enumerate(onsets):
        end = onsets[k + 1] if k + 1 < len(onsets) else len(completions)
        truth = truth_links[k] if truth_links else None
        verdict = localize_failure(
            completions,
            durations,
            onset,
            routing,
            truth,
            end=end,
            baseline_end=onsets[0],
            ratio=ratio,
        )
        verdict["epoch"] = k
        verdict["onset_iteration"] = onset
        verdict["end_iteration"] = end
        verdicts.append(verdict)
    return verdicts
