"""Presentation helpers: DOT export, ASCII rendering of clusterings and metrics.

The paper's figures are Graphviz renderings; in a headless test environment
we export equivalent DOT files (so they can be rendered with ``neato`` if
available) and provide plain-text renderings that the examples and the
benchmark harness print.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.clustering.partition import Partition
from repro.graph.wgraph import WeightedGraph
from repro.tomography.metric import EdgeMetric

Node = Hashable

#: Shapes used for ground-truth clusters, mirroring the paper's figures.
_DOT_SHAPES = ("diamond", "circle", "triangle", "box", "pentagon", "hexagon", "ellipse")


def render_dot(
    graph: WeightedGraph,
    ground_truth: Optional[Partition] = None,
    top_edge_fraction: float = 0.5,
    graph_name: str = "tomography",
) -> str:
    """Render a measured graph as a Graphviz DOT string.

    Matches the paper's rendering conventions: node shape encodes the ground
    truth cluster, edge length is inversely proportional to weight, and only
    the top ``top_edge_fraction`` of edges by weight are drawn.
    """
    if not 0.0 < top_edge_fraction <= 1.0:
        raise ValueError("top_edge_fraction must be in (0, 1]")
    drawn = graph.top_weight_fraction(top_edge_fraction)
    lines = [f'graph "{graph_name}" {{', "  layout=neato;", "  node [style=filled];"]
    for node in graph.nodes():
        shape = "circle"
        if ground_truth is not None and node in ground_truth:
            shape = _DOT_SHAPES[ground_truth.cluster_index(node) % len(_DOT_SHAPES)]
        lines.append(f'  "{node}" [shape={shape}];')
    max_weight = max((w for _, _, w in drawn.edges()), default=1.0)
    for u, v, w in drawn.edges():
        if u == v or w <= 0:
            continue
        length = max_weight / w
        lines.append(f'  "{u}" -- "{v}" [len={length:.4f}, weight={w:.2f}];')
    lines.append("}")
    return "\n".join(lines)


def ascii_cluster_table(partition: Partition, ground_truth: Optional[Partition] = None) -> str:
    """Plain-text table of clusters with optional ground-truth composition."""
    lines: List[str] = []
    for idx, cluster in enumerate(partition.clusters):
        members = sorted(map(str, cluster))
        header = f"cluster {idx} ({len(members)} nodes)"
        if ground_truth is not None:
            composition: Dict[int, int] = {}
            for node in cluster:
                if node in ground_truth:
                    truth_idx = ground_truth.cluster_index(node)
                    composition[truth_idx] = composition.get(truth_idx, 0) + 1
            detail = ", ".join(
                f"truth-{k}: {v}" for k, v in sorted(composition.items())
            )
            header += f"  [{detail}]"
        lines.append(header)
        for chunk_start in range(0, len(members), 4):
            lines.append("    " + "  ".join(members[chunk_start : chunk_start + 4]))
    return "\n".join(lines)


def render_fig4_bars(
    local_edges: Mapping[str, float],
    remote_edges: Mapping[str, float],
    width: int = 50,
) -> str:
    """ASCII bar chart of a node's edge metrics, local cluster vs remote (Fig. 4)."""
    if width < 10:
        raise ValueError("width must be at least 10 characters")
    all_values = list(local_edges.values()) + list(remote_edges.values())
    peak = max(all_values) if all_values else 1.0
    peak = peak if peak > 0 else 1.0

    def bars(edges: Mapping[str, float]) -> List[str]:
        lines = []
        for peer, value in sorted(edges.items(), key=lambda kv: -kv[1]):
            filled = int(round(width * value / peak))
            lines.append(f"  {peer:<32} {'#' * filled:<{width}} {value:8.1f}")
        return lines

    out = ["Peers from local cluster:"]
    out += bars(local_edges) or ["  (none)"]
    out.append("Peers from remote clusters:")
    out += bars(remote_edges) or ["  (none)"]
    local_total = sum(local_edges.values())
    remote_total = sum(remote_edges.values())
    out.append(
        f"totals: local={local_total:.0f} fragments, remote={remote_total:.0f} fragments"
    )
    return "\n".join(out)


def metric_summary(metric: EdgeMetric) -> str:
    """One-paragraph text summary of an aggregated metric."""
    weights = metric.weights[np.triu_indices(len(metric.labels), k=1)]
    nonzero = weights[weights > 0]
    lines = [
        f"hosts: {len(metric.labels)}",
        f"iterations aggregated: {metric.iterations}",
        f"edges with traffic: {nonzero.size} / {weights.size}",
    ]
    if nonzero.size:
        lines.append(
            "edge weight (fragments/iteration): "
            f"min={nonzero.min():.1f} median={np.median(nonzero):.1f} max={nonzero.max():.1f}"
        )
    return "\n".join(lines)
