"""Convergence of the clustering with the number of broadcast iterations (Fig. 13).

The paper's Fig. 13 plots, for each dataset, the NMI between the clustering
computed from the first ``k`` iterations and the ground truth, as ``k`` grows.
:func:`nmi_convergence` computes exactly that curve from a measurement
record, and :class:`ConvergenceStudy` adds the summary statistics quoted in
the text (iterations needed to reach / stay at a target NMI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.clustering.nmi import overlapping_nmi
from repro.clustering.partition import Partition
from repro.graph.wgraph import WeightedGraph
from repro.tomography.measurement import MeasurementRecord
from repro.tomography.metric import metric_graph


def nmi_convergence(
    record: MeasurementRecord,
    ground_truth: Partition,
    clusterer: Callable[[WeightedGraph], Partition],
) -> List[float]:
    """Overlapping NMI after 1, 2, ..., n aggregated iterations."""
    truth = ground_truth.restrict(record.hosts)
    curve: List[float] = []
    for metric in record.cumulative_aggregates():
        graph = metric_graph(metric)
        if graph.total_weight() <= 0:
            partition = Partition.whole(record.hosts)
        else:
            partition = clusterer(graph)
        curve.append(overlapping_nmi(partition, truth))
    return curve


@dataclass
class ConvergenceStudy:
    """Summary of an NMI-vs-iterations curve.

    Attributes
    ----------
    dataset:
        Name of the dataset (``"B"``, ``"B-T"``, ... as in Fig. 13).
    curve:
        NMI after each number of aggregated iterations.
    """

    dataset: str
    curve: List[float] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        return len(self.curve)

    @property
    def final_nmi(self) -> float:
        if not self.curve:
            raise ValueError("empty convergence curve")
        return self.curve[-1]

    def iterations_to_reach(self, target: float) -> Optional[int]:
        """First iteration count whose NMI is at least ``target`` (1-based)."""
        for i, value in enumerate(self.curve, start=1):
            if value >= target - 1e-12:
                return i
        return None

    def iterations_to_converge(self, target: float = 0.999) -> Optional[int]:
        """First iteration count from which the NMI stays at/above ``target``."""
        stable_from: Optional[int] = None
        for i, value in enumerate(self.curve, start=1):
            if value >= target - 1e-12:
                if stable_from is None:
                    stable_from = i
            else:
                stable_from = None
        return stable_from

    def is_monotone_after(self, start: int = 1, tolerance: float = 0.15) -> bool:
        """True if the curve never drops by more than ``tolerance`` after ``start``."""
        values = self.curve[start - 1 :]
        return all(b >= a - tolerance for a, b in zip(values, values[1:]))

    @classmethod
    def from_record(
        cls,
        dataset: str,
        record: MeasurementRecord,
        ground_truth: Partition,
        clusterer: Callable[[WeightedGraph], Partition],
    ) -> "ConvergenceStudy":
        return cls(dataset=dataset, curve=nmi_convergence(record, ground_truth, clusterer))
