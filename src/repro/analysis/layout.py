"""Force-directed layouts (Kamada–Kawai and Fruchterman–Reingold).

The paper renders each measured network with the Kamada–Kawai algorithm
(Graphviz "neato"), making edge lengths inversely proportional to the edge
weight; the visual clusters line up with the ground truth, which is the
qualitative argument (§III-C, citing Noack 2009) that a graph-clustering
method will recover the logical clusters.  These implementations reproduce
that step without Graphviz: Kamada–Kawai as stress minimisation over the
graph-theoretic distances (via ``scipy.optimize``), and a simple
Fruchterman–Reingold spring embedding as a cross-check.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np
from scipy import optimize

from repro.clustering.partition import Partition
from repro.graph.wgraph import WeightedGraph

Node = Hashable


def _distance_matrix(graph: WeightedGraph, order: List[Node]) -> np.ndarray:
    """All-pairs shortest-path distances with edge length = 1 / weight.

    Disconnected pairs get a distance slightly above the largest finite
    distance, which keeps the stress objective bounded (the same trick the
    paper's rendering effectively applies by only drawing heavy edges).
    """
    index = {node: i for i, node in enumerate(order)}
    n = len(order)
    dist = np.full((n, n), np.inf)
    np.fill_diagonal(dist, 0.0)
    for u, v, w in graph.edges():
        if u == v or w <= 0:
            continue
        length = 1.0 / w
        i, j = index[u], index[v]
        dist[i, j] = min(dist[i, j], length)
        dist[j, i] = min(dist[j, i], length)
    # Floyd–Warshall (n is at most a few hundred in this application).
    for k in range(n):
        dist = np.minimum(dist, dist[:, k : k + 1] + dist[k : k + 1, :])
    finite = dist[np.isfinite(dist)]
    fallback = (finite.max() * 1.5 + 1.0) if finite.size else 1.0
    dist[~np.isfinite(dist)] = fallback
    return dist


def kamada_kawai_layout(
    graph: WeightedGraph,
    seed: int = 0,
    iterations: int = 300,
) -> Dict[Node, Tuple[float, float]]:
    """2-D Kamada–Kawai (stress-minimisation) layout of a weighted graph.

    Edge lengths are the reciprocal of the edge weight, so strongly
    communicating nodes are placed close together, exactly as in the paper's
    figures.
    """
    order = graph.nodes()
    n = len(order)
    if n == 0:
        return {}
    if n == 1:
        return {order[0]: (0.0, 0.0)}
    dist = _distance_matrix(graph, order)
    scale = dist[dist > 0].mean() if (dist > 0).any() else 1.0
    dist = dist / scale
    weights = 1.0 / np.maximum(dist, 1e-6) ** 2
    np.fill_diagonal(weights, 0.0)

    rng = np.random.default_rng(seed)
    initial = rng.normal(size=(n, 2))

    triu_i, triu_j = np.triu_indices(n, k=1)
    target = dist[triu_i, triu_j]
    w = weights[triu_i, triu_j]

    def stress(flat: np.ndarray) -> Tuple[float, np.ndarray]:
        pos = flat.reshape(n, 2)
        delta = pos[triu_i] - pos[triu_j]
        lengths = np.sqrt((delta ** 2).sum(axis=1)) + 1e-12
        diff = lengths - target
        value = float((w * diff ** 2).sum())
        grad_pairs = (2.0 * w * diff / lengths)[:, None] * delta
        grad = np.zeros_like(pos)
        np.add.at(grad, triu_i, grad_pairs)
        np.add.at(grad, triu_j, -grad_pairs)
        return value, grad.ravel()

    result = optimize.minimize(
        stress,
        initial.ravel(),
        jac=True,
        method="L-BFGS-B",
        options={"maxiter": iterations},
    )
    positions = result.x.reshape(n, 2)
    return {node: (float(x), float(y)) for node, (x, y) in zip(order, positions)}


def fruchterman_reingold_layout(
    graph: WeightedGraph,
    seed: int = 0,
    iterations: int = 200,
) -> Dict[Node, Tuple[float, float]]:
    """Classic spring-embedding layout; used as a cross-check of the KK layout."""
    order = graph.nodes()
    n = len(order)
    if n == 0:
        return {}
    index = {node: i for i, node in enumerate(order)}
    rng = np.random.default_rng(seed)
    pos = rng.uniform(-1.0, 1.0, size=(n, 2))
    weight_matrix = np.zeros((n, n))
    for u, v, w in graph.edges():
        if u == v:
            continue
        weight_matrix[index[u], index[v]] = w
        weight_matrix[index[v], index[u]] = w
    if weight_matrix.max() > 0:
        weight_matrix = weight_matrix / weight_matrix.max()
    k = 1.0 / math.sqrt(n)
    temperature = 0.1
    for step in range(iterations):
        delta = pos[:, None, :] - pos[None, :, :]
        distance = np.sqrt((delta ** 2).sum(axis=2)) + 1e-9
        repulsion = (k ** 2) / distance
        attraction = weight_matrix * distance / k
        force = (repulsion - attraction)[:, :, None] * delta / distance[:, :, None]
        displacement = force.sum(axis=1)
        length = np.sqrt((displacement ** 2).sum(axis=1)) + 1e-9
        pos += displacement / length[:, None] * np.minimum(length, temperature)[:, None]
        temperature *= 0.97
    return {node: (float(x), float(y)) for node, (x, y) in zip(order, pos)}


def layout_cluster_separation(
    positions: Dict[Node, Tuple[float, float]], partition: Partition
) -> float:
    """Silhouette-like separation score of a layout w.r.t. a partition.

    Returns the ratio of mean inter-cluster distance to mean intra-cluster
    distance; values well above 1 mean the layout visually separates the
    clusters, which is the qualitative claim of the paper's Figs. 8–12.
    """
    nodes = [node for node in positions if node in partition]
    if len(nodes) < 2:
        raise ValueError("need at least two positioned nodes covered by the partition")
    coords = np.array([positions[node] for node in nodes])
    labels = np.array([partition.cluster_index(node) for node in nodes])
    delta = coords[:, None, :] - coords[None, :, :]
    distance = np.sqrt((delta ** 2).sum(axis=2))
    same = labels[:, None] == labels[None, :]
    np.fill_diagonal(same, False)
    different = ~ (labels[:, None] == labels[None, :])
    intra = distance[same]
    inter = distance[different]
    if intra.size == 0 or inter.size == 0:
        return float("inf") if intra.size == 0 else 0.0
    return float(inter.mean() / max(intra.mean(), 1e-12))
