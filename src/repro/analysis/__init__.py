"""Analysis and presentation helpers: layouts, convergence curves, rendering."""

from repro.analysis.layout import fruchterman_reingold_layout, kamada_kawai_layout, layout_cluster_separation
from repro.analysis.convergence import ConvergenceStudy, nmi_convergence
from repro.analysis.visualize import ascii_cluster_table, render_dot, render_fig4_bars

__all__ = [
    "kamada_kawai_layout",
    "fruchterman_reingold_layout",
    "layout_cluster_separation",
    "ConvergenceStudy",
    "nmi_convergence",
    "ascii_cluster_table",
    "render_dot",
    "render_fig4_bars",
]
