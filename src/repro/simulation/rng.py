"""Seeded random-stream management.

Every stochastic component in the reproduction (BitTorrent peer selection,
choking, piece selection, measurement scheduling, clustering tie-breaking)
draws from its own named stream derived from a single experiment seed.  This
gives two properties the paper's methodology needs:

* *independent iterations* — each BitTorrent broadcast iteration uses a fresh
  sub-stream, so single-run variance (Fig. 5) is meaningful;
* *reproducibility* — the whole experiment replays bit-for-bit from one seed,
  which is what lets the test-suite assert on clustering outcomes.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Optional

import numpy as np


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a 63-bit child seed from ``base_seed`` and a label path.

    The derivation hashes the textual representation of the labels with
    SHA-256, so streams are stable across Python versions and insensitive to
    dictionary ordering.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(repr(label).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big") & ((1 << 63) - 1)


class RandomStreams:
    """A family of named, independently-seeded NumPy generators.

    Parameters
    ----------
    seed:
        Base experiment seed.  ``None`` draws a random base seed (recorded in
        :attr:`seed` so the run can still be replayed).
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        if seed is None:
            seed = int(np.random.SeedSequence().entropy) & ((1 << 63) - 1)
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, *labels: object) -> np.random.Generator:
        """Return (creating on first use) the generator for a label path."""
        key = "/".join(repr(x) for x in labels)
        if key not in self._streams:
            self._streams[key] = np.random.default_rng(derive_seed(self.seed, *labels))
        return self._streams[key]

    def spawn(self, *labels: object) -> "RandomStreams":
        """Create a child family whose base seed is derived from this one."""
        return RandomStreams(derive_seed(self.seed, "spawn", *labels))

    def shuffled(self, items: Iterable, *labels: object) -> list:
        """Return ``items`` as a list shuffled with the named stream."""
        out = list(items)
        self.stream(*labels).shuffle(out)
        return out

    def choice(self, items: Iterable, *labels: object):
        """Pick one element from ``items`` using the named stream."""
        out = list(items)
        if not out:
            raise ValueError("cannot choose from an empty sequence")
        idx = int(self.stream(*labels).integers(0, len(out)))
        return out[idx]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self.seed}, streams={len(self._streams)})"
