"""Discrete-event simulation core used by the network and BitTorrent substrates.

The simulator is deliberately small: a monotonic clock, a binary-heap event
queue and a handful of helpers for scheduling callbacks.  Everything that
needs "time" in the reproduction (fluid network steps, BitTorrent choking
rounds, NetPIPE probes, baseline tomography schedules) runs on top of
:class:`repro.simulation.engine.Simulator`.
"""

from repro.simulation.engine import Event, EventQueue, Simulator, SimulationError
from repro.simulation.rng import RandomStreams, derive_seed

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "SimulationError",
    "RandomStreams",
    "derive_seed",
]
