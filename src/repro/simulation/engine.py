"""A minimal discrete-event simulation engine.

The engine follows the classic event-list design: events are ``(time, order,
callback)`` triples kept in a binary heap; :meth:`Simulator.run` pops them in
time order and invokes the callbacks.  Callbacks may schedule further events.

The engine is single-threaded and deterministic: ties on the timestamp are
broken by insertion order, so a simulation driven by seeded random streams
always replays identically.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised when the simulator is used inconsistently.

    Examples include scheduling an event in the past or running a simulator
    that has already been stopped with a fatal error.
    """


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Simulated time (seconds) at which the callback fires.
    order:
        Monotonic tie-breaker assigned by the queue; two events with equal
        ``time`` fire in scheduling order.
    callback:
        Zero-argument callable invoked when the event fires.  Excluded from
        ordering comparisons.
    cancelled:
        Lazily-cancelled events stay in the heap but are skipped when popped.
    """

    time: float
    order: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Opaque owner tag (e.g. the workload actor that scheduled the event);
    #: lets a shared-agenda driver attribute each dispatch to its actor.
    owner: Optional[object] = field(default=None, compare=False, repr=False)
    _queue: Optional["EventQueue"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so that it will be skipped when its time comes."""
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._live -= 1
                queue._maybe_compact()


#: Heaps smaller than this are never compacted: the O(n) rebuild would cost
#: more than the handful of dead entries it reclaims.
_COMPACT_MIN_HEAP = 64


class EventQueue:
    """Binary-heap priority queue of :class:`Event` objects.

    The number of live (non-cancelled) events is tracked with a counter
    maintained on push/pop/cancel, so ``len(queue)`` is O(1) instead of a
    full heap scan — simulations poll :attr:`Simulator.pending` freely.

    Cancelled entries are dropped lazily: normally when they surface at the
    heap top, but once they outnumber the live events (churn and rechoke
    cancellations produce exactly this pattern) the whole heap is compacted
    in one pass, so the memory footprint stays O(live events).
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def _maybe_compact(self) -> None:
        """Rebuild the heap once cancelled entries exceed the live ones.

        Events compare by ``(time, order)``, so re-heapifying the surviving
        entries preserves the deterministic dispatch order exactly.
        """
        heap = self._heap
        if len(heap) < _COMPACT_MIN_HEAP or len(heap) - self._live <= self._live:
            return
        survivors = []
        for event in heap:
            if event.cancelled:
                event._queue = None
            else:
                survivors.append(event)
        heapq.heapify(survivors)
        self._heap = survivors

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        owner: Optional[object] = None,
    ) -> Event:
        """Insert a callback at ``time`` and return the event handle."""
        event = Event(
            time=time, order=next(self._counter), callback=callback, owner=owner
        )
        event._queue = self
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                event._queue = None
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        for event in self._heap:
            event._queue = None
        self._heap.clear()
        self._live = 0


class Simulator:
    """Discrete-event simulator with a floating-point clock in seconds.

    Parameters
    ----------
    start_time:
        Initial value of the clock.  Defaults to ``0.0``.

    Notes
    -----
    The simulator is re-usable: after :meth:`run` drains the queue, further
    events may be scheduled and :meth:`run` called again; the clock keeps
    advancing monotonically.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        if not math.isfinite(start_time):
            raise SimulationError("start_time must be finite")
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        owner: Optional[object] = None,
    ) -> Event:
        """Schedule ``callback`` at absolute time ``time``.

        ``owner`` is an opaque tag carried on the event; shared-agenda
        drivers (the multi-tenant workload engine) use it to attribute each
        dispatch to the actor that scheduled it.

        Raises
        ------
        SimulationError
            If ``time`` lies in the simulated past or is not finite.
        """
        if not math.isfinite(time):
            raise SimulationError(f"cannot schedule event at non-finite time {time!r}")
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event in the past (now={self._now}, requested={time})"
            )
        return self._queue.push(max(time, self._now), callback, owner=owner)

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[], None],
        owner: Optional[object] = None,
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback, owner=owner)

    def peek_time(self) -> Optional[float]:
        """Firing time of the next live event, or ``None`` when idle.

        Lets an external driver interleave other work (e.g. fluid-network
        transitions) between events without popping them.
        """
        return self._queue.peek_time()

    def step(self) -> Optional[Event]:
        """Pop and dispatch exactly one event; return it (``None`` when idle).

        The workload engine drives the shared agenda with this instead of
        :meth:`run` so it can advance the fluid network to each event's time
        before the callback fires.
        """
        event = self._queue.pop()
        if event is None:
            return None
        self._now = max(self._now, event.time)
        event.callback()
        self.events_processed += 1
        return event

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events in time order.

        Parameters
        ----------
        until:
            Optional horizon; events scheduled strictly after it are left in
            the queue and the clock is advanced to ``until``.
        max_events:
            Optional safety valve on the number of callbacks invoked.

        Returns
        -------
        float
            The simulation time when the run loop exits.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while True:
                if self._stopped:
                    break
                if max_events is not None and processed >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until + 1e-12:
                    break
                event = self._queue.pop()
                if event is None:
                    break
                self._now = max(self._now, event.time)
                event.callback()
                processed += 1
                self.events_processed += 1
        finally:
            self._running = False
        if until is not None and not self._stopped:
            self._now = max(self._now, until)
        return self._now

    def advance_to(self, time: float) -> None:
        """Advance the clock without processing events (used by fluid stepping)."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot move the clock backwards (now={self._now}, requested={time})"
            )
        self._now = max(self._now, time)
