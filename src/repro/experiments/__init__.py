"""Named experiment datasets and per-figure runners reproducing the evaluation."""

from repro.experiments.datasets import (
    DATASETS,
    Dataset,
    dataset,
    dataset_2x2,
    dataset_b,
    dataset_bgt,
    dataset_bgtl,
    dataset_bt,
    dataset_gt,
)
from repro.experiments.runners import (
    run_baseline_cost,
    run_broadcast_efficiency,
    run_dataset_clustering,
    run_fig4,
    run_fig5,
    run_fig13,
    run_netpipe_reference,
)

__all__ = [
    "DATASETS",
    "Dataset",
    "dataset",
    "dataset_2x2",
    "dataset_b",
    "dataset_bt",
    "dataset_gt",
    "dataset_bgt",
    "dataset_bgtl",
    "run_dataset_clustering",
    "run_fig4",
    "run_fig5",
    "run_fig13",
    "run_broadcast_efficiency",
    "run_baseline_cost",
    "run_netpipe_reference",
]
