"""Per-figure experiment runners.

Each function regenerates the data behind one of the paper's tables/figures
and returns a plain dictionary of the numbers (so benchmarks can both assert
on the shape and print paper-vs-measured rows).  All runners take explicit
scale parameters — node counts, fragment counts, iteration counts — because
the simulated campaigns are run at laptop scale by default; the *shape* of
the results (who wins, which edges are heavy, where the NMI converges) is
what reproduces the paper, not the absolute magnitudes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.convergence import ConvergenceStudy, nmi_convergence
from repro.clustering.louvain import louvain
from repro.clustering.partition import Partition
from repro.experiments.datasets import Dataset, dataset, dataset_b
from repro.graph.wgraph import WeightedGraph
from repro.network.grid5000 import Grid5000Builder, build_multi_site, default_cluster_of
from repro.network.routing import RoutingTable
from repro.scenarios.executors import (
    BroadcastTask,
    CampaignExecutor,
    SerialExecutor,
    default_executor,
)
from repro.tomography.baselines import (
    PairwiseSaturationTomography,
    TripletSaturationTomography,
)
from repro.tomography.measurement import MeasurementCampaign
from repro.tomography.metric import edge_weight_history, local_remote_split
from repro.tomography.netpipe import NetPipeProbe
from repro.tomography.pipeline import TomographyPipeline, TomographyResult, default_swarm_config


def _default_clusterer(graph: WeightedGraph) -> Partition:
    return louvain(graph).partition


def _resolve_executor(executor: Optional[CampaignExecutor]) -> Optional[CampaignExecutor]:
    """Explicit executor, else the environment's default (usually ``None``)."""
    return executor if executor is not None else default_executor()


# ---------------------------------------------------------------------- #
# generic dataset clustering (Figs. 8-12 and the 2x2 experiment)
# ---------------------------------------------------------------------- #
def run_dataset_clustering(
    ds: Dataset,
    iterations: int = 8,
    num_fragments: int = 600,
    seed: int = 7,
    track_convergence: bool = False,
    rotate_root: bool = False,
    executor: Optional[CampaignExecutor] = None,
    stepping: Optional[str] = None,
    workload=None,
    faults=None,
    quorum: Optional[int] = None,
) -> Dict[str, object]:
    """Run the full tomography pipeline on a dataset and summarise the outcome.

    ``workload`` (a :class:`~repro.workloads.WorkloadSpec` or preset name)
    embeds every measured broadcast in a multi-tenant workload — concurrent
    broadcasts, cross traffic, churn, capacity drift on a shared clock —
    instead of the paper's idle network (``repro run <scenario> --workload
    cross-heavy``; see docs/workloads.md).  ``faults`` (a
    :class:`~repro.faults.FaultPlan` or preset name) additionally injects
    deterministic failures into every iteration, and ``quorum`` lets the
    campaign proceed with ≥k surviving iterations instead of aborting on
    the first failed one (see docs/faults.md).
    """
    if workload is not None:
        from repro.workloads import workload_from_name

        workload = workload_from_name(workload)
    config = default_swarm_config(num_fragments, stepping=stepping)
    pipeline = TomographyPipeline(
        ds.topology,
        hosts=ds.hosts,
        ground_truth=ds.ground_truth,
        config=config,
        seed=seed,
        rotate_root=rotate_root,
        executor=_resolve_executor(executor),
        workload=workload,
        faults=faults,
    )
    result = pipeline.run(
        iterations, track_convergence=track_convergence, quorum=quorum
    )
    summary = {
        "dataset": ds.name,
        "hosts": ds.num_hosts,
        "iterations": iterations,
        "achieved_iterations": result.achieved_iterations,
        "degraded": result.degraded,
        "found_clusters": result.num_clusters,
        "expected_clusters": ds.expectation.expected_clusters,
        "paper_nmi": ds.expectation.paper_nmi,
        "measured_nmi": result.nmi,
        "measured_classical_nmi": result.classical_nmi,
        "modularity": result.modularity,
        "measurement_time_s": result.measurement_time,
        "nmi_per_iteration": result.nmi_per_iteration,
        "stepping": config.stepping,
        "control_steps": result.record.total_control_steps(),
        "result": result,
        "ground_truth": ds.ground_truth,
    }
    if workload is not None or pipeline.campaign.faults is not None:
        from repro.tomography.interference import summarize_workload_stats

        if workload is not None:
            summary.update(workload.metadata())
        if pipeline.campaign.faults is not None:
            summary.update(pipeline.campaign.faults.metadata())
        summary.update(summarize_workload_stats(result.record.workload_stats))
    if quorum is not None and executor is not None:
        # Quorum campaigns take the resilient in-process loop (per-iteration
        # try/except), never the fan-out path — record what actually ran.
        summary["executor"] = "serial"
    return summary


def run_named_dataset(
    name: str,
    per_site: Optional[int] = None,
    iterations: int = 8,
    num_fragments: int = 600,
    seed: int = 7,
    executor: Optional[CampaignExecutor] = None,
    stepping: Optional[str] = None,
    **dataset_kwargs,
) -> Dict[str, object]:
    """Convenience wrapper: build a named dataset (optionally scaled) and run it."""
    if per_site is not None:
        if name == "B":
            ds = dataset_b(
                bordeplage=per_site, bordereau=max(per_site - per_site // 4, 1),
                borderline=max(per_site // 4, 1),
            )
        elif name == "2x2":
            ds = dataset(name)
        else:
            ds = dataset(name, per_site=per_site)
    else:
        ds = dataset(name, **dataset_kwargs)
    return run_dataset_clustering(
        ds,
        iterations=iterations,
        num_fragments=num_fragments,
        seed=seed,
        executor=executor,
        stepping=stepping,
    )


# ---------------------------------------------------------------------- #
# Fig. 4 — per-edge metric of a fixed node, local vs remote
# ---------------------------------------------------------------------- #
def run_fig4(
    bordeplage: int = 16,
    bordereau: int = 12,
    borderline: int = 4,
    iterations: int = 12,
    num_fragments: int = 600,
    seed: int = 3,
    focus_host: Optional[str] = None,
    executor: Optional[CampaignExecutor] = None,
    stepping: Optional[str] = None,
) -> Dict[str, object]:
    """Metric values for all edges of a fixed node, split local vs remote.

    The paper's Fig. 4 uses a 64-node Bordeaux+remote configuration and shows
    that edges to local-cluster peers carry several times more fragments in
    total than edges to peers across the bottleneck.
    """
    ds = dataset_b(bordeplage=bordeplage, bordereau=bordereau, borderline=borderline)
    pipeline = TomographyPipeline(
        ds.topology,
        hosts=ds.hosts,
        ground_truth=ds.ground_truth,
        config=default_swarm_config(num_fragments, stepping=stepping),
        seed=seed,
        executor=_resolve_executor(executor),
    )
    result = pipeline.run(iterations, track_convergence=False)
    if focus_host is None:
        # A non-root Bordeplage node, as the paper fixes a random node.
        bordeplage_hosts = [
            h for h in ds.hosts if ds.topology.host(h).cluster == "bordeplage"
        ]
        focus_host = bordeplage_hosts[-1]
    local_hosts = ds.local_cluster_of(focus_host)
    local_edges, remote_edges = local_remote_split(result.metric, focus_host, local_hosts)
    local_total = float(sum(local_edges.values()))
    remote_total = float(sum(remote_edges.values()))
    return {
        "focus_host": focus_host,
        "iterations": iterations,
        "local_edges": local_edges,
        "remote_edges": remote_edges,
        "local_total": local_total,
        "remote_total": remote_total,
        "local_mean": local_total / max(len(local_edges), 1),
        "remote_mean": remote_total / max(len(remote_edges), 1),
        "paper_local_total": 22533.0,
        "paper_remote_total": 6337.0,
        "result": result,
    }


# ---------------------------------------------------------------------- #
# Fig. 5 — single-edge variance across independent runs
# ---------------------------------------------------------------------- #
def run_fig5(
    cluster_nodes: int = 24,
    iterations: int = 36,
    num_fragments: int = 400,
    seed: int = 11,
    executor: Optional[CampaignExecutor] = None,
    stepping: Optional[str] = None,
) -> Dict[str, object]:
    """Distribution of ``w(e)`` for one intra-cluster edge over independent runs.

    The paper observes 23 of 36 runs with zero exchanged fragments on the
    fixed edge, and 3–6304 fragments otherwise: a very high variance compared
    to the tight NetPIPE distribution.
    """
    builder = Grid5000Builder()
    topology = builder.build_single_site("bordeaux", {"bordereau": cluster_nodes})
    hosts = topology.host_names
    campaign = MeasurementCampaign(
        topology,
        default_swarm_config(num_fragments, stepping=stepping),
        hosts=hosts,
        seed=seed,
        executor=_resolve_executor(executor),
    )
    record = campaign.run(iterations)
    # A fixed edge between two non-root nodes of the same cluster.
    u, v = hosts[1], hosts[2]
    history = edge_weight_history(record.matrices, u, v)
    values = np.array(history, dtype=float)
    return {
        "edge": (u, v),
        "iterations": iterations,
        "history": history,
        "zero_runs": int(np.count_nonzero(values == 0)),
        "nonzero_min": float(values[values > 0].min()) if (values > 0).any() else 0.0,
        "nonzero_max": float(values.max()),
        "mean": float(values.mean()),
        "std": float(values.std()),
        "coefficient_of_variation": float(values.std() / values.mean()) if values.mean() > 0 else float("inf"),
        "paper_zero_runs": 23,
        "paper_iterations": 36,
        "record": record,
    }


# ---------------------------------------------------------------------- #
# Fig. 13 — NMI convergence with iterations, all datasets
# ---------------------------------------------------------------------- #
def run_fig13(
    datasets: Optional[Sequence[str]] = None,
    per_site: int = 8,
    iterations: int = 12,
    num_fragments: int = 500,
    seed: int = 5,
    executor: Optional[CampaignExecutor] = None,
    stepping: Optional[str] = None,
) -> Dict[str, ConvergenceStudy]:
    """NMI-vs-iterations curves for the Fig. 13 datasets (scaled down)."""
    names = list(datasets) if datasets is not None else ["B", "B-T", "G-T", "B-G-T", "B-G-T-L"]
    studies: Dict[str, ConvergenceStudy] = {}
    for name in names:
        if name == "B":
            ds = dataset_b(
                bordeplage=per_site,
                bordereau=max(per_site - per_site // 4, 1),
                borderline=max(per_site // 4, 1),
            )
        else:
            ds = dataset(name, per_site=per_site)
        campaign = MeasurementCampaign(
            ds.topology,
            default_swarm_config(num_fragments, stepping=stepping),
            hosts=ds.hosts,
            seed=seed,
            executor=_resolve_executor(executor),
        )
        record = campaign.run(iterations)
        studies[name] = ConvergenceStudy.from_record(
            name, record, ds.ground_truth, _default_clusterer
        )
    return studies


# ---------------------------------------------------------------------- #
# broadcast efficiency (Section II-B)
# ---------------------------------------------------------------------- #
def run_broadcast_efficiency(
    node_counts: Sequence[int] = (8, 16, 32),
    num_fragments: int = 400,
    sites: Sequence[str] = ("bordeaux", "grenoble", "toulouse", "lyon"),
    seed: int = 13,
    executor: Optional[CampaignExecutor] = None,
    stepping: Optional[str] = None,
) -> Dict[str, object]:
    """Broadcast completion time as a function of swarm size and file size.

    The paper reports ~20 s for 32, 64 and 128 nodes spread over up to 4
    sites, i.e. roughly constant in the node count and linear in the message
    size.  The same two shapes are measured here on the simulator.

    Every measured broadcast is an independent seeded task (its stream is
    derived from ``seed`` and a per-broadcast label), so the whole sweep
    fans out through the campaign executor — across topologies, not just
    within one campaign.
    """
    executor = _resolve_executor(executor) or SerialExecutor()
    tasks: List[BroadcastTask] = []
    node_hosts: List[int] = []
    for count in node_counts:
        per_site = max(count // len(sites), 1)
        request = {
            site: {default_cluster_of(site): per_site} for site in sites
        }
        topology = build_multi_site(request)
        config = default_swarm_config(num_fragments, stepping=stepping)
        node_hosts.append(len(topology.host_names))
        tasks.append(
            BroadcastTask(
                topology, config, None, seed, ((("nodes", count), None),)
            )
        )

    # Linear-in-size check on a fixed 4-site topology.
    request = {site: {default_cluster_of(site): 4} for site in sites}
    size_topology = build_multi_site(request)
    fragment_counts = (num_fragments // 2, num_fragments, num_fragments * 2)
    for fragments in fragment_counts:
        config = default_swarm_config(fragments, stepping=stepping)
        tasks.append(
            BroadcastTask(
                size_topology, config, None, seed, ((("fragments", fragments), None),)
            )
        )

    results = executor.run_tasks(tasks)
    durations: Dict[int, float] = {
        hosts: result.duration
        for hosts, result in zip(node_hosts, results[: len(node_hosts)])
    }
    size_durations: Dict[int, float] = {
        fragments: result.duration
        for fragments, result in zip(fragment_counts, results[len(node_hosts) :])
    }

    counts = sorted(durations)
    ratio_nodes = durations[counts[-1]] / durations[counts[0]]
    sizes = sorted(size_durations)
    ratio_size = size_durations[sizes[-1]] / size_durations[sizes[0]]
    return {
        "durations_by_nodes": durations,
        "durations_by_fragments": size_durations,
        "node_scaling_ratio": ratio_nodes,
        "size_scaling_ratio": ratio_size,
        "control_steps_by_nodes": {
            hosts: result.control_steps
            for hosts, result in zip(node_hosts, results[: len(node_hosts)])
        },
        "control_steps_by_fragments": {
            fragments: result.control_steps
            for fragments, result in zip(fragment_counts, results[len(node_hosts) :])
        },
        "stepping": results[0].stepping if results else (stepping or "event"),
        "paper_seconds_per_broadcast": 20.0,
    }


# ---------------------------------------------------------------------- #
# baseline measurement cost (Section II-B)
# ---------------------------------------------------------------------- #
def run_baseline_cost(
    node_counts: Sequence[int] = (6, 10, 14),
    probe_size: float = 16e6,
    num_fragments: int = 300,
    bt_iterations: int = 4,
    seed: int = 17,
    executor: Optional[CampaignExecutor] = None,
    stepping: Optional[str] = None,
) -> Dict[str, object]:
    """Measurement cost of the BitTorrent method vs the saturation baselines.

    Reproduces the efficiency argument: the baselines' simulated measurement
    time grows ~quadratically (pairwise) / cubically (triplet) with the node
    count, while the broadcast campaign's cost is roughly flat.
    """
    rows: List[Dict[str, float]] = []
    for count in node_counts:
        per_site = max(count // 2, 1)
        topology = build_multi_site(
            {
                "grenoble": {default_cluster_of("grenoble"): per_site},
                "toulouse": {default_cluster_of("toulouse"): per_site},
            }
        )
        hosts = topology.host_names

        campaign = MeasurementCampaign(
            topology,
            default_swarm_config(num_fragments, stepping=stepping),
            hosts=hosts,
            seed=seed,
            executor=_resolve_executor(executor),
        )
        record = campaign.run(bt_iterations)
        bt_time = record.total_measurement_time()

        pairwise = PairwiseSaturationTomography(
            topology, hosts=hosts, probe_size=probe_size, seed=seed
        )
        pairwise_result = pairwise.run()

        triplet = TripletSaturationTomography(
            topology, hosts=hosts, probe_size=probe_size, seed=seed
        )
        triplet_result = triplet.run()

        rows.append(
            {
                "nodes": len(hosts),
                "bittorrent_time_s": bt_time,
                "pairwise_time_s": pairwise_result.measurement_time,
                "pairwise_probes": pairwise_result.probes,
                "triplet_time_s": triplet_result.measurement_time,
                "triplet_probes": triplet_result.probes,
            }
        )
    return {
        "rows": rows,
        "paper_note": "pairwise tomography took ~1 hour for 20 nodes; "
        "BitTorrent campaign takes a few minutes",
    }


# ---------------------------------------------------------------------- #
# NetPIPE reference numbers (Sections II-C and IV-A)
# ---------------------------------------------------------------------- #
def run_netpipe_reference(repeats: int = 5) -> Dict[str, object]:
    """Intra-cluster and inter-site point-to-point bandwidth with variance.

    Paper values: ≈890 Mb/s inside an Ethernet cluster, ≈787 Mb/s between
    Bordeaux and Toulouse, both with very low run-to-run variance.
    """
    topology = build_multi_site(
        {
            "bordeaux": {"bordereau": 2},
            "toulouse": {default_cluster_of("toulouse"): 2},
        }
    )
    probe = NetPipeProbe(topology)
    bordeaux_hosts = [h for h in topology.host_names if h.startswith("bordeaux")]
    toulouse_hosts = [h for h in topology.host_names if h.startswith("toulouse")]

    intra = probe.probe(bordeaux_hosts[0], bordeaux_hosts[1])
    inter = probe.probe(bordeaux_hosts[0], toulouse_hosts[0])
    intra_repeats = probe.repeated_peak(bordeaux_hosts[0], bordeaux_hosts[1], repeats=repeats)
    inter_repeats = probe.repeated_peak(bordeaux_hosts[0], toulouse_hosts[0], repeats=repeats)

    return {
        "intra_cluster_mbps": intra.peak_megabits,
        "inter_site_mbps": inter.peak_megabits,
        "intra_cluster_std": float(np.std(intra_repeats)),
        "inter_site_std": float(np.std(inter_repeats)),
        "paper_intra_cluster_mbps": 890.0,
        "paper_inter_site_mbps": 787.0,
    }
