"""The paper's experimental datasets, expressed as topology + ground truth.

The paper names its datasets after the participating sites:

* ``2x2`` — 2 Bordeplage + 2 Borderline nodes (Section IV-B1); the 1 GbE
  inter-switch link is not a bottleneck at this scale, so the expected
  result is a single logical cluster;
* ``B``   — 64 Bordeaux nodes, 32 Bordeplage + 5 Borderline + 27 Bordereau
  (Fig. 8); ground truth has two logical clusters because Bordereau and
  Borderline share fast interconnects while Bordeplage sits behind the
  1 GbE bottleneck;
* ``BT``  — 32 Bordeaux + 32 Toulouse nodes (Fig. 9); the ground truth keeps
  the Bordeaux-internal split, giving three clusters, while the
  single-level clustering is expected to find only the two sites
  (NMI ≈ 0.7);
* ``GT``  — 32 Grenoble + 32 Toulouse (Fig. 10), two flat sites;
* ``BGT`` — 32 Bordeaux (well-connected clusters only) + 32 Grenoble +
  32 Toulouse (Fig. 11);
* ``BGTL`` — 16 nodes each in Bordeaux, Grenoble, Toulouse, Lyon (Fig. 12),
  the setting that needs the most iterations (~15) to converge.

Every dataset also records the paper's expectations (cluster count, NMI
behaviour) so the benchmark harness can print paper-vs-measured rows.

Scaled testbed
--------------
The paper runs 32 nodes per site (64–96 hosts per experiment).  The simulated
campaigns default to smaller node counts so that dozens of measurement
iterations stay cheap.  The contrast the metric relies on, however, is a
*contention ratio*: e.g. 32 Bordeplage nodes pushing through a single 1 GbE
inter-switch link, or two sites' worth of upload capacity squeezed through a
10 Gb/s Renater uplink.  To preserve those ratios at reduced scale, the
dataset factories scale the shared links (site bottleneck, site uplinks and
the Renater backbone) by ``requested nodes / reference nodes`` while leaving
the per-node access links untouched.  Full-scale datasets (32 per site) use
the unscaled, physical capacities.  This substitution is recorded in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.clustering.partition import Partition
from repro.network.grid5000 import (
    BORDEAUX_BOTTLENECK_CAPACITY,
    FAST_INTERCONNECT_CAPACITY,
    RENATER_CAPACITY,
    Grid5000Builder,
    default_cluster_of,
)
from repro.network.topology import Topology

#: Per-site node count the paper uses; capacity scaling is relative to this.
REFERENCE_PER_SITE = 32


def scaled_builder(per_site: int, reference: int = REFERENCE_PER_SITE) -> Grid5000Builder:
    """A topology builder whose shared links are scaled to ``per_site`` nodes.

    The per-node access links keep their physical 890 Mb/s capacity; the
    shared resources (Bordeaux's 1 GbE bottleneck, the 10 Gb/s intra-site
    interconnects and the Renater uplinks) are scaled by
    ``per_site / reference`` so that the contention ratios under all-to-all
    load match the paper's 32-nodes-per-site experiments.  With
    ``per_site >= reference`` the physical capacities are used unchanged.
    """
    if per_site < 1:
        raise ValueError("per_site must be at least 1")
    scale = min(per_site / float(reference), 1.0)
    return Grid5000Builder(
        bottleneck_capacity=BORDEAUX_BOTTLENECK_CAPACITY * scale,
        interconnect_capacity=FAST_INTERCONNECT_CAPACITY * scale,
        renater_capacity=RENATER_CAPACITY * scale,
    )


@dataclass(frozen=True)
class PaperExpectation:
    """What the paper reports for a dataset (the reproduction target *shape*)."""

    expected_clusters: int
    paper_nmi: float
    paper_iterations_to_converge: int
    description: str


@dataclass
class Dataset:
    """A named experimental setting: topology, participating hosts, ground truth."""

    name: str
    topology: Topology
    hosts: List[str]
    ground_truth: Partition
    expectation: PaperExpectation
    site_of: Dict[str, str] = field(default_factory=dict)

    @property
    def num_hosts(self) -> int:
        return len(self.hosts)

    def local_cluster_of(self, host: str) -> List[str]:
        """Hosts sharing the ground-truth cluster of ``host`` (excluding it)."""
        cluster = self.ground_truth.cluster_of(host)
        return sorted(h for h in cluster if h != host)


# ---------------------------------------------------------------------- #
# builders
# ---------------------------------------------------------------------- #
def _bordeaux_ground_truth(topology: Topology, hosts: List[str]) -> Partition:
    """Bordeaux logical ground truth: Bordeplage vs (Bordereau ∪ Borderline)."""
    bordeplage = {h for h in hosts if topology.host(h).cluster == "bordeplage"}
    rest = {h for h in hosts if h not in bordeplage}
    clusters = [c for c in (bordeplage, rest) if c]
    return Partition(clusters)


def dataset_2x2(seed_label: str = "2x2") -> Dataset:
    """Section IV-B1: 2 Bordeplage + 2 Borderline nodes, one logical cluster."""
    builder = Grid5000Builder()
    topology = builder.build_single_site(
        "bordeaux", {"bordeplage": 2, "borderline": 2}, name="grid5000-bordeaux-2x2"
    )
    hosts = topology.host_names
    # At this scale the 1 GbE inter-switch link is not a bottleneck, so the
    # *logical* ground truth is a single cluster (what the paper's method found
    # and what the text argues is correct for the 2x2 setting).
    ground_truth = Partition.whole(hosts)
    expectation = PaperExpectation(
        expected_clusters=1,
        paper_nmi=1.0,
        paper_iterations_to_converge=2,
        description="2+2 nodes, no effective bottleneck, single logical cluster",
    )
    return Dataset(
        name=seed_label,
        topology=topology,
        hosts=hosts,
        ground_truth=ground_truth,
        expectation=expectation,
        site_of={h: "bordeaux" for h in hosts},
    )


def dataset_b(bordeplage: int = 32, bordereau: int = 27, borderline: int = 5) -> Dataset:
    """Dataset 'B' (Fig. 8): one site, 64 nodes, two logical clusters."""
    builder = scaled_builder(bordeplage)
    topology = builder.build_single_site(
        "bordeaux",
        {"bordeplage": bordeplage, "bordereau": bordereau, "borderline": borderline},
    )
    hosts = topology.host_names
    ground_truth = _bordeaux_ground_truth(topology, hosts)
    expectation = PaperExpectation(
        expected_clusters=2,
        paper_nmi=1.0,
        paper_iterations_to_converge=2,
        description="Bordeaux 64 nodes; Bordeplage split off by the 1 GbE bottleneck",
    )
    return Dataset(
        name="B",
        topology=topology,
        hosts=hosts,
        ground_truth=ground_truth,
        expectation=expectation,
        site_of={h: "bordeaux" for h in hosts},
    )


def _multi_site_dataset(
    name: str,
    site_nodes: Mapping[str, int],
    split_bordeaux: bool,
    expectation: PaperExpectation,
    bordeaux_clusters: Optional[Mapping[str, int]] = None,
) -> Dataset:
    builder = scaled_builder(max(site_nodes.values()))
    request: Dict[str, Dict[str, int]] = {}
    for site, count in site_nodes.items():
        if site == "bordeaux":
            if bordeaux_clusters is not None:
                request[site] = dict(bordeaux_clusters)
            elif split_bordeaux:
                half = count // 2
                request[site] = {"bordeplage": half, "bordereau": count - half}
            else:
                # Only the well-connected clusters, as in the 3- and 4-site runs.
                request[site] = {"bordereau": count - count // 4, "borderline": count // 4}
        else:
            request[site] = {default_cluster_of(site): count}
    topology = builder.build_multi_site(request)
    hosts = topology.host_names
    site_of = {h: topology.host(h).site for h in hosts}

    clusters: List[set] = []
    for site in site_nodes:
        members = {h for h in hosts if site_of[h] == site}
        if site == "bordeaux" and split_bordeaux:
            bordeplage = {h for h in members if topology.host(h).cluster == "bordeplage"}
            rest = members - bordeplage
            clusters.extend(c for c in (bordeplage, rest) if c)
        else:
            clusters.append(members)
    ground_truth = Partition(clusters)
    return Dataset(
        name=name,
        topology=topology,
        hosts=hosts,
        ground_truth=ground_truth,
        expectation=expectation,
        site_of=site_of,
    )


def dataset_bt(per_site: int = 32) -> Dataset:
    """Dataset 'BT' (Fig. 9): Bordeaux + Toulouse, 3-way ground truth."""
    expectation = PaperExpectation(
        expected_clusters=2,
        paper_nmi=0.7,
        paper_iterations_to_converge=4,
        description=(
            "Bordeaux+Toulouse; single-level clustering finds the two sites, "
            "missing the Bordeaux-internal split, hence NMI ≈ 0.7"
        ),
    )
    return _multi_site_dataset(
        "B-T",
        {"bordeaux": per_site, "toulouse": per_site},
        split_bordeaux=True,
        expectation=expectation,
    )


def dataset_gt(per_site: int = 32) -> Dataset:
    """Dataset 'GT' (Fig. 10): Grenoble + Toulouse, two flat sites."""
    expectation = PaperExpectation(
        expected_clusters=2,
        paper_nmi=1.0,
        paper_iterations_to_converge=2,
        description="Grenoble+Toulouse, flat Ethernet within each site",
    )
    return _multi_site_dataset(
        "G-T",
        {"grenoble": per_site, "toulouse": per_site},
        split_bordeaux=False,
        expectation=expectation,
    )


def dataset_bgt(per_site: int = 32) -> Dataset:
    """Dataset 'BGT' (Fig. 11): Bordeaux (well-connected part) + Grenoble + Toulouse."""
    expectation = PaperExpectation(
        expected_clusters=3,
        paper_nmi=1.0,
        paper_iterations_to_converge=2,
        description="three sites, one logical cluster each",
    )
    return _multi_site_dataset(
        "B-G-T",
        {"bordeaux": per_site, "grenoble": per_site, "toulouse": per_site},
        split_bordeaux=False,
        expectation=expectation,
    )


def dataset_bgtl(per_site: int = 16) -> Dataset:
    """Dataset 'BGTL' (Fig. 12): four sites, 16 nodes each, slowest to converge."""
    expectation = PaperExpectation(
        expected_clusters=4,
        paper_nmi=1.0,
        paper_iterations_to_converge=15,
        description="four sites; needs the most iterations (~15) in the paper",
    )
    return _multi_site_dataset(
        "B-G-T-L",
        {
            "bordeaux": per_site,
            "grenoble": per_site,
            "toulouse": per_site,
            "lyon": per_site,
        },
        split_bordeaux=False,
        expectation=expectation,
    )


def dataset_nested(alpha: int = 6, beta: int = 6, gamma: int = 12) -> Dataset:
    """A two-level ("hierarchical") scenario for the paper's future-work extension.

    One data-centre site with three Ethernet clusters:

    * ``alpha`` and ``beta`` — well connected to each other through moderately
      provisioned uplinks (mild contention under all-to-all load, like
      Bordereau/Borderline);
    * ``gamma`` — behind a severely undersized uplink (a Bordeplage-style
      bottleneck).

    The *fine* ground truth (stored in :attr:`Dataset.ground_truth`) has three
    clusters.  The *coarse* ground truth — ``{alpha ∪ beta}`` vs ``{gamma}`` —
    is what a single-level modularity clustering typically recovers, because
    the alpha/beta contrast is weak relative to the whole graph (the same
    effect that caps the paper's B-T dataset at NMI ≈ 0.7).  The hierarchical
    clustering extension (``repro.clustering.hierarchical``) recovers both
    levels; see ``benchmarks/test_bench_ext_hierarchical.py``.
    """
    from repro.network.topology import MBPS, Host, Switch, Topology

    sizes = {"alpha": alpha, "beta": beta, "gamma": gamma}
    if any(n < 2 for n in sizes.values()):
        raise ValueError("each cluster needs at least two nodes")
    uplinks = {"alpha": 1200 * MBPS, "beta": 1200 * MBPS, "gamma": 250 * MBPS}

    topology = Topology(name="nested-hierarchy")
    topology.add_switch(Switch(name="core", site="dc"))
    clusters: Dict[str, List[str]] = {}
    for name, count in sizes.items():
        switch = topology.add_switch(Switch(name=f"{name}.switch", site="dc"))
        topology.add_link(switch.name, "core", capacity=uplinks[name], latency=5e-5)
        clusters[name] = []
        for i in range(count):
            host = topology.add_host(
                Host(name=f"dc.{name}-{i}", site="dc", cluster=name)
            )
            topology.add_link(host.name, switch.name, capacity=890 * MBPS, latency=5e-5)
            clusters[name].append(host.name)
    topology.validate_connected()

    hosts = topology.host_names
    ground_truth = Partition([set(members) for members in clusters.values()])
    expectation = PaperExpectation(
        expected_clusters=2,
        paper_nmi=0.7,
        paper_iterations_to_converge=4,
        description=(
            "two-level hierarchy: single-level clustering finds the coarse split "
            "only (the paper's B-T failure mode); the hierarchical extension "
            "recovers both levels"
        ),
    )
    return Dataset(
        name="NESTED",
        topology=topology,
        hosts=hosts,
        ground_truth=ground_truth,
        expectation=expectation,
        site_of={h: "dc" for h in hosts},
    )


def nested_coarse_ground_truth(ds: Dataset) -> Partition:
    """The coarse (two-way) ground truth of :func:`dataset_nested`."""
    if ds.name != "NESTED":
        raise ValueError("coarse ground truth is only defined for the NESTED dataset")
    alpha_beta = {
        h for h in ds.hosts if ds.topology.host(h).cluster in ("alpha", "beta")
    }
    gamma = {h for h in ds.hosts if ds.topology.host(h).cluster == "gamma"}
    return Partition([alpha_beta, gamma])


#: Registry of dataset factories keyed by the names used in Fig. 13.
DATASETS: Dict[str, Callable[[], Dataset]] = {
    "2x2": dataset_2x2,
    "B": dataset_b,
    "B-T": dataset_bt,
    "G-T": dataset_gt,
    "B-G-T": dataset_bgt,
    "B-G-T-L": dataset_bgtl,
}


def dataset(name: str, **kwargs) -> Dataset:
    """Instantiate a dataset by its Fig. 13 name (``"B"``, ``"B-T"``, ...)."""
    try:
        factory = DATASETS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from exc
    return factory(**kwargs)
