"""A small weighted undirected graph.

The clustering algorithms (Louvain, Infomap), the layout code and the
tomography pipeline all operate on the same structure: an undirected graph
whose nodes are arbitrary hashable labels (host names in practice) and whose
edges carry a non-negative weight (the aggregated fragment metric ``w(e)``).

``networkx`` is available in the environment, but the algorithmic core of the
reproduction is implemented against this class so that the clustering and
layout substrates are self-contained; a :meth:`to_networkx` converter is
provided for interoperability and visualisation.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

Node = Hashable
Edge = Tuple[Node, Node]


class WeightedGraph:
    """Undirected graph with non-negative edge weights and optional self-loops.

    The class keeps an adjacency map ``node -> {neighbour: weight}``, an
    interned ``node -> insertion id`` map (the canonical edge orientation,
    replacing repr-based keys), and cached edge-count/total-weight
    aggregates maintained on every mutation, so ``number_of_edges()`` and
    ``total_weight()`` — called in the inner loops of Louvain, Infomap and
    modularity — are O(1).
    """

    def __init__(self) -> None:
        self._adj: Dict[Node, Dict[Node, float]] = {}
        self._node_id: Dict[Node, int] = {}
        self._num_edges = 0
        self._total_weight = 0.0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[Node, Node, float]], nodes: Optional[Iterable[Node]] = None
    ) -> "WeightedGraph":
        """Build a graph from ``(u, v, weight)`` triples.

        Repeated edges accumulate their weights, matching the aggregation of
        fragment counts over BitTorrent iterations.
        """
        graph = cls()
        if nodes is not None:
            for node in nodes:
                graph.add_node(node)
        for u, v, w in edges:
            graph.add_edge(u, v, w, accumulate=True)
        return graph

    @classmethod
    def from_weight_matrix(
        cls, matrix: np.ndarray, labels: Optional[List[Node]] = None, tol: float = 0.0
    ) -> "WeightedGraph":
        """Build a graph from a symmetric weight matrix.

        Parameters
        ----------
        matrix:
            Square, symmetric array; entry ``[i, j]`` is the edge weight.
        labels:
            Node labels; defaults to ``range(n)``.
        tol:
            Entries with absolute value ``<= tol`` are treated as absent edges.
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"weight matrix must be square, got shape {matrix.shape}")
        if not np.allclose(matrix, matrix.T, atol=1e-9):
            raise ValueError("weight matrix must be symmetric")
        n = matrix.shape[0]
        if labels is None:
            labels = list(range(n))
        if len(labels) != n:
            raise ValueError("labels length must match matrix size")
        graph = cls()
        for node in labels:
            graph.add_node(node)
        for i in range(n):
            for j in range(i, n):
                w = float(matrix[i, j])
                if abs(w) > tol:
                    graph.add_edge(labels[i], labels[j], w)
        return graph

    def copy(self) -> "WeightedGraph":
        clone = WeightedGraph()
        for node, nbrs in self._adj.items():
            clone._adj[node] = dict(nbrs)
        clone._node_id = dict(self._node_id)
        clone._num_edges = self._num_edges
        clone._total_weight = self._total_weight
        return clone

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add_node(self, node: Node) -> None:
        if node not in self._adj:
            self._node_id[node] = len(self._node_id)
            self._adj[node] = {}

    def add_edge(self, u: Node, v: Node, weight: float = 1.0, accumulate: bool = False) -> None:
        """Add (or overwrite / accumulate) the undirected edge ``u -- v``."""
        weight = float(weight)
        if weight < 0:
            raise ValueError(f"edge weights must be non-negative, got {weight}")
        self.add_node(u)
        self.add_node(v)
        previous = self._adj[u].get(v)
        if accumulate and previous is not None:
            weight += previous
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        if previous is None:
            self._num_edges += 1
            self._total_weight += weight
        else:
            self._total_weight += weight - previous

    def remove_edge(self, u: Node, v: Node) -> None:
        try:
            weight = self._adj[u][v]
            del self._adj[u][v]
            if u != v:
                del self._adj[v][u]
        except KeyError as exc:
            raise KeyError(f"edge {u!r} -- {v!r} not in graph") from exc
        self._num_edges -= 1
        self._total_weight -= weight

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def nodes(self) -> List[Node]:
        return list(self._adj.keys())

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._adj and v in self._adj[u]

    def edge_weight(self, u: Node, v: Node, default: float = 0.0) -> float:
        return self._adj.get(u, {}).get(v, default)

    def neighbors(self, node: Node) -> Dict[Node, float]:
        """Return the ``{neighbour: weight}`` mapping (a copy) for ``node``."""
        if node not in self._adj:
            raise KeyError(f"node {node!r} not in graph")
        return dict(self._adj[node])

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Yield each undirected edge once as ``(u, v, weight)``.

        The first endpoint is the earlier-inserted node, so no seen-set (or
        repr-based canonical key) is needed: an edge is yielded exactly when
        the adjacency scan reaches its lower-id endpoint.
        """
        node_id = self._node_id
        for u, nbrs in self._adj.items():
            iu = node_id[u]
            for v, w in nbrs.items():
                if node_id[v] >= iu:
                    yield (u, v, w)

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Edges as ``(u_ids, v_ids, weights)`` arrays in :meth:`edges` order.

        Node ids are the insertion ids, which coincide with positions in
        :meth:`nodes` (nodes are never removed), so ``u_ids``/``v_ids``
        index directly into per-node arrays built over :meth:`nodes`.  This
        is the flat form the vectorized Louvain aggregation and per-level
        modularity paths consume; ``u_ids <= v_ids`` row-wise, exactly as
        :meth:`edges` yields.
        """
        count = self._num_edges
        u_ids = np.empty(count, dtype=np.int64)
        v_ids = np.empty(count, dtype=np.int64)
        weights = np.empty(count, dtype=np.float64)
        node_id = self._node_id
        k = 0
        for u, nbrs in self._adj.items():
            iu = node_id[u]
            for v, w in nbrs.items():
                iv = node_id[v]
                if iv >= iu:
                    u_ids[k] = iu
                    v_ids[k] = iv
                    weights[k] = w
                    k += 1
        return u_ids, v_ids, weights

    def number_of_edges(self) -> int:
        return self._num_edges

    def degree_weight(self, node: Node) -> float:
        """Weighted degree; self-loops count twice, as in modularity papers."""
        if node not in self._adj:
            raise KeyError(f"node {node!r} not in graph")
        total = 0.0
        for v, w in self._adj[node].items():
            total += w
            if v == node:
                total += w
        return total

    def total_weight(self) -> float:
        """Sum of edge weights (each undirected edge counted once)."""
        return self._total_weight

    def subgraph(self, nodes: Iterable[Node]) -> "WeightedGraph":
        """Induced subgraph on ``nodes`` (edges with both endpoints inside).

        Only the kept nodes' adjacency is visited, so extracting a small
        community out of a large graph is O(kept nodes + their edges), not
        O(all edges).
        """
        keep = set(nodes)
        missing = keep - set(self._adj)
        if missing:
            raise KeyError(f"nodes not in graph: {sorted(map(repr, missing))}")
        sub = WeightedGraph()
        for node in keep:
            sub.add_node(node)
        node_id = self._node_id
        for u in sorted(keep, key=node_id.__getitem__):
            iu = node_id[u]
            adj_u = self._adj[u]
            for v, w in adj_u.items():
                if node_id[v] >= iu and v in keep:
                    sub.add_edge(u, v, w)
        return sub

    def connected_components(self) -> List[List[Node]]:
        """Connected components as lists of nodes (weights ignored)."""
        seen = set()
        components: List[List[Node]] = []
        for start in self._adj:
            if start in seen:
                continue
            stack = [start]
            comp = []
            seen.add(start)
            while stack:
                node = stack.pop()
                comp.append(node)
                for nbr in self._adj[node]:
                    if nbr not in seen:
                        seen.add(nbr)
                        stack.append(nbr)
            components.append(comp)
        return components

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_weight_matrix(self, order: Optional[List[Node]] = None) -> Tuple[np.ndarray, List[Node]]:
        """Return ``(matrix, labels)`` with ``matrix[i, j]`` the edge weight."""
        labels = list(order) if order is not None else self.nodes()
        index = {node: i for i, node in enumerate(labels)}
        if len(index) != len(labels):
            raise ValueError("duplicate labels in order")
        matrix = np.zeros((len(labels), len(labels)), dtype=float)
        for u, v, w in self.edges():
            if u in index and v in index:
                i, j = index[u], index[v]
                matrix[i, j] = w
                matrix[j, i] = w
        return matrix, labels

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (weights on the ``weight`` key)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.nodes())
        for u, v, w in self.edges():
            graph.add_edge(u, v, weight=w)
        return graph

    def top_weight_fraction(self, fraction: float) -> "WeightedGraph":
        """Keep only the top ``fraction`` of edges by weight (paper's Fig. 8 rendering)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        edges = sorted(self.edges(), key=lambda e: e[2], reverse=True)
        keep = edges[: max(1, int(round(fraction * len(edges))))] if edges else []
        out = WeightedGraph()
        for node in self.nodes():
            out.add_node(node)
        for u, v, w in keep:
            out.add_edge(u, v, w)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeightedGraph(nodes={len(self)}, edges={self.number_of_edges()})"
