"""Lightweight weighted-graph types shared by the clustering and layout code."""

from repro.graph.wgraph import WeightedGraph

__all__ = ["WeightedGraph"]
