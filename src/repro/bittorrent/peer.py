"""Per-peer protocol state: bitfield, interest, rate bookkeeping.

A :class:`PeerState` corresponds to one instrumented BitTorrent client in the
paper's measurement phase.  It tracks which fragments the peer holds, which
neighbours it is connected to, whom it is currently unchoking, and how much
it downloaded from each neighbour during the current choking round (the
tit-for-tat reciprocation signal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np


@dataclass
class PeerState:
    """State of one BitTorrent client participating in a broadcast.

    Attributes
    ----------
    name:
        Host name of the node running the client.
    index:
        Dense integer index within the swarm (used by numpy bookkeeping).
    num_fragments:
        Number of fragments in the torrent.
    have:
        Boolean bitfield of fragments held.
    neighbors:
        Names of peers this client may exchange data with (tracker-provided).
    unchoked:
        Peers this client is currently uploading to (at most ``upload_slots``).
    optimistic:
        The current optimistic-unchoke target, if any (member of ``unchoked``).
    downloaded_this_round:
        Bytes received per neighbour during the current choking round; reset
        at every rechoke.  This is the reciprocation metric of the choker.
    """

    name: str
    index: int
    num_fragments: int
    have: np.ndarray = field(default=None)  # type: ignore[assignment]
    neighbors: Set[str] = field(default_factory=set)
    unchoked: Set[str] = field(default_factory=set)
    optimistic: Optional[str] = None
    downloaded_this_round: Dict[str, float] = field(default_factory=dict)
    completion_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_fragments <= 0:
            raise ValueError("num_fragments must be positive")
        if self.have is None:
            self.have = np.zeros(self.num_fragments, dtype=bool)
        else:
            self.have = np.asarray(self.have, dtype=bool)
            if self.have.shape != (self.num_fragments,):
                raise ValueError("have bitfield has wrong shape")
        # Cached so interest/seed checks are O(1) on the swarm hot path; the
        # bitfield must only be mutated through make_seed/receive_fragment —
        # except by the broadcast loop in repro.bittorrent.swarm, which
        # writes the shared bitfield matrix and this cache in lockstep.
        self._fragment_count = int(self.have.sum())

    # ------------------------------------------------------------------ #
    # fragment bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def fragment_count(self) -> int:
        """Number of fragments currently held."""
        return self._fragment_count

    @property
    def is_seed(self) -> bool:
        """True once the peer holds the complete file."""
        return self._fragment_count == self.num_fragments

    def make_seed(self) -> None:
        """Mark the peer as holding the whole file (the broadcast root)."""
        self.have[:] = True
        self._fragment_count = self.num_fragments

    def receive_fragment(self, fragment: int) -> None:
        """Record the arrival of one fragment."""
        if not 0 <= fragment < self.num_fragments:
            raise IndexError(f"fragment index {fragment} out of range")
        if not self.have[fragment]:
            self.have[fragment] = True
            self._fragment_count += 1

    def missing_from(self, other: "PeerState") -> np.ndarray:
        """Boolean mask of fragments ``other`` has and ``self`` lacks."""
        return other.have & ~self.have

    def is_interested_in(self, other: "PeerState") -> bool:
        """Interest as defined by the wire protocol: the other has something we need."""
        if self.is_seed:
            return False
        if other.fragment_count == 0:
            return False
        if other.is_seed:
            return True
        return bool(np.any(other.have & ~self.have))

    # ------------------------------------------------------------------ #
    # rate bookkeeping (tit-for-tat)
    # ------------------------------------------------------------------ #
    def credit_download(self, from_peer: str, nbytes: float) -> None:
        """Record ``nbytes`` received from ``from_peer`` in the current round."""
        if nbytes < 0:
            raise ValueError("cannot credit a negative byte count")
        self.downloaded_this_round[from_peer] = (
            self.downloaded_this_round.get(from_peer, 0.0) + nbytes
        )

    def reset_round(self) -> None:
        """Clear the per-round reciprocation counters (called at each rechoke)."""
        self.downloaded_this_round.clear()

    def reciprocation_ranking(self) -> List[str]:
        """Neighbours ordered by bytes they sent us this round (descending)."""
        return [
            peer
            for peer, _ in sorted(
                self.downloaded_this_round.items(), key=lambda kv: (-kv[1], kv[0])
            )
            if peer in self.neighbors
        ]
