"""Torrent (file) metadata: size, fragment granularity, fragment count.

The paper broadcasts a 239 MB file split into 15 259 fragments of 16 384
bytes.  The reproduction keeps the 16 KiB fragment size but lets experiments
scale the fragment count down so that many measurement iterations stay cheap
on a laptop-scale simulator; the metric only depends on the *relative*
per-edge fragment counts, which are invariant under that scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Fragment (piece) size used by the instrumented client, in bytes.
FRAGMENT_SIZE = 16_384

#: Number of fragments reported by the paper for its 239 MB broadcast file.
PAPER_FRAGMENT_COUNT = 15_259

#: Total broadcast file size implied by the paper's fragment count (bytes).
PAPER_FILE_SIZE = PAPER_FRAGMENT_COUNT * FRAGMENT_SIZE


@dataclass(frozen=True)
class TorrentMeta:
    """Metadata of the file being broadcast.

    Attributes
    ----------
    num_fragments:
        Number of 16 KiB fragments (pieces).
    fragment_size:
        Fragment size in bytes.
    name:
        Human-readable label used in experiment records.
    """

    num_fragments: int
    fragment_size: int = FRAGMENT_SIZE
    name: str = "broadcast-file"

    def __post_init__(self) -> None:
        if self.num_fragments <= 0:
            raise ValueError(f"num_fragments must be positive, got {self.num_fragments}")
        if self.fragment_size <= 0:
            raise ValueError(f"fragment_size must be positive, got {self.fragment_size}")

    @property
    def size(self) -> int:
        """Total file size in bytes."""
        return self.num_fragments * self.fragment_size

    @property
    def size_megabytes(self) -> float:
        """Total file size in (decimal) megabytes."""
        return self.size / 1e6

    @classmethod
    def paper_default(cls) -> "TorrentMeta":
        """The exact file used in the paper: 15 259 fragments of 16 KiB (≈239 MB)."""
        return cls(num_fragments=PAPER_FRAGMENT_COUNT, name="paper-239MB")

    @classmethod
    def from_size(cls, size_bytes: float, fragment_size: int = FRAGMENT_SIZE,
                  name: str = "broadcast-file") -> "TorrentMeta":
        """Build metadata for a file of roughly ``size_bytes`` bytes."""
        if size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {size_bytes}")
        fragments = max(1, int(round(size_bytes / fragment_size)))
        return cls(num_fragments=fragments, fragment_size=fragment_size, name=name)

    @classmethod
    def scaled(cls, num_fragments: int, name: str = "scaled-broadcast") -> "TorrentMeta":
        """A scaled-down file keeping the 16 KiB fragment size (for fast experiments)."""
        return cls(num_fragments=num_fragments, name=name)
