"""Piece (fragment) selection: random-first then rarest-first.

As in the reference client, a peer that holds only a handful of fragments
picks random ones (to get something to trade quickly); after that it requests
the rarest fragment among those the uploader can provide, breaking ties
randomly.  Availability is tracked swarm-wide as a fragment-indexed counter.

NOTE: the broadcast hot loop in ``repro.bittorrent.swarm`` inlines this
selection rule (tie-tier form) for speed; any change to the policy here —
thresholds, tie-breaking, random-stream consumption — must be mirrored
there, and the seed-replay goldens in ``tests/test_seed_replay.py`` will
flag a divergence on the covered scenarios.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bittorrent.peer import PeerState

#: Below this many held fragments, a peer uses random-first selection.
RANDOM_FIRST_THRESHOLD = 4


class PieceSelector:
    """Swarm-wide fragment availability plus the selection rule."""

    def __init__(self, num_fragments: int,
                 random_first_threshold: int = RANDOM_FIRST_THRESHOLD) -> None:
        if num_fragments <= 0:
            raise ValueError("num_fragments must be positive")
        self.num_fragments = num_fragments
        self.random_first_threshold = random_first_threshold
        self.availability = np.zeros(num_fragments, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # availability maintenance
    # ------------------------------------------------------------------ #
    def register_bitfield(self, have: np.ndarray) -> None:
        """Add a joining peer's initial bitfield to the availability counts."""
        have = np.asarray(have, dtype=bool)
        if have.shape != (self.num_fragments,):
            raise ValueError("bitfield has wrong shape")
        self.availability += have.astype(np.int64)

    def record_receipt(self, fragment: int) -> None:
        """A peer completed ``fragment``: one more replica exists in the swarm."""
        if not 0 <= fragment < self.num_fragments:
            raise IndexError(f"fragment index {fragment} out of range")
        self.availability[fragment] += 1

    # ------------------------------------------------------------------ #
    # selection
    # ------------------------------------------------------------------ #
    def select(
        self,
        downloader: PeerState,
        uploader: PeerState,
        rng: np.random.Generator,
    ) -> Optional[int]:
        """Pick the fragment ``downloader`` should take from ``uploader``.

        Returns ``None`` when the uploader has nothing the downloader needs.
        """
        return self.select_from(
            uploader.have, ~downloader.have, downloader.fragment_count, rng
        )

    def select_from(
        self,
        uploader_have: np.ndarray,
        downloader_lack: np.ndarray,
        downloader_count: int,
        rng: np.random.Generator,
    ) -> Optional[int]:
        """Hot-path selection on raw bitfields.

        ``downloader_lack`` is the complement of the downloader's bitfield;
        the swarm maintains it incrementally so this path never materialises
        ``~have``.  Consumes the random stream exactly like :meth:`select`.
        """
        wanted = uploader_have & downloader_lack
        candidates = wanted.nonzero()[0]
        if candidates.size == 0:
            return None
        if downloader_count < self.random_first_threshold:
            return int(candidates[int(rng.integers(0, candidates.size))])
        availability = self.availability[candidates]
        rarest = availability.min()
        rarest_candidates = candidates[availability == rarest]
        return int(rarest_candidates[int(rng.integers(0, rarest_candidates.size))])
