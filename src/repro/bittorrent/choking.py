"""Tit-for-tat choking with a bounded number of upload slots.

The reference client limits parallel uploads to four and rotates one
"optimistic" unchoke slot among the remaining interested peers.  The paper
identifies this bound (together with the 35-peer set) as the reason a single
broadcast only samples a subset of edges — which is precisely the randomness
the clustering phase has to absorb.

The policy implemented here follows the standard description:

* a **leecher** reciprocates: it keeps its ``slots - 1`` fastest *uploaders to
  it* during the previous round unchoked, plus one optimistic slot;
* a **seed** has no download rates to reciprocate, so it rotates its slots
  randomly among interested peers (the reference client rotates by upload
  rate / recency; a random rotation has the same fragment-spreading effect
  and matches the "initially random choices" the paper describes);
* on the very first round nobody has history, so all choices are random.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

import numpy as np

from repro.bittorrent.peer import PeerState

#: Default number of parallel upload slots of the reference client.
DEFAULT_UPLOAD_SLOTS = 4


@dataclass(frozen=True)
class ChokingPolicy:
    """Parameters of the choker.

    Attributes
    ----------
    upload_slots:
        Total simultaneous unchoked peers (including the optimistic slot).
    optimistic_every:
        Rotate the optimistic unchoke every this many choking rounds.
    """

    upload_slots: int = DEFAULT_UPLOAD_SLOTS
    optimistic_every: int = 3

    def __post_init__(self) -> None:
        if self.upload_slots < 1:
            raise ValueError("upload_slots must be at least 1")
        if self.optimistic_every < 1:
            raise ValueError("optimistic_every must be at least 1")

    # ------------------------------------------------------------------ #
    def rechoke(
        self,
        peer: PeerState,
        interested: Sequence[str],
        round_index: int,
        rng: np.random.Generator,
    ) -> Set[str]:
        """Compute the new unchoke set for ``peer``.

        Parameters
        ----------
        peer:
            The uploading peer whose slots are being assigned.
        interested:
            Neighbours currently interested in ``peer`` (i.e. candidates).
        round_index:
            Zero-based index of the choking round (drives optimistic rotation).
        rng:
            Random stream of this peer for this broadcast iteration.

        Returns
        -------
        set of str
            Peers to unchoke; its size is at most ``upload_slots``.
        """
        candidates = [p for p in interested if p in peer.neighbors]
        if not candidates:
            peer.optimistic = None
            return set()
        slots = min(self.upload_slots, len(candidates))

        if peer.is_seed or not peer.downloaded_this_round:
            # No reciprocation signal: random rotation (seed mode / first round).
            picks = rng.choice(len(candidates), size=slots, replace=False)
            chosen = {candidates[i] for i in picks}
            peer.optimistic = None
            return chosen

        # Tit-for-tat: keep the fastest uploaders to us, one slot optimistic.
        ranking = [p for p in peer.reciprocation_ranking() if p in candidates]
        regular_slots = max(slots - 1, 0)
        chosen = set(ranking[:regular_slots])

        rotate = round_index % self.optimistic_every == 0
        optimistic = peer.optimistic
        if (
            rotate
            or optimistic is None
            or optimistic not in candidates
            or optimistic in chosen
        ):
            pool = [p for p in candidates if p not in chosen]
            optimistic = candidates[int(rng.integers(0, len(candidates)))] if not pool else (
                pool[int(rng.integers(0, len(pool)))]
            )
        peer.optimistic = optimistic
        chosen.add(optimistic)

        # Fill any remaining slots (e.g. short ranking) with random candidates.
        while len(chosen) < slots:
            pool = [p for p in candidates if p not in chosen]
            if not pool:
                break
            chosen.add(pool[int(rng.integers(0, len(pool)))])
        return chosen
