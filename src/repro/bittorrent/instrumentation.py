"""Fragment counters: the paper's measurement instrumentation.

The instrumented client increments, at the reception of each fragment, a
counter associated with the sending peer.  Aggregated over all peers this is
a directed matrix ``counts[receiver, sender]``; the paper's per-edge metric
``w(e)`` is its symmetrisation (Eq. 1), averaged over iterations (Eq. 2).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np


class FragmentMatrix:
    """Directed fragment-exchange counts for one (or several) broadcasts.

    ``counts[i, j]`` is the number of fragments host ``labels[i]`` *received
    directly from* host ``labels[j]``.
    """

    def __init__(self, labels: Sequence[str], counts: Optional[np.ndarray] = None) -> None:
        labels = list(labels)
        if len(set(labels)) != len(labels):
            raise ValueError("labels must be unique")
        if len(labels) < 2:
            raise ValueError("at least two hosts are required")
        self.labels: List[str] = labels
        self.index: Dict[str, int] = {name: i for i, name in enumerate(labels)}
        n = len(labels)
        if counts is None:
            self.counts = np.zeros((n, n), dtype=float)
        else:
            counts = np.asarray(counts, dtype=float)
            if counts.shape != (n, n):
                raise ValueError(f"counts must be {n}x{n}, got {counts.shape}")
            if (counts < 0).any():
                raise ValueError("fragment counts must be non-negative")
            self.counts = counts.copy()

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record(self, receiver: str, sender: str, fragments: float = 1.0) -> None:
        """Record ``fragments`` fragments received by ``receiver`` from ``sender``."""
        if fragments < 0:
            raise ValueError("fragment count must be non-negative")
        if receiver == sender:
            raise ValueError("a peer cannot receive fragments from itself")
        self.counts[self.index[receiver], self.index[sender]] += fragments

    def received_by(self, receiver: str) -> Dict[str, float]:
        """Fragments ``receiver`` got, keyed by sending peer (non-zero only)."""
        row = self.counts[self.index[receiver]]
        return {
            self.labels[j]: float(row[j]) for j in np.flatnonzero(row) if j != self.index[receiver]
        }

    def total_fragments(self) -> float:
        """Total fragments received across all peers (the paper's 15 259 × peers)."""
        return float(self.counts.sum())

    # ------------------------------------------------------------------ #
    # symmetrisation (Eq. 1)
    # ------------------------------------------------------------------ #
    def symmetric_weights(self) -> np.ndarray:
        """Per-edge weights ``w(e) = v1→v2 + v2→v1`` as a symmetric matrix."""
        return self.counts + self.counts.T

    def edge_weight(self, u: str, v: str) -> float:
        """``w((u, v))`` for a single edge of this broadcast."""
        i, j = self.index[u], self.index[v]
        return float(self.counts[i, j] + self.counts[j, i])

    # ------------------------------------------------------------------ #
    # combination
    # ------------------------------------------------------------------ #
    def copy(self) -> "FragmentMatrix":
        return FragmentMatrix(self.labels, self.counts)

    @staticmethod
    def mean(matrices: Sequence["FragmentMatrix"]) -> "FragmentMatrix":
        """Element-wise mean over iterations (the aggregation of Eq. 2)."""
        if not matrices:
            raise ValueError("cannot average zero matrices")
        labels = matrices[0].labels
        for m in matrices[1:]:
            if m.labels != labels:
                raise ValueError("all matrices must share the same label order")
        stacked = np.stack([m.counts for m in matrices])
        return FragmentMatrix(labels, stacked.mean(axis=0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FragmentMatrix(hosts={len(self.labels)}, fragments={self.total_fragments():.0f})"
