"""BitTorrent broadcast substrate.

The paper instruments Bram Cohen's Python BitTorrent client and runs
*synchronized broadcasts*: one seed holds a large file, every other node
downloads it, and every client counts the fragments (16 KiB pieces) it
received from each peer.  This package reproduces that system as a
discrete-event / fluid simulation over the :mod:`repro.network` substrate:

* :mod:`repro.bittorrent.torrent` — file and fragment metadata;
* :mod:`repro.bittorrent.tracker` — bounded random peer sets (max 35 peers);
* :mod:`repro.bittorrent.peer` — per-peer protocol state (bitfields, interest);
* :mod:`repro.bittorrent.choking` — tit-for-tat choker with 4 upload slots and
  optimistic unchoke;
* :mod:`repro.bittorrent.selection` — rarest-first piece selection;
* :mod:`repro.bittorrent.swarm` — the synchronized broadcast simulation;
* :mod:`repro.bittorrent.instrumentation` — the per-peer fragment counters
  that produce the paper's measurement matrix.
"""

from repro.bittorrent.torrent import PAPER_FILE_SIZE, PAPER_FRAGMENT_COUNT, FRAGMENT_SIZE, TorrentMeta
from repro.bittorrent.tracker import Tracker
from repro.bittorrent.peer import PeerState
from repro.bittorrent.choking import ChokingPolicy
from repro.bittorrent.selection import PieceSelector
from repro.bittorrent.instrumentation import FragmentMatrix
from repro.bittorrent.swarm import BroadcastResult, SwarmConfig, BitTorrentBroadcast

__all__ = [
    "PAPER_FILE_SIZE",
    "PAPER_FRAGMENT_COUNT",
    "FRAGMENT_SIZE",
    "TorrentMeta",
    "Tracker",
    "PeerState",
    "ChokingPolicy",
    "PieceSelector",
    "FragmentMatrix",
    "BroadcastResult",
    "SwarmConfig",
    "BitTorrentBroadcast",
]
