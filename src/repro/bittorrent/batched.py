"""Batched multi-seed broadcast engine: one campaign as a lock-step array program.

A measurement campaign replays the *same* scenario under many independent
seeds.  :class:`BatchedBroadcast` runs those replays as *lanes* of a single
lock-step driver: every lane is an ordinary
:class:`~repro.bittorrent.swarm.BroadcastSession` (own RNG stream, own
anchored :class:`~repro.network.fluid.FluidNetwork`), but the driver advances
all lanes through the shared control grid together and fuses the one
cross-lane-batchable computation — the per-step interest matrix — into a
single stacked ``(lanes, hosts, hosts)`` float32 matmul.

Exactness is by construction rather than by reimplementation: the lanes run
the unmodified :meth:`BitTorrentBroadcast._drive` loop, and the batched
interest answer is bit-identical to the scalar ``recompute_wanted()`` because
every entry of ``have @ have.T`` is an exact integer far below ``2**24`` —
all partial products are 0/1 and all partial sums are exactly representable
in float32, so *any* summation order (2-D GEMM, stacked 3-D matmul, any BLAS
kernel) produces the same bits.  Each lane therefore replays its scalar
sha256 golden exactly (``tests/test_seed_replay.py``).

What this buys — and what it cannot: profiling (see ``docs/performance.md``)
shows ~65% of the scalar hot path is the per-receipt conversion loop, whose
RNG draws are data-dependent per lane and unbatchable without changing the
random stream.  The interest matmul plus per-step Python overhead is the
batchable remainder, which bounds the achievable speedup (Amdahl) well below
the optimistic 5x target; the measured numbers live in ``BENCH_PR8.json``.

Lanes never lose lock-step here because batched runs are restricted to the
empty workload/fault plan (the :class:`~repro.scenarios.executors
.BatchedExecutor` falls back to the scalar path otherwise, the same
oracle-vs-fast pattern as ``network/solver.py``); within that restriction the
driver is exact for both stepping modes, since event-mode lanes that jump
simply park at a later grid step and rejoin the round-robin when due.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.bittorrent.swarm import (
    MATMUL_INTEREST_LIMIT,
    BitTorrentBroadcast,
    BroadcastResult,
    BroadcastSession,
    SwarmConfig,
)
from repro.network.routing import RoutingTable
from repro.network.topology import Topology
from repro.observability.metrics import METRICS
from repro.observability.tracer import TRACER
from repro.simulation.rng import RandomStreams

#: One lane spec: (root or None, per-lane random generator or None).
Lane = Tuple[Optional[str], Optional[np.random.Generator]]


def _due_step(request: Tuple) -> int:
    """Grid step at which a pending clock request becomes serviceable."""
    if request[0] == "sleep":
        return request[2]  # ("sleep", from_step, target_step, time)
    return request[1]  # ("advance", step, time) / ("interest", step, time, have)


class BatchedBroadcast:
    """Run many seeded replays of one broadcast scenario in lock-step.

    Shares a single :class:`BitTorrentBroadcast` (routing table and TCP
    rate-cap caches are computed once for all lanes); every lane gets its own
    session and private fluid network, so per-lane state is exactly the
    scalar state.  Results come back in lane order with
    :attr:`~repro.bittorrent.swarm.BroadcastResult.batch_width` set to the
    number of lanes that ran together.
    """

    def __init__(
        self,
        topology: Topology,
        config: SwarmConfig,
        hosts: Optional[Sequence[str]] = None,
        routing: Optional[RoutingTable] = None,
    ) -> None:
        self.broadcast = BitTorrentBroadcast(
            topology, config, hosts=hosts, routing=routing
        )

    @property
    def hosts(self) -> List[str]:
        return self.broadcast.hosts

    @property
    def config(self) -> SwarmConfig:
        return self.broadcast.config

    # ------------------------------------------------------------------ #
    def run_specs(
        self,
        base_seed: int,
        specs: Iterable[Tuple[Tuple, Optional[str]]],
    ) -> List[BroadcastResult]:
        """Run campaign iteration specs ``(stream_labels, root)`` as lanes.

        Stream derivation matches the campaign's serial path exactly:
        iteration ``i`` draws from ``RandomStreams(base_seed).stream(*labels)``
        with labels ``("broadcast", i)``.
        """
        streams = RandomStreams(base_seed)
        lanes = [(root, streams.stream(*labels)) for labels, root in specs]
        return self.run_many(lanes)

    def run_many(self, lanes: Sequence[Lane]) -> List[BroadcastResult]:
        """Run one ``(root, rng)`` lane per entry and return lane results."""
        if not lanes:
            return []
        sessions = [
            BroadcastSession(self.broadcast, root=root, rng=rng, batch_interest=True)
            for root, rng in lanes
        ]
        run_started = TRACER.now() if TRACER.enabled else 0.0
        self._drive_lock_step(sessions)
        width = len(sessions)
        METRICS.count("batched.runs")
        METRICS.count("batched.lanes", width)
        if TRACER.enabled:
            TRACER.span_record("batched.run", run_started, lanes=width)
        results: List[BroadcastResult] = []
        for session in sessions:
            result = session.result
            result.batch_width = width
            results.append(result)
        return results

    # ------------------------------------------------------------------ #
    def _drive_lock_step(self, sessions: List[BroadcastSession]) -> None:
        """Round-based driver: service all lanes due at the earliest step.

        Lanes wait on a heap keyed by the grid step their pending request is
        due at (lane index as tie-break), so each round pops exactly the due
        lanes instead of scanning the whole batch.  A round fulfils every
        ``advance``/``sleep`` request due at that step (a lane may
        immediately re-request at the same step — e.g. an interest point
        right after a conversion pass — so requests are drained until the
        lane parks, finishes, or asks about a future step), then answers all
        lanes parked at an ``interest`` point with one stacked matmul.
        Per-lane request/response sequences are exactly the standalone
        driver's, so lane state evolution is bit-identical to scalar runs —
        lanes are fully independent, and round grouping only decides which
        of them share a matmul.
        """
        import heapq

        num_fragments = self.config.torrent.num_fragments
        n = len(self.hosts)
        # Scratch for the stacked bitfields, sliced to each round's width.
        # Incremental-interest scenarios (above the matmul crossover) never
        # yield "interest", so no buffer is reserved for them.
        if n * n * num_fragments <= MATMUL_INTEREST_LIMIT:
            stack = np.empty((len(sessions), n, num_fragments), dtype=np.float32)
        else:
            stack = None

        heap: List[Tuple[int, int]] = []
        for lane, session in enumerate(sessions):
            request = session.start()
            if not session.finished:
                # Matmul-mode lanes all open at the step-0 interest point,
                # so the very first batch runs at full width.
                heap.append((_due_step(request), lane))
        heapq.heapify(heap)

        heappush = heapq.heappush
        heappop = heapq.heappop
        while heap:
            t_step = heap[0][0]
            parked: List[Tuple[int, BroadcastSession]] = []
            while heap and heap[0][0] == t_step:
                lane = heappop(heap)[1]
                session = sessions[lane]
                request = session.request
                while True:
                    kind = request[0]
                    if kind == "interest":
                        parked.append((lane, session))
                        break
                    if kind == "advance":
                        session.fluid.advance_to(request[2])
                        request = session.resume(None)
                    else:  # "sleep": nothing can intervene, grant the jump
                        request = session.resume(request[2])
                    if session.finished:
                        break
                    due = _due_step(request)
                    if due > t_step:
                        heappush(heap, (due, lane))
                        break
            if parked:
                self._fulfil_interest([s for _, s in parked], stack)
                for lane, session in parked:
                    if not session.finished:
                        heappush(heap, (_due_step(session.request), lane))

    def _fulfil_interest(
        self,
        parked: List[BroadcastSession],
        stack: np.ndarray,
    ) -> List[BroadcastSession]:
        """Answer every parked lane with its slice of one stacked matmul.

        Returns the lanes still running (their fresh requests are strictly
        in the future, so the caller simply re-queues them).
        """
        width = len(parked)
        if width == 1:
            # Degenerate round: the 2-D product is the scalar path verbatim.
            have = parked[0].request[3]
            have_f = have.astype(np.float32)
            common = have_f @ have_f.T
            wanted_rounds = [common.diagonal()[:, None] - common]
        else:
            batch = stack[:width]
            for lane, session in enumerate(parked):
                batch[lane] = session.request[3]  # bool -> float32 cast
            common = np.matmul(batch, batch.transpose(0, 2, 1))
            diagonal = np.einsum("kii->ki", common)
            wanted_rounds = diagonal[:, :, None] - common
        survivors: List[BroadcastSession] = []
        for lane, session in enumerate(parked):
            session.resume(wanted_rounds[lane])
            if not session.finished:
                survivors.append(session)
        return survivors
