"""Synchronized BitTorrent broadcast over the fluid network model.

A broadcast starts with one *root* (seed) holding the complete file and every
other host holding nothing; all clients start simultaneously and the
broadcast is complete when the last client finishes downloading (the paper's
reference completion time).

The simulation advances on a grid of control points spaced ``control_dt``
apart.  Between points, data moves as max-min-fair fluid flows along the
unchoke relation; at each visited point the accumulated bytes on every
active (uploader → downloader) pipe are converted into fragments using
rarest-first selection, the fragment counters are incremented, and
choking/interest state is refreshed.  Full tit-for-tat rechokes happen every
``rechoke_interval`` seconds, and peers with idle upload slots grab newly
interested neighbours immediately, as the reference client's choker
effectively does.

Two stepping policies decide *which* control points are executed
(``SwarmConfig.stepping``, see docs/simulation.md):

* ``"fixed"`` — the classic loop: every grid point is visited in turn.  This
  is the oracle: the reference semantics all other modes must reproduce.
* ``"event"`` — the control loop is driven by the discrete-event engine
  (:mod:`repro.simulation.engine`): rechoke timers, predicted fragment-
  boundary conversions and fluid-flow transitions are scheduled events on an
  :class:`~repro.simulation.engine.EventQueue`, and simulated time jumps
  straight from one state-changing control point to the next.  Because all
  inter-point state is *anchored* (byte counts are analytic functions of the
  last transition, never per-tick accumulations), skipping the inert points
  is exact: the event mode replays the fixed-step loop bit for bit — same
  random-stream consumption, same fragment-completion ordering, same
  matrices — while executing only the control points where a choking,
  interest or fragment transition can actually occur.

This "fluid BitTorrent" keeps the protocol features the paper identifies as
the sources of measurement randomness — random initial peer choice, four
upload slots, 35-peer sets, asymmetric broadcast data flow — while staying
fast enough to run dozens of measurement iterations on a laptop.

The loop itself is externally clockable: it is written as a generator of
clock *requests* wrapped in a :class:`BroadcastSession`, so a broadcast can
either own its clock (:meth:`BitTorrentBroadcast.run`, the degenerate
driver) or run as one tenant of a shared multi-tenant simulation
(:mod:`repro.workloads`), contending with rival broadcasts, generative
cross traffic, capacity drift and peer churn on one fluid network —
see docs/workloads.md.
"""

from __future__ import annotations

import bisect
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bittorrent.choking import DEFAULT_UPLOAD_SLOTS, ChokingPolicy
from repro.bittorrent.instrumentation import FragmentMatrix
from repro.bittorrent.peer import PeerState
from repro.bittorrent.selection import PieceSelector
from repro.bittorrent.torrent import TorrentMeta
from repro.bittorrent.tracker import DEFAULT_MAX_PEERS, Tracker
from repro.network.fluid import FluidNetwork, FluidTransfer
from repro.network.grid5000 import DEFAULT_TCP_WINDOW, flow_rate_cap
from repro.network.routing import RoutingTable
from repro.network.topology import Topology
from repro.observability.metrics import METRICS
from repro.observability.tracer import TRACER
from repro.simulation.engine import Event, EventQueue

#: Recognised control-loop stepping policies (see module docstring).
STEPPING_MODES = ("fixed", "event")

#: Environment variable naming the default stepping policy for campaign
#: configurations built by :func:`repro.tomography.pipeline
#: .default_swarm_config` — this is how ``benchmarks/run_benchmarks.py
#: --stepping fixed`` flips the whole suite without touching each benchmark.
STEPPING_ENV = "REPRO_STEPPING"


def default_stepping() -> str:
    """Stepping policy selected by the environment (``"event"`` if unset)."""
    value = os.environ.get(STEPPING_ENV, "").strip().lower()
    if not value:
        return "event"
    if value not in STEPPING_MODES:
        raise ValueError(
            f"{STEPPING_ENV} must be one of {STEPPING_MODES}, got {value!r}"
        )
    return value


#: Below this ``hosts² × fragments`` product the interest matrix is simply
#: recomputed every control step with one BLAS matmul; above it (paper scale)
#: it is maintained incrementally per receipt batch.  Both paths produce
#: identical integer counts — this is purely a performance crossover.
MATMUL_INTEREST_LIMIT = 4_000_000


@dataclass(frozen=True)
class SwarmConfig:
    """Tunable parameters of a broadcast simulation.

    The defaults mirror the reference client (4 upload slots, 35-peer sets,
    16 KiB fragments); ``control_dt`` and ``rechoke_interval`` are simulation
    knobs whose paper counterparts are continuous TCP dynamics and the 10 s
    rechoke timer respectively.
    """

    torrent: TorrentMeta
    upload_slots: int = DEFAULT_UPLOAD_SLOTS
    max_peers: int = DEFAULT_MAX_PEERS
    rechoke_interval: float = 5.0
    optimistic_every: int = 3
    control_dt: float = 0.1
    tcp_window: Optional[float] = DEFAULT_TCP_WINDOW
    random_first_threshold: int = 4
    max_sim_time: float = 3600.0
    #: Control-loop stepping policy: ``"event"`` jumps between state-changing
    #: control points on the event queue, ``"fixed"`` visits every grid point
    #: (the oracle).  Both produce identical results; see docs/simulation.md.
    stepping: str = "event"

    def __post_init__(self) -> None:
        if self.control_dt <= 0:
            raise ValueError("control_dt must be positive")
        if self.rechoke_interval < self.control_dt:
            raise ValueError("rechoke_interval must be at least control_dt")
        if self.max_sim_time <= 0:
            raise ValueError("max_sim_time must be positive")
        if self.stepping not in STEPPING_MODES:
            raise ValueError(
                f"stepping must be one of {STEPPING_MODES}, got {self.stepping!r}"
            )


@dataclass
class BroadcastResult:
    """Outcome of one synchronized broadcast.

    Attributes
    ----------
    fragments:
        Directed fragment counts (the measurement of this iteration).
    root:
        The seeding host.
    duration:
        Maximum download completion time over all clients (seconds).
    completion_times:
        Per-host download completion time.
    distinct_edges:
        Number of unordered host pairs that exchanged at least one fragment.
    control_steps:
        Number of control points the loop actually executed (the event mode's
        figure of merit: fixed stepping executes every grid point).
    stepping:
        Stepping policy that produced this result (``"fixed"``/``"event"``).
    batch_width:
        Number of lanes in the batched lock-step run that produced this
        result (1 for the scalar path).  Purely diagnostic: lane records are
        bit-identical to their scalar replays regardless of width.
    """

    fragments: FragmentMatrix
    root: str
    duration: float
    completion_times: Dict[str, float]
    distinct_edges: int
    control_steps: int = 0
    stepping: str = "event"
    batch_width: int = 1

    @property
    def hosts(self) -> List[str]:
        return list(self.fragments.labels)


class _ControlAgenda:
    """Scheduled control points of the event-stepped swarm loop.

    A thin, typed agenda over the simulation engine's
    :class:`~repro.simulation.engine.EventQueue`: each *kind* of control
    event (the rechoke timer, the predicted fragment-boundary conversion,
    the next fluid-flow transition, the simulation horizon) occupies at most
    one queue slot, keyed by the control-step index it is due at.
    Re-scheduling a kind lazily cancels its previous event, and events
    landing on the same step coalesce into a single visit — the queue's
    deterministic (time, insertion-order) ordering is what makes the event
    mode's replay exactly reproducible.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._pending: Dict[str, Event] = {}

    def schedule(self, kind: str, step: int) -> None:
        """(Re)schedule ``kind`` to fire at control step ``step``."""
        previous = self._pending.get(kind)
        if previous is not None:
            previous.cancel()
        self._pending[kind] = self._queue.push(float(step), lambda: None)

    def pop_next_step(self) -> Optional[int]:
        """Earliest scheduled control step; coalesces same-step events.

        Events of other kinds stay pending (already-popped ones are inert:
        re-scheduling their kind later cancels a dead handle, which is a
        no-op), so every round of :meth:`schedule` calls supersedes the
        whole previous round.
        """
        event = self._queue.pop()
        if event is None:
            return None
        while True:
            upcoming = self._queue.peek_time()
            if upcoming is None or upcoming > event.time:
                break
            self._queue.pop()
        return int(event.time)


class BroadcastSession:
    """One externally-clockable broadcast run.

    The broadcast loop lives in :meth:`BitTorrentBroadcast._drive`, a
    generator that *requests* clock movement instead of owning it.  A driver
    fulfils each request and resumes the generator:

    * ``("advance", step, time)`` — the loop committed to its next control
      point; the driver must bring the shared fluid network to absolute
      ``time`` (processing in-flight completions) and resume with ``None``.
    * ``("sleep", from_step, target_step, time)`` — the event-stepped loop
      proved the grid points up to ``target_step`` inert *under the current
      rates* and wants to jump.  The driver resumes with the granted step:
      ``target_step`` when nothing intervened, or any earlier grid step when
      the environment changed (cross traffic, churn, capacity drift) —
      landing early is always exact, since the fixed-dt oracle visits every
      grid point.
    * ``("interest", step, time, have)`` — only when the session was built
      with ``batch_interest=True`` and the matmul interest path is active:
      the loop asks the driver for this step's wanted matrix instead of
      computing it, and must be resumed with an ``(n, n)`` float32 array
      bitwise equal to what ``recompute_wanted()`` would have produced.
      :class:`repro.bittorrent.batched.BatchedBroadcast` answers a whole
      batch of lanes with one stacked matmul.

    :meth:`run_to_completion` is the degenerate driver: one session, a fresh
    private fluid network, start time zero — byte-identical to the classic
    ``BitTorrentBroadcast.run`` loop, which is now implemented on top of it.
    The multi-tenant driver is :class:`repro.workloads.WorkloadEngine`,
    which multiplexes many sessions (and generative traffic actors) over one
    simulator agenda and one shared fluid network.

    Churn (peer leave/rejoin mid-broadcast) is queued through
    :meth:`request_leave`/:meth:`request_rejoin` and applied by the loop at
    its next visited control point, identically in both stepping modes.
    """

    def __init__(
        self,
        broadcast: "BitTorrentBroadcast",
        root: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[List[Tuple[float, str, str, int]]] = None,
        fluid: Optional[FluidNetwork] = None,
        start_time: float = 0.0,
        batch_interest: bool = False,
    ) -> None:
        self.broadcast = broadcast
        #: When True the loop *yields* ``("interest", step, time, have)``
        #: instead of computing the matmul-path interest matrix itself, so a
        #: batched driver (:class:`repro.bittorrent.batched.BatchedBroadcast`)
        #: can answer many lanes with one stacked matmul.  Scalar drivers
        #: (run_to_completion, the workload engine) never set this.
        self._batch_interest = batch_interest
        self.fluid = (
            fluid
            if fluid is not None
            else FluidNetwork(broadcast.topology, broadcast.routing)
        )
        self.start_time = float(start_time)
        #: Resolved seeding host; published by the loop at setup.
        self.root: Optional[str] = root
        #: Peers currently churned out of the swarm (shared with the loop).
        self.departed: Set[str] = set()
        self.churn_events = 0
        #: Applied (not merely requested) churn operations, by kind — a
        #: queued request can still no-op at apply time (duplicate victim,
        #: broadcast already finished), so injectors report these counts.
        self.churn_applied = {"leave": 0, "rejoin": 0}
        self.result: Optional[BroadcastResult] = None
        self.finished = False
        self._request: Optional[Tuple] = None
        self._pipe_completed = False
        self._pending_churn: List[Tuple[str, str, Optional[np.random.Generator]]] = []
        self._started = False
        self._gen = broadcast._drive(self, root, rng, trace)

    # ------------------------------------------------------------------ #
    # churn hooks (called by workload churn actors between resumes)
    # ------------------------------------------------------------------ #
    def request_leave(self, name: str) -> None:
        """Queue a peer departure; applied at the next visited control point."""
        self._pending_churn.append(("leave", name, None))

    def request_rejoin(self, name: str, rng: np.random.Generator) -> None:
        """Queue a peer rejoin; ``rng`` drives its fresh tracker announce."""
        self._pending_churn.append(("rejoin", name, rng))

    def _drain_churn(self) -> List[Tuple[str, str, Optional[np.random.Generator]]]:
        ops, self._pending_churn = self._pending_churn, []
        return ops

    def _on_pipe_complete(self, transfer: FluidTransfer) -> None:
        # A pipe ran its whole byte budget during a fluid advance: the loop
        # must rebuild its slot-aligned vectors before the next read.
        self._pipe_completed = True

    # ------------------------------------------------------------------ #
    # driving
    # ------------------------------------------------------------------ #
    @property
    def request(self) -> Optional[Tuple]:
        """The pending clock request, or ``None`` before start / after finish."""
        return self._request

    def start(self) -> Optional[Tuple]:
        """Prime the loop (runs the first control phase) and return its request.

        Must be called with the shared clock at :attr:`start_time`: the
        first control phase opens pipes anchored at that instant.
        """
        if self._started:
            raise RuntimeError("broadcast session already started")
        self._started = True
        return self._resume(None)

    def resume(self, value=None) -> Optional[Tuple]:
        """Fulfil the pending request and run the loop to its next one.

        ``value`` is the granted step for ``"sleep"`` requests, the wanted
        matrix for ``"interest"`` requests, and ``None`` for ``"advance"``.
        """
        return self._resume(value)

    def _resume(self, value) -> Optional[Tuple]:
        try:
            self._request = self._gen.send(value)
        except StopIteration as stop:
            self._request = None
            self.result = stop.value
            self.finished = True
        return self._request

    def run_to_completion(self) -> BroadcastResult:
        """Standalone driver: fulfil every request against the own fluid clock."""
        request = self.start() if not self._started else self._request
        while not self.finished:
            if request[0] == "advance":
                self.fluid.advance_to(request[2])
                request = self.resume(None)
            else:  # "sleep": nothing can intervene, grant the full jump
                request = self.resume(request[2])
        return self.result


class BitTorrentBroadcast:
    """Runs synchronized instrumented broadcasts on a topology.

    Parameters
    ----------
    topology:
        The network substrate.
    hosts:
        Hosts participating in the swarm; defaults to every host in the
        topology.
    config:
        Swarm parameters; ``SwarmConfig(torrent=...)`` at minimum.
    routing:
        Optional pre-built routing table (shared across iterations for speed).
    """

    def __init__(
        self,
        topology: Topology,
        config: SwarmConfig,
        hosts: Optional[Sequence[str]] = None,
        routing: Optional[RoutingTable] = None,
    ) -> None:
        self.topology = topology
        self.config = config
        self.routing = routing or RoutingTable(topology)
        if hosts is None:
            hosts = topology.host_names
        hosts = list(hosts)
        if len(hosts) < 2:
            raise ValueError("a broadcast needs at least two hosts")
        unknown = [h for h in hosts if not topology.is_host(h)]
        if unknown:
            raise ValueError(f"unknown hosts: {unknown}")
        if len(set(hosts)) != len(hosts):
            raise ValueError("duplicate hosts in swarm")
        self.hosts = hosts
        self.tracker = Tracker(max_peers=config.max_peers)
        self.choking = ChokingPolicy(
            upload_slots=config.upload_slots, optimistic_every=config.optimistic_every
        )
        # Per-pair TCP rate caps are pure topology functions: cache them.
        self._rate_cap_cache: Dict[Tuple[str, str], Optional[float]] = {}

    # ------------------------------------------------------------------ #
    def _rate_cap(self, src: str, dst: str) -> Optional[float]:
        if self.config.tcp_window is None:
            return None
        key = (src, dst)
        if key not in self._rate_cap_cache:
            cap = flow_rate_cap(self.routing, src, dst, self.config.tcp_window)
            self._rate_cap_cache[key] = cap if np.isfinite(cap) else None
        return self._rate_cap_cache[key]

    # ------------------------------------------------------------------ #
    def run(
        self,
        root: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[List[Tuple[float, str, str, int]]] = None,
    ) -> BroadcastResult:
        """Simulate one synchronized broadcast and return its measurement.

        Parameters
        ----------
        root:
            Seeding host; defaults to the first host in the swarm.
        rng:
            Random generator driving peer selection, choking and piece
            selection for this iteration.
        trace:
            Optional list collecting every fragment receipt as
            ``(time, downloader, uploader, fragment)`` in completion order —
            the sequence the stepping-equivalence tests compare across modes.
        """
        return BroadcastSession(
            self, root=root, rng=rng, trace=trace
        ).run_to_completion()

    def _drive(
        self,
        session: BroadcastSession,
        root: Optional[str],
        rng: Optional[np.random.Generator],
        trace: Optional[List[Tuple[float, str, str, int]]],
    ):
        """The broadcast loop as a generator of clock requests.

        See :class:`BroadcastSession` for the request protocol.  All times
        are absolute: the loop's control grid starts at the session's
        ``start_time`` (zero in the standalone path, so every expression
        reduces bit-for-bit to the classic single-broadcast arithmetic).
        """
        if rng is None:
            rng = np.random.default_rng()
        if root is None:
            root = self.hosts[0]
        if root not in self.hosts:
            raise ValueError(f"root {root!r} is not part of the swarm")
        session.root = root
        start = session.start_time
        departed = session.departed

        cfg = self.config
        num_fragments = cfg.torrent.num_fragments
        fragment_size = cfg.torrent.fragment_size
        n = len(self.hosts)
        index: Dict[str, int] = {name: i for i, name in enumerate(self.hosts)}
        root_index = index[root]
        # Host indices in lexicographic name order: candidate lists must come
        # out sorted by name (exactly as the scalar implementation's
        # ``sorted()`` produced them) for bit-for-bit seed replay.
        lex_order = np.array(sorted(range(n), key=self.hosts.__getitem__))

        # Shared bitfield matrix: row i is peer i's ``have`` array, so peer
        # mutations and the vectorized interest state see the same memory.
        have = np.zeros((n, num_fragments), dtype=bool)
        peers: Dict[str, PeerState] = {
            name: PeerState(
                name=name, index=i, num_fragments=num_fragments, have=have[i]
            )
            for i, name in enumerate(self.hosts)
        }
        peers[root].make_seed()
        peers[root].completion_time = start

        selector = PieceSelector(
            num_fragments, random_first_threshold=cfg.random_first_threshold
        )
        for peer in peers.values():
            selector.register_bitfield(peer.have)

        connections = self.tracker.build_connections(self.hosts, rng)
        neighbor_mask = np.zeros((n, n), dtype=bool)
        for name, neighbor_set in connections.items():
            peers[name].neighbors = set(neighbor_set)
            i = index[name]
            for other in neighbor_set:
                neighbor_mask[i, index[other]] = True

        # lack = ~have, maintained incrementally; wanted[u, d] counts the
        # fragments u holds that d lacks, so "d is interested in u" is the
        # O(1) test wanted[u, d] > 0 (equivalent to the wire-protocol rule:
        # seeds want nothing, empty peers offer nothing, and a seeding
        # uploader always has something an incomplete downloader needs).
        #
        # Two equivalent maintenance strategies (both produce exact integer
        # counts, so behaviour is identical): small swarms recompute the
        # matrix each control step with one BLAS matmul; large ones (paper
        # scale: 128 hosts x 15k fragments) update it incrementally per
        # receipt batch, which is O(hosts) per received fragment.
        lack = ~have
        interest_by_matmul = n * n * num_fragments <= MATMUL_INTEREST_LIMIT
        # Batched lanes on the incremental-interest path need no driver help
        # (the int64 updates are exact per lane), so the flag only matters
        # when the matmul path is active.
        batch_interest = session._batch_interest and interest_by_matmul
        wanted = np.zeros((n, n), dtype=np.int64)
        wanted[root_index, :] = num_fragments
        wanted[root_index, root_index] = 0

        def recompute_wanted() -> np.ndarray:
            # counts[u] - |u ∩ d| via one float32 matmul; exact because the
            # counts are far below 2**24.
            have_f = have.astype(np.float32)
            common = have_f @ have_f.T
            return common.diagonal()[:, None] - common

        fluid = session.fluid
        fragments = FragmentMatrix(self.hosts)
        availability = selector.availability
        random_first_threshold = selector.random_first_threshold
        wanted_buf = np.empty(num_fragments, dtype=bool)
        alive_buf = np.empty(num_fragments, dtype=bool)

        # Active fluid pipes keyed by (uploader, downloader); ``pipe_order``
        # mirrors the keys in sorted order (maintained by bisect on
        # open/close) so the per-step scans never re-sort.  Aligned with
        # ``pipe_order`` are contiguous per-pipe vectors (fluid slot, host
        # indices, consumed-byte base, tit-for-tat credit base, fragment
        # progress base) rebuilt lazily after membership changes.  The bases
        # are *anchored*: ``pipe_consumed``/``pipe_progress`` are only
        # written at a pipe's conversion events (and ``pipe_credit_base`` at
        # credit flushes), so the byte state observed at any control point is
        # an analytic function of the last event — identical whether or not
        # the inert points in between were visited.  That anchoring is what
        # makes the event-stepped mode replay the fixed loop bit for bit.
        pipes: Dict[Tuple[str, str], FluidTransfer] = {}
        pipe_order: List[Tuple[str, str]] = []
        pipe_pos: Dict[Tuple[str, str], int] = {}
        pipe_slots = np.empty(0, dtype=np.int64)
        pipe_up = np.empty(0, dtype=np.int64)
        pipe_down = np.empty(0, dtype=np.int64)
        pipe_consumed = np.empty(0, dtype=np.float64)
        pipe_credit_base = np.empty(0, dtype=np.float64)
        pipe_progress = np.empty(0, dtype=np.float64)
        # A pipe whose fluid transfer ran its whole byte budget is detached
        # from the FlowSet (its slot is recycled) but, exactly as in the
        # scalar implementation, stays open and simply starves: its frozen
        # transferred value is patched over the slot read each step.
        pipe_dead_positions = np.empty(0, dtype=np.int64)
        pipe_dead_values = np.empty(0, dtype=np.float64)
        pipes_dirty = False
        # Fragment progress of currently-closed pipes (progress survives a
        # close/reopen cycle, as in the scalar implementation).
        progress_carry: Dict[Tuple[str, str], float] = {}
        # Sorted view of every peer's unchoke set, same replay rationale.
        unchoked_order: Dict[str, List[str]] = {name: [] for name in self.hosts}

        incomplete: Set[str] = {name for name in self.hosts if name != root}
        incomplete_mask = np.ones(n, dtype=bool)
        incomplete_mask[root_index] = False
        time = start
        round_index = 0
        next_rechoke = start

        def interested_in(uploader_index: int) -> List[str]:
            """Neighbours of the uploader that want something it has, by name."""
            mask = neighbor_mask[uploader_index] & incomplete_mask
            mask &= wanted[uploader_index] > 0
            if not mask.any():
                return []
            hosts = self.hosts
            return [hosts[i] for i in lex_order[mask[lex_order]]]

        def open_pipe(uploader: str, downloader: str) -> None:
            nonlocal pipes_dirty
            key = (uploader, downloader)
            if key in pipes:
                return
            transfer = fluid.start_transfer(
                uploader,
                downloader,
                size=float(cfg.torrent.size) * 4.0 + 1.0,
                rate_cap=self._rate_cap(uploader, downloader),
                on_complete=session._on_pipe_complete,
            )
            pipes[key] = transfer
            bisect.insort(pipe_order, key)
            pipes_dirty = True

        def close_pipe(uploader: str, downloader: str, keep_progress: bool = True) -> None:
            nonlocal pipes_dirty
            key = (uploader, downloader)
            transfer = pipes.pop(key, None)
            if transfer is None:
                if not keep_progress:
                    progress_carry.pop(key, None)
                return
            fluid.cancel_transfer(transfer)
            del pipe_order[bisect.bisect_left(pipe_order, key)]
            pipes_dirty = True
            position = pipe_pos.pop(key, None)
            if position is None:
                # Opened and closed before the vectors were ever rebuilt: no
                # bytes moved, nothing to flush.
                if not keep_progress:
                    progress_carry.pop(key, None)
                return
            # Settle the anchored bases at the close time: the cancelled
            # transfer's frozen byte count is exact as of the current clock.
            moved = transfer.transferred
            # Flush the round's tit-for-tat credit before the pipe vanishes.
            delta = moved - pipe_credit_base[position]
            if delta > 0:
                peers[downloader].credit_download(uploader, float(delta))
            if keep_progress:
                progress_carry[key] = float(
                    pipe_progress[position] + (moved - pipe_consumed[position])
                )
            else:
                progress_carry.pop(key, None)

        def rebuild_pipe_vectors() -> None:
            nonlocal pipes_dirty, pipe_pos, pipe_slots, pipe_up, pipe_down
            nonlocal pipe_consumed, pipe_credit_base, pipe_progress
            nonlocal pipe_dead_positions, pipe_dead_values
            count = len(pipe_order)
            new_pos: Dict[Tuple[str, str], int] = {}
            slots = np.empty(count, dtype=np.int64)
            up_idx = np.empty(count, dtype=np.int64)
            down_idx = np.empty(count, dtype=np.int64)
            new_consumed = np.zeros(count, dtype=np.float64)
            new_base = np.zeros(count, dtype=np.float64)
            new_progress = np.zeros(count, dtype=np.float64)
            dead_positions: List[int] = []
            dead_values: List[float] = []
            old_pos = pipe_pos
            for position, key in enumerate(pipe_order):
                new_pos[key] = position
                transfer = pipes[key]
                slot = transfer._slot
                if slot < 0:
                    # Completed transfer: park the position on slot 0 and
                    # patch its frozen byte count over the vector read.
                    slot = 0
                    dead_positions.append(position)
                    dead_values.append(transfer.transferred)
                slots[position] = slot
                uploader, downloader = key
                up_idx[position] = index[uploader]
                down_idx[position] = index[downloader]
                previous = old_pos.get(key)
                if previous is None:
                    new_progress[position] = progress_carry.pop(key, 0.0)
                else:
                    new_consumed[position] = pipe_consumed[previous]
                    new_base[position] = pipe_credit_base[previous]
                    new_progress[position] = pipe_progress[previous]
            pipe_pos = new_pos
            pipe_slots = slots
            pipe_up = up_idx
            pipe_down = down_idx
            pipe_consumed = new_consumed
            pipe_credit_base = new_base
            pipe_progress = new_progress
            pipe_dead_positions = np.array(dead_positions, dtype=np.int64)
            pipe_dead_values = np.array(dead_values, dtype=np.float64)
            pipes_dirty = False

        def moved_at(t: float) -> np.ndarray:
            """Exact per-pipe transferred bytes at absolute time ``t``.

            Detached (budget-exhausted) pipes read their frozen totals; live
            pipes read the fluid network's anchored-analytic state.  Pure —
            valid at any time up to the next fluid transition, which is what
            the event mode's jump predicates extrapolate with.
            """
            moved = fluid.transferred_at(pipe_slots, t)
            if pipe_dead_positions.size:
                moved[pipe_dead_positions] = pipe_dead_values
            return moved

        def flush_credits() -> None:
            """Credit each open pipe's bytes since the last rechoke.

            The scalar implementation credited every step; the totals per
            choking round are identical, so crediting lazily (at rechoke and
            on pipe close) preserves the reciprocation ranking.
            """
            moved = moved_at(time)
            owed = moved - pipe_credit_base
            for position in np.flatnonzero(owed > 0):
                uploader, downloader = pipe_order[position]
                peers[downloader].credit_download(
                    uploader, float(owed[position])
                )
            np.copyto(pipe_credit_base, moved)

        def sync_pipes() -> None:
            """Make the fluid flow set match the current unchoke/interest state.

            Iteration follows the maintained sorted unchoke/pipe orders so
            that the order in which pipes are opened — and therefore the
            consumption of the random stream — is identical across processes
            regardless of string-hash randomisation; campaigns replay
            bit-for-bit from their seed.
            """
            for uploader_index, uploader in enumerate(self.hosts):
                up = peers[uploader]
                if up.fragment_count == 0:
                    continue
                order = unchoked_order[uploader]
                for downloader in list(order):
                    if downloader not in up.neighbors:
                        up.unchoked.discard(downloader)
                        order.remove(downloader)
                        close_pipe(uploader, downloader)
                        continue
                    if (
                        downloader not in incomplete
                        or wanted[uploader_index, index[downloader]] <= 0
                    ):
                        close_pipe(uploader, downloader)
                    else:
                        open_pipe(uploader, downloader)
            # Drop pipes whose uploader revoked the unchoke.
            for uploader, downloader in list(pipe_order):
                if downloader not in peers[uploader].unchoked:
                    close_pipe(uploader, downloader)

        # ---- churn (peer leave/rejoin mid-broadcast) --------------------- #
        # Applied at visited control points only, so both stepping modes see
        # a churn event at the same grid point (the workload engine wakes a
        # jumped-ahead session at the first grid point after the event).
        def apply_leave(name: str) -> bool:
            """Tear a peer out of the swarm; in-flight pipe progress is lost,
            its fragment bitfield is kept (BitTorrent resume semantics)."""
            if name == root or name in departed or name not in index:
                return False
            departed.add(name)
            i = index[name]
            for key in [k for k in pipe_order if name in k]:
                close_pipe(key[0], key[1], keep_progress=False)
            for key in [k for k in progress_carry if name in k]:
                progress_carry.pop(key)
            peer = peers[name]
            for other in list(peer.neighbors):
                other_peer = peers[other]
                other_peer.neighbors.discard(name)
                if name in other_peer.unchoked:
                    other_peer.unchoked.discard(name)
                    order = unchoked_order[other]
                    pos = bisect.bisect_left(order, name)
                    if pos < len(order) and order[pos] == name:
                        del order[pos]
                if other_peer.optimistic == name:
                    other_peer.optimistic = None
            neighbor_mask[i, :] = False
            neighbor_mask[:, i] = False
            peer.neighbors = set()
            peer.unchoked = set()
            peer.optimistic = None
            peer.downloaded_this_round.clear()
            unchoked_order[name] = []
            # A departed peer must not gate broadcast completion while away.
            incomplete.discard(name)
            incomplete_mask[i] = False
            return True

        def apply_rejoin(name: str, churn_rng: np.random.Generator) -> bool:
            """Re-admit a departed peer with a fresh tracker announce."""
            if name not in departed:
                return False
            departed.discard(name)
            i = index[name]
            peer = peers[name]
            present = [h for h in self.hosts if h != name and h not in departed]
            picks = self.tracker.announce(name, present, churn_rng) if present else set()
            peer.neighbors = set(picks)
            for other in picks:
                peers[other].neighbors.add(name)
                j = index[other]
                neighbor_mask[i, j] = True
                neighbor_mask[j, i] = True
            if peer._fragment_count < num_fragments:
                incomplete.add(name)
                incomplete_mask[i] = True
            return True

        dt = cfg.control_dt
        max_steps = int(np.ceil(cfg.max_sim_time / dt)) + 1
        upload_slots = self.choking.upload_slots
        event_mode = cfg.stepping == "event"
        agenda = _ControlAgenda() if event_mode else None
        step = 0
        control_steps = 0
        # Telemetry flags are hoisted once per broadcast: with tracing off the
        # whole loop pays two local-bool reads, nothing else.  Records only
        # *read* state — no random draws, no clock movement — so seed goldens
        # replay bit-for-bit with tracing on (tests/test_seed_replay.py).
        trace_full = TRACER.full
        broadcast_started = TRACER.now() if TRACER.enabled else 0.0

        # ---- event-mode jump predicates (exact, grid-aligned) ------------ #
        # The predicates below answer "at which future control step does the
        # loop body first do something?" with the *same float expressions*
        # the body itself evaluates, so a jump lands exactly on the step the
        # fixed loop would have acted at.  Analytic estimates seed the search
        # and a short walk settles ulp-level rounding.
        def conversion_due(t: float) -> bool:
            """Would the conversion check fire if evaluated at time ``t``?"""
            moved = moved_at(t)
            deltas = moved - pipe_consumed
            progress = pipe_progress + deltas
            return bool(((deltas > 0) & (progress >= fragment_size)).any())

        def next_rechoke_step(current: int) -> int:
            """First step at or after ``current + 1`` whose clock hits the timer."""
            target = next_rechoke - 1e-12
            candidate = max(current + 1, int(np.ceil((target - start) / dt)))
            while start + candidate * dt < target:
                candidate += 1
            while candidate - 1 > current and start + (candidate - 1) * dt >= target:
                candidate -= 1
            return candidate

        def next_fluid_step(current: int) -> int:
            """First step whose advance covers the next fluid-flow transition."""
            transition = fluid.next_transition()
            if transition is None:
                return max_steps
            candidate = max(current + 1, int(np.ceil((transition - start) / dt)) - 1)
            while start + (candidate + 1) * dt < transition:
                candidate += 1
            while candidate - 1 > current and start + candidate * dt >= transition:
                candidate -= 1
            return candidate

        def next_conversion_step(current: int, cap: int) -> int:
            """First step in ``(current, cap]`` whose conversion check fires.

            Rates are constant up to ``cap`` (which the caller bounds by the
            next fluid transition), so per-pipe fragment boundaries are the
            analytic ``need / (rate · dt)``; the walk pins the estimate to
            the exact grid comparison the step body performs.
            """
            if not pipe_order or current + 1 >= cap:
                return cap
            rates = fluid._rate[pipe_slots].copy()
            if pipe_dead_positions.size:
                rates[pipe_dead_positions] = 0.0
            moving = rates > 1e-12
            if not moving.any():
                return cap
            progress = pipe_progress + (moved_at(time) - pipe_consumed)
            need = fragment_size - progress[moving]
            steps_needed = np.ceil(need / (rates[moving] * dt))
            # The estimate can be off by a grid step when a boundary lands
            # within float noise of a control point; the walk below settles
            # it against the exact step-body predicate (monotone in time),
            # so the jump lands on precisely the step the fixed loop acts at.
            candidate = min(current + max(int(steps_needed.min()), 1), cap)
            while candidate - 1 > current and conversion_due(start + candidate * dt):
                candidate -= 1
            while candidate < cap and not conversion_due(start + (candidate + 1) * dt):
                candidate += 1
            return candidate

        while incomplete:
            if step >= max_steps:
                raise RuntimeError(
                    f"broadcast did not complete within max_sim_time="
                    f"{cfg.max_sim_time}s ({len(incomplete)} hosts incomplete)"
                )
            time = start + step * dt
            control_steps += 1
            step_active = False
            if session._pending_churn:
                for op, name, churn_rng in session._drain_churn():
                    changed = (
                        apply_leave(name) if op == "leave"
                        else apply_rejoin(name, churn_rng)
                    )
                    if changed:
                        step_active = True
                        session.churn_events += 1
                        session.churn_applied[op] += 1
                if not incomplete:
                    break
                if pipes_dirty:
                    # Departures closed pipes: realign the slot vectors now,
                    # before flush_credits/moved_at read the old layout.
                    rebuild_pipe_vectors()
            if session._pipe_completed:
                # A pipe budget completed outside this loop's own advance
                # (during a jump landing, or while another tenant held the
                # clock): treat it exactly like an advance-time completion.
                session._pipe_completed = False
                pipes_dirty = True
                step_active = True
            if interest_by_matmul:
                if batch_interest:
                    # Park at the interest point: the batched lock-step
                    # driver gathers every lane due at this step and answers
                    # each with one slice of a stacked (lanes, n, n) matmul.
                    # All values are exact integers < 2**24, so any summation
                    # order yields bit-identical float32 results and the
                    # slice equals recompute_wanted() exactly.
                    wanted = yield ("interest", step, time, have)
                else:
                    wanted = recompute_wanted()

            # --- choking -------------------------------------------------- #
            if time >= next_rechoke - 1e-12:
                step_active = True
                if pipe_order:
                    flush_credits()
                for name in rng.permutation(self.hosts):
                    peer = peers[name]
                    candidates = interested_in(index[name])
                    peer.unchoked = self.choking.rechoke(
                        peer, candidates, round_index, rng
                    )
                    unchoked_order[name] = sorted(peer.unchoked)
                    peer.reset_round()
                round_index += 1
                next_rechoke += cfg.rechoke_interval
            else:
                # Fill idle upload slots as soon as someone becomes interested.
                # One matrix pass replaces the per-host interest masks.
                fillable = neighbor_mask & incomplete_mask[None, :]
                np.logical_and(fillable, wanted > 0, out=fillable)
                host_has_candidates = fillable.any(axis=1).tolist()
                hosts = self.hosts
                for uploader_index, name in enumerate(hosts):
                    peer = peers[name]
                    if peer.fragment_count == 0:
                        continue
                    unchoked = peer.unchoked
                    if unchoked:
                        stale = [
                            d for d in unchoked
                            if d not in incomplete and d != root
                        ]
                        if stale:
                            step_active = True
                            order = unchoked_order[name]
                            for d in stale:
                                unchoked.discard(d)
                                order.remove(d)
                    free = upload_slots - len(unchoked)
                    if free <= 0 or not host_has_candidates[uploader_index]:
                        continue
                    row = fillable[uploader_index]
                    waiting = [
                        hosts[i] for i in lex_order[row[lex_order]]
                        if hosts[i] not in unchoked
                    ]
                    if not waiting:
                        continue
                    step_active = True
                    picks = rng.choice(len(waiting), size=min(free, len(waiting)),
                                       replace=False)
                    order = unchoked_order[name]
                    for i in picks:
                        pick = waiting[i]
                        if pick not in unchoked:
                            unchoked.add(pick)
                            bisect.insort(order, pick)

            if pipes_dirty:
                # Carried over from a fluid-flow transition during the last
                # advance: the allocation changed, so this point is a state
                # change even if the choker left everything in place.
                step_active = True
            sync_pipes()
            if pipes_dirty:
                step_active = True
                rebuild_pipe_vectors()

            # --- data movement -------------------------------------------- #
            time = start + (step + 1) * dt
            yield ("advance", step + 1, time)
            if session._pipe_completed:
                # A pipe transfer exhausted its byte budget and was detached;
                # its recycled slot must not be read after the next rebuild.
                session._pipe_completed = False
                pipes_dirty = True
                step_active = True

            ready_list: List[int] = []
            if pipe_order:
                moved = moved_at(time)
                deltas = moved - pipe_consumed
                progress_now = pipe_progress + deltas
                # Only pipes that accumulated a whole fragment need Python
                # work; their anchored bases are settled below, everything
                # else stays a pure function of its last conversion event.
                ready = np.flatnonzero(
                    (deltas > 0) & (progress_now >= fragment_size)
                )
                if ready.size:
                    step_active = True
                    # Unbox the per-event scalars in bulk; the loop below then
                    # runs on plain Python ints/floats.
                    ready_list = ready.tolist()
                    ready_up = pipe_up[ready].tolist()
                    ready_down = pipe_down[ready].tolist()
                    ready_progress = progress_now[ready].tolist()
                    ready_moved = moved[ready].tolist()

            if trace_full and ready_list:
                conversion_started = TRACER.now()
                pass_receipts = 0
            for event, position in enumerate(ready_list):
                uploader, downloader = pipe_order[position]
                uploader_index = ready_up[event]
                downloader_index = ready_down[event]
                down = peers[downloader]
                surplus = ready_progress[event]
                downloader_have = have[downloader_index]
                downloader_lack = lack[downloader_index]
                held = down._fragment_count
                received: List[int] = []
                # Inlined rarest-first selection (PieceSelector.select_from
                # semantics, identical random-stream consumption).  Within one
                # pipe's conversion loop only the downloader's bitfield
                # changes, and only at just-received fragments — so the
                # candidate set is computed once, consumed via an alive mask,
                # and the rarest tie group drains through cheap list pops; the
                # next tier is recomputed exactly when the scalar code's min
                # would move on.
                np.logical_and(have[uploader_index], downloader_lack, out=wanted_buf)
                candidates = wanted_buf.nonzero()[0]
                if candidates.size == 0:
                    # Nothing useful left on this pipe; drop the surplus.
                    pipe_consumed[position] = ready_moved[event]
                    pipe_progress[position] = 0.0
                    continue
                alive = alive_buf[: candidates.size]
                alive.fill(True)
                counts_vals: Optional[np.ndarray] = None
                tie_positions: Optional[List[int]] = None
                while surplus >= fragment_size:
                    if held < random_first_threshold:
                        live = candidates[alive]
                        if live.size == 0:
                            surplus = 0.0
                            break
                        fragment = int(live[int(rng.integers(0, live.size))])
                        alive[int(np.searchsorted(candidates, fragment))] = False
                        tie_positions = None
                    else:
                        if not tie_positions:
                            if counts_vals is None:
                                counts_vals = availability[candidates]
                            live_counts = counts_vals[alive]
                            if live_counts.size == 0:
                                surplus = 0.0
                                break
                            rarest = live_counts.min()
                            tie_positions = (
                                ((counts_vals == rarest) & alive).nonzero()[0].tolist()
                            )
                        r = int(rng.integers(0, len(tie_positions)))
                        pos = tie_positions.pop(r)
                        fragment = int(candidates[pos])
                        alive[pos] = False
                    surplus -= fragment_size
                    received.append(fragment)
                    downloader_lack[fragment] = False
                    downloader_have[fragment] = True
                    availability[fragment] += 1
                    held += 1
                    if held == num_fragments:
                        down._fragment_count = held
                        down.completion_time = time
                        incomplete.discard(downloader)
                        incomplete_mask[downloader_index] = False
                        break
                down._fragment_count = held
                pipe_consumed[position] = ready_moved[event]
                pipe_progress[position] = surplus
                if received:
                    if trace_full:
                        pass_receipts += len(received)
                    if trace is not None:
                        for fragment in received:
                            trace.append((time, downloader, uploader, fragment))
                    fragments.counts[downloader_index, uploader_index] += len(received)
                    if not interest_by_matmul:
                        # Batched interest update: within this loop only the
                        # downloader's row/column changed, so the per-receipt
                        # column sums collapse into one fancy-indexed sum (the
                        # diagonal is forced back to zero afterwards; the row
                        # update uses lack = ~have elementwise).
                        shared = have[:, received].sum(axis=1)
                        wanted[:, downloader_index] -= shared
                        wanted[downloader_index, :] += len(received) - shared
                        wanted[downloader_index, downloader_index] = 0

            if trace_full and ready_list:
                # Per-receipt conversion cost: wall seconds of the pass over
                # the number of fragments it converted (sim-time stamped).
                TRACER.event(
                    "swarm.conversion",
                    sim_time=time,
                    pipes=len(ready_list),
                    receipts=pass_receipts,
                    wall_s=TRACER.now() - conversion_started,
                )

            # --- next control point ---------------------------------------- #
            if not event_mode or step_active:
                # Fixed stepping visits every grid point; after a state
                # change the event mode must look at the very next point too
                # (new interest can fill idle slots or reopen pipes there).
                step += 1
                continue
            # Quiescent point: nothing changed, so no random draws or pipe
            # transitions can occur before the next scheduled control event.
            # Fast path: if the very next point converts anyway (the common
            # case in conversion-dense configs), one predicate evaluation
            # replaces the whole agenda round.  A conservative answer only
            # ever visits a point the fixed loop visits too.
            if pipe_order and conversion_due(start + (step + 2) * dt):
                step += 1
                continue
            # Put the three event sources on the agenda and jump straight to
            # the earliest — the grid points in between are provably inert
            # under the current rates.  The driver may grant an earlier
            # landing (another tenant changed the rates, or churn arrived);
            # extra visits are exact, since the fixed loop visits them all.
            rechoke_step = next_rechoke_step(step)
            fluid_step = next_fluid_step(step)
            horizon = min(rechoke_step, fluid_step, max_steps)
            conv_step = next_conversion_step(step, horizon)
            agenda.schedule("rechoke", rechoke_step)
            agenda.schedule("fluid", fluid_step)
            agenda.schedule("conversion", conv_step)
            target = agenda.pop_next_step()
            granted = yield ("sleep", step, target, start + target * dt)
            if granted is not None:
                target = max(min(granted, target), step + 1)
            if trace_full and target > step + 1:
                # Control steps jumped rather than visited: the span
                # (step, target) is provably inert under the current rates.
                TRACER.event(
                    "swarm.jump",
                    sim_time=start + target * dt,
                    from_step=step,
                    to_step=target,
                )
            step = target
            # Bring the fluid clock to the landing point before its control
            # logic runs: the skipped span is transition-free (the jump is
            # capped by the next fluid transition), so this only moves the
            # clock — but pipe opens/closes at the landing step must anchor
            # their rate change at the landing time, exactly as the fixed
            # loop (whose clock always sits at the current grid point) does.
            fluid.advance_to(start + step * dt)

        receipts = int(fragments.counts.sum())
        METRICS.count("swarm.broadcasts")
        METRICS.count("swarm.control_steps", control_steps)
        METRICS.count(f"swarm.broadcasts.{cfg.stepping}")
        METRICS.count("swarm.receipts", receipts)
        if TRACER.enabled:
            TRACER.span_record(
                "swarm.broadcast",
                broadcast_started,
                root=root,
                stepping=cfg.stepping,
                control_steps=control_steps,
                steps_jumped=max(0, step - control_steps),
                receipts=receipts,
                sim_start=start,
                sim_end=start + step * dt,
            )
        completion_times = {
            name: (peer.completion_time if peer.completion_time is not None else time)
            for name, peer in peers.items()
        }
        # Peers still churned out at the end never finished downloading; they
        # must not stretch the broadcast duration to the last control point.
        finishers = [
            t for name, t in completion_times.items()
            if name != root and name not in departed
        ]
        # Duration is the broadcast's span on its own clock (absolute end
        # minus start); identical to the absolute end for zero-start runs.
        duration = (max(finishers) if finishers else time) - start
        symmetric = fragments.symmetric_weights()
        distinct_edges = int(np.count_nonzero(np.triu(symmetric, k=1)))
        return BroadcastResult(
            fragments=fragments,
            root=root,
            duration=duration,
            completion_times=completion_times,
            distinct_edges=distinct_edges,
            control_steps=control_steps,
            stepping=cfg.stepping,
        )
