"""Synchronized BitTorrent broadcast over the fluid network model.

A broadcast starts with one *root* (seed) holding the complete file and every
other host holding nothing; all clients start simultaneously and the
broadcast is complete when the last client finishes downloading (the paper's
reference completion time).

The simulation advances in small control steps.  Between steps, data moves as
max-min-fair fluid flows along the unchoke relation; at each step the
accumulated bytes on every active (uploader → downloader) pipe are converted
into fragments using rarest-first selection, the fragment counters are
incremented, and choking/interest state is refreshed.  Full tit-for-tat
rechokes happen every ``rechoke_interval`` seconds, and peers with idle
upload slots grab newly interested neighbours immediately, as the reference
client's choker effectively does.

This "fluid BitTorrent" keeps the protocol features the paper identifies as
the sources of measurement randomness — random initial peer choice, four
upload slots, 35-peer sets, asymmetric broadcast data flow — while staying
fast enough to run dozens of measurement iterations on a laptop.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bittorrent.choking import DEFAULT_UPLOAD_SLOTS, ChokingPolicy
from repro.bittorrent.instrumentation import FragmentMatrix
from repro.bittorrent.peer import PeerState
from repro.bittorrent.selection import PieceSelector
from repro.bittorrent.torrent import TorrentMeta
from repro.bittorrent.tracker import DEFAULT_MAX_PEERS, Tracker
from repro.network.fluid import FluidNetwork, FluidTransfer
from repro.network.grid5000 import DEFAULT_TCP_WINDOW, flow_rate_cap
from repro.network.routing import RoutingTable
from repro.network.topology import Topology


@dataclass(frozen=True)
class SwarmConfig:
    """Tunable parameters of a broadcast simulation.

    The defaults mirror the reference client (4 upload slots, 35-peer sets,
    16 KiB fragments); ``control_dt`` and ``rechoke_interval`` are simulation
    knobs whose paper counterparts are continuous TCP dynamics and the 10 s
    rechoke timer respectively.
    """

    torrent: TorrentMeta
    upload_slots: int = DEFAULT_UPLOAD_SLOTS
    max_peers: int = DEFAULT_MAX_PEERS
    rechoke_interval: float = 5.0
    optimistic_every: int = 3
    control_dt: float = 0.1
    tcp_window: Optional[float] = DEFAULT_TCP_WINDOW
    random_first_threshold: int = 4
    max_sim_time: float = 3600.0

    def __post_init__(self) -> None:
        if self.control_dt <= 0:
            raise ValueError("control_dt must be positive")
        if self.rechoke_interval < self.control_dt:
            raise ValueError("rechoke_interval must be at least control_dt")
        if self.max_sim_time <= 0:
            raise ValueError("max_sim_time must be positive")


@dataclass
class BroadcastResult:
    """Outcome of one synchronized broadcast.

    Attributes
    ----------
    fragments:
        Directed fragment counts (the measurement of this iteration).
    root:
        The seeding host.
    duration:
        Maximum download completion time over all clients (seconds).
    completion_times:
        Per-host download completion time.
    distinct_edges:
        Number of unordered host pairs that exchanged at least one fragment.
    """

    fragments: FragmentMatrix
    root: str
    duration: float
    completion_times: Dict[str, float]
    distinct_edges: int

    @property
    def hosts(self) -> List[str]:
        return list(self.fragments.labels)


class BitTorrentBroadcast:
    """Runs synchronized instrumented broadcasts on a topology.

    Parameters
    ----------
    topology:
        The network substrate.
    hosts:
        Hosts participating in the swarm; defaults to every host in the
        topology.
    config:
        Swarm parameters; ``SwarmConfig(torrent=...)`` at minimum.
    routing:
        Optional pre-built routing table (shared across iterations for speed).
    """

    def __init__(
        self,
        topology: Topology,
        config: SwarmConfig,
        hosts: Optional[Sequence[str]] = None,
        routing: Optional[RoutingTable] = None,
    ) -> None:
        self.topology = topology
        self.config = config
        self.routing = routing or RoutingTable(topology)
        if hosts is None:
            hosts = topology.host_names
        hosts = list(hosts)
        if len(hosts) < 2:
            raise ValueError("a broadcast needs at least two hosts")
        unknown = [h for h in hosts if not topology.is_host(h)]
        if unknown:
            raise ValueError(f"unknown hosts: {unknown}")
        if len(set(hosts)) != len(hosts):
            raise ValueError("duplicate hosts in swarm")
        self.hosts = hosts
        self.tracker = Tracker(max_peers=config.max_peers)
        self.choking = ChokingPolicy(
            upload_slots=config.upload_slots, optimistic_every=config.optimistic_every
        )
        # Per-pair TCP rate caps are pure topology functions: cache them.
        self._rate_cap_cache: Dict[Tuple[str, str], Optional[float]] = {}

    # ------------------------------------------------------------------ #
    def _rate_cap(self, src: str, dst: str) -> Optional[float]:
        if self.config.tcp_window is None:
            return None
        key = (src, dst)
        if key not in self._rate_cap_cache:
            cap = flow_rate_cap(self.routing, src, dst, self.config.tcp_window)
            self._rate_cap_cache[key] = cap if np.isfinite(cap) else None
        return self._rate_cap_cache[key]

    # ------------------------------------------------------------------ #
    def run(
        self,
        root: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> BroadcastResult:
        """Simulate one synchronized broadcast and return its measurement.

        Parameters
        ----------
        root:
            Seeding host; defaults to the first host in the swarm.
        rng:
            Random generator driving peer selection, choking and piece
            selection for this iteration.
        """
        if rng is None:
            rng = np.random.default_rng()
        if root is None:
            root = self.hosts[0]
        if root not in self.hosts:
            raise ValueError(f"root {root!r} is not part of the swarm")

        cfg = self.config
        num_fragments = cfg.torrent.num_fragments
        fragment_size = cfg.torrent.fragment_size

        peers: Dict[str, PeerState] = {
            name: PeerState(name=name, index=i, num_fragments=num_fragments)
            for i, name in enumerate(self.hosts)
        }
        peers[root].make_seed()
        peers[root].completion_time = 0.0

        selector = PieceSelector(
            num_fragments, random_first_threshold=cfg.random_first_threshold
        )
        for peer in peers.values():
            selector.register_bitfield(peer.have)

        connections = self.tracker.build_connections(self.hosts, rng)
        for name, neighbor_set in connections.items():
            peers[name].neighbors = set(neighbor_set)

        fluid = FluidNetwork(self.topology, self.routing)
        fragments = FragmentMatrix(self.hosts)

        # Active fluid pipes keyed by (uploader, downloader).
        pipes: Dict[Tuple[str, str], FluidTransfer] = {}
        consumed: Dict[Tuple[str, str], float] = {}
        progress: Dict[Tuple[str, str], float] = {}

        incomplete: Set[str] = {name for name in self.hosts if name != root}
        time = 0.0
        round_index = 0
        next_rechoke = 0.0

        def interested_in(uploader: str) -> List[str]:
            """Neighbours of ``uploader`` that want something it has."""
            up = peers[uploader]
            return sorted(
                d
                for d in up.neighbors
                if d in incomplete and peers[d].is_interested_in(up)
            )

        def open_pipe(uploader: str, downloader: str) -> None:
            key = (uploader, downloader)
            if key in pipes:
                return
            transfer = fluid.start_transfer(
                uploader,
                downloader,
                size=float(cfg.torrent.size) * 4.0 + 1.0,
                rate_cap=self._rate_cap(uploader, downloader),
            )
            pipes[key] = transfer
            consumed[key] = transfer.transferred
            progress.setdefault(key, 0.0)

        def close_pipe(uploader: str, downloader: str, keep_progress: bool = True) -> None:
            key = (uploader, downloader)
            transfer = pipes.pop(key, None)
            if transfer is not None:
                fluid.cancel_transfer(transfer)
            consumed.pop(key, None)
            if not keep_progress:
                progress.pop(key, None)

        def sync_pipes() -> None:
            """Make the fluid flow set match the current unchoke/interest state.

            Iteration is over *sorted* unchoke sets so that the order in which
            pipes are opened — and therefore the consumption of the random
            stream — is identical across processes regardless of string-hash
            randomisation; campaigns replay bit-for-bit from their seed.
            """
            for uploader, up in peers.items():
                if up.fragment_count == 0:
                    continue
                for downloader in sorted(up.unchoked):
                    if downloader not in up.neighbors:
                        up.unchoked.discard(downloader)
                        close_pipe(uploader, downloader)
                        continue
                    down = peers[downloader]
                    if downloader not in incomplete or not down.is_interested_in(up):
                        close_pipe(uploader, downloader)
                    else:
                        open_pipe(uploader, downloader)
            # Drop pipes whose uploader revoked the unchoke.
            for uploader, downloader in sorted(pipes.keys()):
                if downloader not in peers[uploader].unchoked:
                    close_pipe(uploader, downloader)

        max_steps = int(np.ceil(cfg.max_sim_time / cfg.control_dt)) + 1
        for _step in range(max_steps):
            if not incomplete:
                break

            # --- choking -------------------------------------------------- #
            if time >= next_rechoke - 1e-12:
                for name in rng.permutation(self.hosts):
                    peer = peers[name]
                    candidates = interested_in(name)
                    peer.unchoked = self.choking.rechoke(
                        peer, candidates, round_index, rng
                    )
                    peer.reset_round()
                round_index += 1
                next_rechoke += cfg.rechoke_interval
            else:
                # Fill idle upload slots as soon as someone becomes interested.
                for name in self.hosts:
                    peer = peers[name]
                    if peer.fragment_count == 0:
                        continue
                    peer.unchoked = {
                        d for d in peer.unchoked if d in incomplete or d == root
                    }
                    free = self.choking.upload_slots - len(peer.unchoked)
                    if free <= 0:
                        continue
                    waiting = [d for d in interested_in(name) if d not in peer.unchoked]
                    if not waiting:
                        continue
                    picks = rng.choice(len(waiting), size=min(free, len(waiting)),
                                       replace=False)
                    peer.unchoked.update(waiting[i] for i in picks)

            sync_pipes()

            # --- data movement -------------------------------------------- #
            fluid.advance(cfg.control_dt)
            time += cfg.control_dt

            for (uploader, downloader), transfer in sorted(pipes.items()):
                delta = transfer.transferred - consumed[(uploader, downloader)]
                if delta <= 0:
                    continue
                consumed[(uploader, downloader)] = transfer.transferred
                down = peers[downloader]
                up = peers[uploader]
                down.credit_download(uploader, delta)
                progress[(uploader, downloader)] += delta
                while progress[(uploader, downloader)] >= fragment_size:
                    fragment = selector.select(down, up, rng)
                    if fragment is None:
                        # Nothing useful left on this pipe; drop the surplus.
                        progress[(uploader, downloader)] = 0.0
                        break
                    progress[(uploader, downloader)] -= fragment_size
                    down.receive_fragment(fragment)
                    selector.record_receipt(fragment)
                    fragments.record(downloader, uploader)
                    if down.is_seed:
                        down.completion_time = time
                        incomplete.discard(downloader)
                        break

        else:
            raise RuntimeError(
                f"broadcast did not complete within max_sim_time="
                f"{cfg.max_sim_time}s ({len(incomplete)} hosts incomplete)"
            )

        completion_times = {
            name: (peer.completion_time if peer.completion_time is not None else time)
            for name, peer in peers.items()
        }
        duration = max(t for name, t in completion_times.items() if name != root)
        symmetric = fragments.symmetric_weights()
        distinct_edges = int(np.count_nonzero(np.triu(symmetric, k=1)))
        return BroadcastResult(
            fragments=fragments,
            root=root,
            duration=duration,
            completion_times=completion_times,
            distinct_edges=distinct_edges,
        )
