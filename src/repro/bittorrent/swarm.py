"""Synchronized BitTorrent broadcast over the fluid network model.

A broadcast starts with one *root* (seed) holding the complete file and every
other host holding nothing; all clients start simultaneously and the
broadcast is complete when the last client finishes downloading (the paper's
reference completion time).

The simulation advances in small control steps.  Between steps, data moves as
max-min-fair fluid flows along the unchoke relation; at each step the
accumulated bytes on every active (uploader → downloader) pipe are converted
into fragments using rarest-first selection, the fragment counters are
incremented, and choking/interest state is refreshed.  Full tit-for-tat
rechokes happen every ``rechoke_interval`` seconds, and peers with idle
upload slots grab newly interested neighbours immediately, as the reference
client's choker effectively does.

This "fluid BitTorrent" keeps the protocol features the paper identifies as
the sources of measurement randomness — random initial peer choice, four
upload slots, 35-peer sets, asymmetric broadcast data flow — while staying
fast enough to run dozens of measurement iterations on a laptop.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bittorrent.choking import DEFAULT_UPLOAD_SLOTS, ChokingPolicy
from repro.bittorrent.instrumentation import FragmentMatrix
from repro.bittorrent.peer import PeerState
from repro.bittorrent.selection import PieceSelector
from repro.bittorrent.torrent import TorrentMeta
from repro.bittorrent.tracker import DEFAULT_MAX_PEERS, Tracker
from repro.network.fluid import FluidNetwork, FluidTransfer
from repro.network.grid5000 import DEFAULT_TCP_WINDOW, flow_rate_cap
from repro.network.routing import RoutingTable
from repro.network.topology import Topology


#: Below this ``hosts² × fragments`` product the interest matrix is simply
#: recomputed every control step with one BLAS matmul; above it (paper scale)
#: it is maintained incrementally per receipt batch.  Both paths produce
#: identical integer counts — this is purely a performance crossover.
MATMUL_INTEREST_LIMIT = 4_000_000


@dataclass(frozen=True)
class SwarmConfig:
    """Tunable parameters of a broadcast simulation.

    The defaults mirror the reference client (4 upload slots, 35-peer sets,
    16 KiB fragments); ``control_dt`` and ``rechoke_interval`` are simulation
    knobs whose paper counterparts are continuous TCP dynamics and the 10 s
    rechoke timer respectively.
    """

    torrent: TorrentMeta
    upload_slots: int = DEFAULT_UPLOAD_SLOTS
    max_peers: int = DEFAULT_MAX_PEERS
    rechoke_interval: float = 5.0
    optimistic_every: int = 3
    control_dt: float = 0.1
    tcp_window: Optional[float] = DEFAULT_TCP_WINDOW
    random_first_threshold: int = 4
    max_sim_time: float = 3600.0

    def __post_init__(self) -> None:
        if self.control_dt <= 0:
            raise ValueError("control_dt must be positive")
        if self.rechoke_interval < self.control_dt:
            raise ValueError("rechoke_interval must be at least control_dt")
        if self.max_sim_time <= 0:
            raise ValueError("max_sim_time must be positive")


@dataclass
class BroadcastResult:
    """Outcome of one synchronized broadcast.

    Attributes
    ----------
    fragments:
        Directed fragment counts (the measurement of this iteration).
    root:
        The seeding host.
    duration:
        Maximum download completion time over all clients (seconds).
    completion_times:
        Per-host download completion time.
    distinct_edges:
        Number of unordered host pairs that exchanged at least one fragment.
    """

    fragments: FragmentMatrix
    root: str
    duration: float
    completion_times: Dict[str, float]
    distinct_edges: int

    @property
    def hosts(self) -> List[str]:
        return list(self.fragments.labels)


class BitTorrentBroadcast:
    """Runs synchronized instrumented broadcasts on a topology.

    Parameters
    ----------
    topology:
        The network substrate.
    hosts:
        Hosts participating in the swarm; defaults to every host in the
        topology.
    config:
        Swarm parameters; ``SwarmConfig(torrent=...)`` at minimum.
    routing:
        Optional pre-built routing table (shared across iterations for speed).
    """

    def __init__(
        self,
        topology: Topology,
        config: SwarmConfig,
        hosts: Optional[Sequence[str]] = None,
        routing: Optional[RoutingTable] = None,
    ) -> None:
        self.topology = topology
        self.config = config
        self.routing = routing or RoutingTable(topology)
        if hosts is None:
            hosts = topology.host_names
        hosts = list(hosts)
        if len(hosts) < 2:
            raise ValueError("a broadcast needs at least two hosts")
        unknown = [h for h in hosts if not topology.is_host(h)]
        if unknown:
            raise ValueError(f"unknown hosts: {unknown}")
        if len(set(hosts)) != len(hosts):
            raise ValueError("duplicate hosts in swarm")
        self.hosts = hosts
        self.tracker = Tracker(max_peers=config.max_peers)
        self.choking = ChokingPolicy(
            upload_slots=config.upload_slots, optimistic_every=config.optimistic_every
        )
        # Per-pair TCP rate caps are pure topology functions: cache them.
        self._rate_cap_cache: Dict[Tuple[str, str], Optional[float]] = {}

    # ------------------------------------------------------------------ #
    def _rate_cap(self, src: str, dst: str) -> Optional[float]:
        if self.config.tcp_window is None:
            return None
        key = (src, dst)
        if key not in self._rate_cap_cache:
            cap = flow_rate_cap(self.routing, src, dst, self.config.tcp_window)
            self._rate_cap_cache[key] = cap if np.isfinite(cap) else None
        return self._rate_cap_cache[key]

    # ------------------------------------------------------------------ #
    def run(
        self,
        root: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> BroadcastResult:
        """Simulate one synchronized broadcast and return its measurement.

        Parameters
        ----------
        root:
            Seeding host; defaults to the first host in the swarm.
        rng:
            Random generator driving peer selection, choking and piece
            selection for this iteration.
        """
        if rng is None:
            rng = np.random.default_rng()
        if root is None:
            root = self.hosts[0]
        if root not in self.hosts:
            raise ValueError(f"root {root!r} is not part of the swarm")

        cfg = self.config
        num_fragments = cfg.torrent.num_fragments
        fragment_size = cfg.torrent.fragment_size
        n = len(self.hosts)
        index: Dict[str, int] = {name: i for i, name in enumerate(self.hosts)}
        root_index = index[root]
        # Host indices in lexicographic name order: candidate lists must come
        # out sorted by name (exactly as the scalar implementation's
        # ``sorted()`` produced them) for bit-for-bit seed replay.
        lex_order = np.array(sorted(range(n), key=self.hosts.__getitem__))

        # Shared bitfield matrix: row i is peer i's ``have`` array, so peer
        # mutations and the vectorized interest state see the same memory.
        have = np.zeros((n, num_fragments), dtype=bool)
        peers: Dict[str, PeerState] = {
            name: PeerState(
                name=name, index=i, num_fragments=num_fragments, have=have[i]
            )
            for i, name in enumerate(self.hosts)
        }
        peers[root].make_seed()
        peers[root].completion_time = 0.0

        selector = PieceSelector(
            num_fragments, random_first_threshold=cfg.random_first_threshold
        )
        for peer in peers.values():
            selector.register_bitfield(peer.have)

        connections = self.tracker.build_connections(self.hosts, rng)
        neighbor_mask = np.zeros((n, n), dtype=bool)
        for name, neighbor_set in connections.items():
            peers[name].neighbors = set(neighbor_set)
            i = index[name]
            for other in neighbor_set:
                neighbor_mask[i, index[other]] = True

        # lack = ~have, maintained incrementally; wanted[u, d] counts the
        # fragments u holds that d lacks, so "d is interested in u" is the
        # O(1) test wanted[u, d] > 0 (equivalent to the wire-protocol rule:
        # seeds want nothing, empty peers offer nothing, and a seeding
        # uploader always has something an incomplete downloader needs).
        #
        # Two equivalent maintenance strategies (both produce exact integer
        # counts, so behaviour is identical): small swarms recompute the
        # matrix each control step with one BLAS matmul; large ones (paper
        # scale: 128 hosts x 15k fragments) update it incrementally per
        # receipt batch, which is O(hosts) per received fragment.
        lack = ~have
        interest_by_matmul = n * n * num_fragments <= MATMUL_INTEREST_LIMIT
        wanted = np.zeros((n, n), dtype=np.int64)
        wanted[root_index, :] = num_fragments
        wanted[root_index, root_index] = 0

        def recompute_wanted() -> np.ndarray:
            # counts[u] - |u ∩ d| via one float32 matmul; exact because the
            # counts are far below 2**24.
            have_f = have.astype(np.float32)
            common = have_f @ have_f.T
            return common.diagonal()[:, None] - common

        fluid = FluidNetwork(self.topology, self.routing)
        fragments = FragmentMatrix(self.hosts)
        availability = selector.availability
        random_first_threshold = selector.random_first_threshold
        wanted_buf = np.empty(num_fragments, dtype=bool)
        alive_buf = np.empty(num_fragments, dtype=bool)

        # Active fluid pipes keyed by (uploader, downloader); ``pipe_order``
        # mirrors the keys in sorted order (maintained by bisect on
        # open/close) so the per-step scans never re-sort.  Aligned with
        # ``pipe_order`` are contiguous per-pipe vectors (fluid slot, host
        # indices, consumed bytes, tit-for-tat credit base, fragment
        # progress) rebuilt lazily after membership changes, so the per-step
        # byte accounting is a handful of array operations.
        pipes: Dict[Tuple[str, str], FluidTransfer] = {}
        pipe_order: List[Tuple[str, str]] = []
        pipe_pos: Dict[Tuple[str, str], int] = {}
        pipe_slots = np.empty(0, dtype=np.int64)
        pipe_up = np.empty(0, dtype=np.int64)
        pipe_down = np.empty(0, dtype=np.int64)
        pipe_consumed = np.empty(0, dtype=np.float64)
        pipe_credit_base = np.empty(0, dtype=np.float64)
        pipe_progress = np.empty(0, dtype=np.float64)
        # A pipe whose fluid transfer ran its whole byte budget is detached
        # from the FlowSet (its slot is recycled) but, exactly as in the
        # scalar implementation, stays open and simply starves: its frozen
        # transferred value is patched over the slot read each step.
        pipe_dead_positions = np.empty(0, dtype=np.int64)
        pipe_dead_values = np.empty(0, dtype=np.float64)
        pipes_dirty = False
        # Fragment progress of currently-closed pipes (progress survives a
        # close/reopen cycle, as in the scalar implementation).
        progress_carry: Dict[Tuple[str, str], float] = {}
        # Sorted view of every peer's unchoke set, same replay rationale.
        unchoked_order: Dict[str, List[str]] = {name: [] for name in self.hosts}

        incomplete: Set[str] = {name for name in self.hosts if name != root}
        incomplete_mask = np.ones(n, dtype=bool)
        incomplete_mask[root_index] = False
        time = 0.0
        round_index = 0
        next_rechoke = 0.0

        def interested_in(uploader_index: int) -> List[str]:
            """Neighbours of the uploader that want something it has, by name."""
            mask = neighbor_mask[uploader_index] & incomplete_mask
            mask &= wanted[uploader_index] > 0
            if not mask.any():
                return []
            hosts = self.hosts
            return [hosts[i] for i in lex_order[mask[lex_order]]]

        def open_pipe(uploader: str, downloader: str) -> None:
            nonlocal pipes_dirty
            key = (uploader, downloader)
            if key in pipes:
                return
            transfer = fluid.start_transfer(
                uploader,
                downloader,
                size=float(cfg.torrent.size) * 4.0 + 1.0,
                rate_cap=self._rate_cap(uploader, downloader),
            )
            pipes[key] = transfer
            bisect.insort(pipe_order, key)
            pipes_dirty = True

        def close_pipe(uploader: str, downloader: str, keep_progress: bool = True) -> None:
            nonlocal pipes_dirty
            key = (uploader, downloader)
            transfer = pipes.pop(key, None)
            if transfer is None:
                if not keep_progress:
                    progress_carry.pop(key, None)
                return
            fluid.cancel_transfer(transfer)
            del pipe_order[bisect.bisect_left(pipe_order, key)]
            pipes_dirty = True
            position = pipe_pos.pop(key, None)
            if position is None:
                # Opened and closed before the vectors were ever rebuilt: no
                # bytes moved, nothing to flush.
                if not keep_progress:
                    progress_carry.pop(key, None)
                return
            # Flush the round's tit-for-tat credit before the pipe vanishes.
            delta = pipe_consumed[position] - pipe_credit_base[position]
            if delta > 0:
                peers[downloader].credit_download(uploader, float(delta))
            if keep_progress:
                progress_carry[key] = float(pipe_progress[position])
            else:
                progress_carry.pop(key, None)

        def rebuild_pipe_vectors() -> None:
            nonlocal pipes_dirty, pipe_pos, pipe_slots, pipe_up, pipe_down
            nonlocal pipe_consumed, pipe_credit_base, pipe_progress
            nonlocal pipe_dead_positions, pipe_dead_values
            count = len(pipe_order)
            new_pos: Dict[Tuple[str, str], int] = {}
            slots = np.empty(count, dtype=np.int64)
            up_idx = np.empty(count, dtype=np.int64)
            down_idx = np.empty(count, dtype=np.int64)
            new_consumed = np.zeros(count, dtype=np.float64)
            new_base = np.zeros(count, dtype=np.float64)
            new_progress = np.zeros(count, dtype=np.float64)
            dead_positions: List[int] = []
            dead_values: List[float] = []
            old_pos = pipe_pos
            for position, key in enumerate(pipe_order):
                new_pos[key] = position
                transfer = pipes[key]
                slot = transfer._slot
                if slot < 0:
                    # Completed transfer: park the position on slot 0 and
                    # patch its frozen byte count over the vector read.
                    slot = 0
                    dead_positions.append(position)
                    dead_values.append(transfer.transferred)
                slots[position] = slot
                uploader, downloader = key
                up_idx[position] = index[uploader]
                down_idx[position] = index[downloader]
                previous = old_pos.get(key)
                if previous is None:
                    new_progress[position] = progress_carry.pop(key, 0.0)
                else:
                    new_consumed[position] = pipe_consumed[previous]
                    new_base[position] = pipe_credit_base[previous]
                    new_progress[position] = pipe_progress[previous]
            pipe_pos = new_pos
            pipe_slots = slots
            pipe_up = up_idx
            pipe_down = down_idx
            pipe_consumed = new_consumed
            pipe_credit_base = new_base
            pipe_progress = new_progress
            pipe_dead_positions = np.array(dead_positions, dtype=np.int64)
            pipe_dead_values = np.array(dead_values, dtype=np.float64)
            pipes_dirty = False

        def flush_credits() -> None:
            """Credit each open pipe's bytes since the last rechoke.

            The scalar implementation credited every step; the totals per
            choking round are identical, so crediting lazily (at rechoke and
            on pipe close) preserves the reciprocation ranking.
            """
            owed = pipe_consumed - pipe_credit_base
            for position in np.flatnonzero(owed > 0):
                uploader, downloader = pipe_order[position]
                peers[downloader].credit_download(
                    uploader, float(owed[position])
                )
            np.copyto(pipe_credit_base, pipe_consumed)

        def sync_pipes() -> None:
            """Make the fluid flow set match the current unchoke/interest state.

            Iteration follows the maintained sorted unchoke/pipe orders so
            that the order in which pipes are opened — and therefore the
            consumption of the random stream — is identical across processes
            regardless of string-hash randomisation; campaigns replay
            bit-for-bit from their seed.
            """
            for uploader_index, uploader in enumerate(self.hosts):
                up = peers[uploader]
                if up.fragment_count == 0:
                    continue
                order = unchoked_order[uploader]
                for downloader in list(order):
                    if downloader not in up.neighbors:
                        up.unchoked.discard(downloader)
                        order.remove(downloader)
                        close_pipe(uploader, downloader)
                        continue
                    if (
                        downloader not in incomplete
                        or wanted[uploader_index, index[downloader]] <= 0
                    ):
                        close_pipe(uploader, downloader)
                    else:
                        open_pipe(uploader, downloader)
            # Drop pipes whose uploader revoked the unchoke.
            for uploader, downloader in list(pipe_order):
                if downloader not in peers[uploader].unchoked:
                    close_pipe(uploader, downloader)

        max_steps = int(np.ceil(cfg.max_sim_time / cfg.control_dt)) + 1
        upload_slots = self.choking.upload_slots
        for _step in range(max_steps):
            if not incomplete:
                break
            if interest_by_matmul:
                wanted = recompute_wanted()

            # --- choking -------------------------------------------------- #
            if time >= next_rechoke - 1e-12:
                if pipe_order:
                    flush_credits()
                for name in rng.permutation(self.hosts):
                    peer = peers[name]
                    candidates = interested_in(index[name])
                    peer.unchoked = self.choking.rechoke(
                        peer, candidates, round_index, rng
                    )
                    unchoked_order[name] = sorted(peer.unchoked)
                    peer.reset_round()
                round_index += 1
                next_rechoke += cfg.rechoke_interval
            else:
                # Fill idle upload slots as soon as someone becomes interested.
                # One matrix pass replaces the per-host interest masks.
                fillable = neighbor_mask & incomplete_mask[None, :]
                np.logical_and(fillable, wanted > 0, out=fillable)
                host_has_candidates = fillable.any(axis=1).tolist()
                hosts = self.hosts
                for uploader_index, name in enumerate(hosts):
                    peer = peers[name]
                    if peer.fragment_count == 0:
                        continue
                    unchoked = peer.unchoked
                    if unchoked:
                        stale = [
                            d for d in unchoked
                            if d not in incomplete and d != root
                        ]
                        if stale:
                            order = unchoked_order[name]
                            for d in stale:
                                unchoked.discard(d)
                                order.remove(d)
                    free = upload_slots - len(unchoked)
                    if free <= 0 or not host_has_candidates[uploader_index]:
                        continue
                    row = fillable[uploader_index]
                    waiting = [
                        hosts[i] for i in lex_order[row[lex_order]]
                        if hosts[i] not in unchoked
                    ]
                    if not waiting:
                        continue
                    picks = rng.choice(len(waiting), size=min(free, len(waiting)),
                                       replace=False)
                    order = unchoked_order[name]
                    for i in picks:
                        pick = waiting[i]
                        if pick not in unchoked:
                            unchoked.add(pick)
                            bisect.insort(order, pick)

            sync_pipes()
            if pipes_dirty:
                rebuild_pipe_vectors()

            # --- data movement -------------------------------------------- #
            if fluid.advance(cfg.control_dt):
                # A pipe transfer exhausted its byte budget and was detached;
                # its recycled slot must not be read after the next rebuild.
                pipes_dirty = True
            time += cfg.control_dt

            ready_list: List[int] = []
            if pipe_order:
                moved = fluid.transferred_for(pipe_slots)
                if pipe_dead_positions.size:
                    moved[pipe_dead_positions] = pipe_dead_values
                deltas = moved - pipe_consumed
                np.copyto(pipe_consumed, moved)
                pipe_progress += deltas
                # Only pipes that accumulated a whole fragment need Python
                # work; everything else was accounted by the array ops above.
                ready = np.flatnonzero(
                    (deltas > 0) & (pipe_progress >= fragment_size)
                )
                if ready.size:
                    # Unbox the per-event scalars in bulk; the loop below then
                    # runs on plain Python ints/floats.
                    ready_list = ready.tolist()
                    ready_up = pipe_up[ready].tolist()
                    ready_down = pipe_down[ready].tolist()
                    ready_progress = pipe_progress[ready].tolist()

            for event, position in enumerate(ready_list):
                uploader, downloader = pipe_order[position]
                uploader_index = ready_up[event]
                downloader_index = ready_down[event]
                down = peers[downloader]
                surplus = ready_progress[event]
                downloader_have = have[downloader_index]
                downloader_lack = lack[downloader_index]
                held = down._fragment_count
                received: List[int] = []
                # Inlined rarest-first selection (PieceSelector.select_from
                # semantics, identical random-stream consumption).  Within one
                # pipe's conversion loop only the downloader's bitfield
                # changes, and only at just-received fragments — so the
                # candidate set is computed once, consumed via an alive mask,
                # and the rarest tie group drains through cheap list pops; the
                # next tier is recomputed exactly when the scalar code's min
                # would move on.
                np.logical_and(have[uploader_index], downloader_lack, out=wanted_buf)
                candidates = wanted_buf.nonzero()[0]
                if candidates.size == 0:
                    # Nothing useful left on this pipe; drop the surplus.
                    pipe_progress[position] = 0.0
                    continue
                alive = alive_buf[: candidates.size]
                alive.fill(True)
                counts_vals: Optional[np.ndarray] = None
                tie_positions: Optional[List[int]] = None
                while surplus >= fragment_size:
                    if held < random_first_threshold:
                        live = candidates[alive]
                        if live.size == 0:
                            surplus = 0.0
                            break
                        fragment = int(live[int(rng.integers(0, live.size))])
                        alive[int(np.searchsorted(candidates, fragment))] = False
                        tie_positions = None
                    else:
                        if not tie_positions:
                            if counts_vals is None:
                                counts_vals = availability[candidates]
                            live_counts = counts_vals[alive]
                            if live_counts.size == 0:
                                surplus = 0.0
                                break
                            rarest = live_counts.min()
                            tie_positions = (
                                ((counts_vals == rarest) & alive).nonzero()[0].tolist()
                            )
                        r = int(rng.integers(0, len(tie_positions)))
                        pos = tie_positions.pop(r)
                        fragment = int(candidates[pos])
                        alive[pos] = False
                    surplus -= fragment_size
                    received.append(fragment)
                    downloader_lack[fragment] = False
                    downloader_have[fragment] = True
                    availability[fragment] += 1
                    held += 1
                    if held == num_fragments:
                        down._fragment_count = held
                        down.completion_time = time
                        incomplete.discard(downloader)
                        incomplete_mask[downloader_index] = False
                        break
                down._fragment_count = held
                pipe_progress[position] = surplus
                if received:
                    fragments.counts[downloader_index, uploader_index] += len(received)
                    if not interest_by_matmul:
                        # Batched interest update: within this loop only the
                        # downloader's row/column changed, so the per-receipt
                        # column sums collapse into one fancy-indexed sum (the
                        # diagonal is forced back to zero afterwards; the row
                        # update uses lack = ~have elementwise).
                        shared = have[:, received].sum(axis=1)
                        wanted[:, downloader_index] -= shared
                        wanted[downloader_index, :] += len(received) - shared
                        wanted[downloader_index, downloader_index] = 0


        else:
            raise RuntimeError(
                f"broadcast did not complete within max_sim_time="
                f"{cfg.max_sim_time}s ({len(incomplete)} hosts incomplete)"
            )

        completion_times = {
            name: (peer.completion_time if peer.completion_time is not None else time)
            for name, peer in peers.items()
        }
        duration = max(t for name, t in completion_times.items() if name != root)
        symmetric = fragments.symmetric_weights()
        distinct_edges = int(np.count_nonzero(np.triu(symmetric, k=1)))
        return BroadcastResult(
            fragments=fragments,
            root=root,
            duration=duration,
            completion_times=completion_times,
            distinct_edges=distinct_edges,
        )
