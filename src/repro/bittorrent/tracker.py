"""Tracker: hands each joining peer a bounded random peer set.

The original client limits the number of peers a client knows to 35; the
paper notes this is one source of measurement sparsity — for swarms larger
than ~35 nodes a single broadcast only exercises a subset of all possible
edges, and aggregation over iterations fills in the rest.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

import numpy as np

#: Default maximum peer-set size of the reference client.
DEFAULT_MAX_PEERS = 35


class Tracker:
    """Assigns every peer a random subset of the swarm as its peer set.

    The resulting *connection graph* is the symmetric closure of the
    "knows-about" relation: if either end learned about the other from the
    tracker, the pair may exchange data (as in the real protocol, where the
    discovering side initiates the TCP connection).
    """

    def __init__(self, max_peers: int = DEFAULT_MAX_PEERS) -> None:
        if max_peers < 1:
            raise ValueError(f"max_peers must be at least 1, got {max_peers}")
        self.max_peers = max_peers

    def build_connections(
        self, peer_names: Sequence[str], rng: np.random.Generator
    ) -> Dict[str, Set[str]]:
        """Return the symmetric connection sets for every peer.

        Parameters
        ----------
        peer_names:
            All peers in the swarm (including the seed).
        rng:
            Random generator for this broadcast iteration.
        """
        names = list(peer_names)
        if len(set(names)) != len(names):
            raise ValueError("peer names must be unique")
        if len(names) < 2:
            raise ValueError("a swarm needs at least two peers")
        known: Dict[str, Set[str]] = {name: set() for name in names}
        for name in names:
            others = [p for p in names if p != name]
            count = min(self.max_peers, len(others))
            picks = rng.choice(len(others), size=count, replace=False)
            known[name].update(others[i] for i in picks)
        # Symmetric closure: a connection exists if either side knows the other.
        connections: Dict[str, Set[str]] = {name: set() for name in names}
        for name, peers in known.items():
            for other in peers:
                connections[name].add(other)
                connections[other].add(name)
        return connections

    def announce(
        self, name: str, present: Sequence[str], rng: np.random.Generator
    ) -> Set[str]:
        """Peer set handed to a peer (re)joining a live swarm.

        Mirrors one row of :meth:`build_connections`: the joiner learns a
        bounded random subset of the currently-present peers.  The symmetric
        closure (the discovered side also opening the connection) is the
        caller's job, as it owns the live neighbour state.  Used by the
        churn actors of :mod:`repro.workloads` when a departed peer rejoins
        mid-broadcast.
        """
        others = [p for p in present if p != name]
        if not others:
            return set()
        count = min(self.max_peers, len(others))
        picks = rng.choice(len(others), size=count, replace=False)
        return {others[i] for i in picks}

    def connection_density(self, connections: Dict[str, Set[str]]) -> float:
        """Fraction of all possible peer pairs that are connected."""
        n = len(connections)
        if n < 2:
            return 0.0
        edges = sum(len(v) for v in connections.values()) / 2.0
        return edges / (n * (n - 1) / 2.0)
