"""Ablation (§III-C) — force-directed layout separates the ground truth.

The paper argues, citing Noack (2009), that the success of a Kamada-Kawai
layout in visually separating the ground-truth clusters indicates a
modularity-style clustering will succeed.  This ablation quantifies the visual
separation for both implemented layouts on a measured dataset.
"""

from benchmarks.conftest import ITERATIONS, NUM_FRAGMENTS, SEED, report
from repro.analysis.layout import (
    fruchterman_reingold_layout,
    kamada_kawai_layout,
    layout_cluster_separation,
)
from repro.experiments.datasets import dataset_gt
from repro.tomography.measurement import MeasurementCampaign
from repro.tomography.metric import metric_graph
from repro.tomography.pipeline import default_swarm_config


def test_ablation_layout_separation(bench_once):
    ds = dataset_gt(per_site=8)

    def measure():
        campaign = MeasurementCampaign(
            ds.topology,
            default_swarm_config(NUM_FRAGMENTS),
            hosts=ds.hosts,
            seed=SEED,
        )
        return campaign.run(ITERATIONS)

    record = bench_once(measure)
    graph = metric_graph(record.aggregate())

    kk = kamada_kawai_layout(graph, seed=1)
    fr = fruchterman_reingold_layout(graph, seed=1)
    kk_sep = layout_cluster_separation(kk, ds.ground_truth)
    fr_sep = layout_cluster_separation(fr, ds.ground_truth)

    report(
        "Ablation — layout cluster separation (G-T)",
        {
            "paper": "KK layout visually separates ground-truth clusters (Figs. 8-12)",
            "Kamada-Kawai inter/intra distance ratio": f"{kk_sep:.2f}",
            "Fruchterman-Reingold inter/intra distance ratio": f"{fr_sep:.2f}",
        },
    )

    # Both layouts place ground-truth clusters clearly apart.
    assert kk_sep > 1.3
    assert fr_sep > 1.1
