#!/usr/bin/env python
"""Run the pytest-benchmark suite and emit a normalized BENCH_*.json.

The emitted file is the cross-PR performance record: one entry per
benchmark with its wall-clock, plus the scale constants the campaigns ran
at and the commit hash, so successive PRs can be compared with
``--compare``.  See docs/performance.md for the protocol.

Usage::

    python benchmarks/run_benchmarks.py --output BENCH_PR1.json
    python benchmarks/run_benchmarks.py -k "broadcast or solver" -o out.json
    python benchmarks/run_benchmarks.py --compare BENCH_PR0.json -o BENCH_PR1.json

    # paper-scale nightly profile (32/site, 15 259 fragments, 30 iterations,
    # exercising the MATMUL_INTEREST_LIMIT crossover end to end)
    python benchmarks/run_benchmarks.py --profile nightly -o BENCH_nightly.json

    # flip the whole suite onto the fixed-dt oracle loop for a mode comparison
    python benchmarks/run_benchmarks.py --stepping fixed -o BENCH_fixed.json

    # time registered scenarios directly (see `python -m repro list`),
    # optionally through the process-pool campaign executor
    python benchmarks/run_benchmarks.py --scenario B-G-T --scenario fig13 \
        --executor process -o out.json

Every emitted row records which campaign-executor backend produced it
(``executor``), the swarm control-loop stepping mode (``stepping``) and the
control steps the swarm executed per broadcast
(``control_steps_per_broadcast``).  ``--executor process`` /
``--stepping fixed`` route the pytest benchmarks through the corresponding
backend via the ``REPRO_EXECUTOR`` / ``REPRO_STEPPING`` environment
variables; ``--profile`` selects the ``ci`` or ``nightly`` scale via
``REPRO_BENCH_PROFILE``.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import platform
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def git_commit() -> str:
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "HEAD"], cwd=REPO_ROOT, text=True
        ).strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def run_suite(
    select: str | None,
    raw_json: Path,
    executor: str,
    workers: int | None,
    profile: str,
    stepping: str,
    trace: str | None = None,
) -> int:
    command = [
        sys.executable,
        "-m",
        "pytest",
        "benchmarks",
        "-q",
        f"--benchmark-json={raw_json}",
    ]
    if select:
        command.extend(["-k", select])
    env_path = str(REPO_ROOT / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = env_path + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    # The experiment runners resolve their default campaign executor and
    # swarm stepping mode from the environment, so one variable each
    # switches the whole suite over; the conftest reads the scale profile.
    env["REPRO_EXECUTOR"] = executor
    env["REPRO_STEPPING"] = stepping
    env["REPRO_BENCH_PROFILE"] = profile
    if workers:
        env["REPRO_EXECUTOR_WORKERS"] = str(workers)
    if trace:
        # The benchmark process configures the tracer from the environment
        # at session start (benchmarks/conftest.py) and, under the process
        # executor, workers suffix their own files — see docs/observability.md.
        env["REPRO_TRACE"] = trace
    else:
        env.pop("REPRO_TRACE", None)
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


def metadata(profile: str, stepping: str) -> dict:
    import numpy

    from benchmarks.conftest import PROFILES, SEED

    scale = PROFILES[profile]
    return {
        "schema": "repro-bench-v1",
        "commit": git_commit(),
        "generated_utc": datetime.now(timezone.utc).isoformat(),
        "profile": profile,
        "stepping": stepping,
        "scale": {
            "PER_SITE": scale["PER_SITE"],
            "NUM_FRAGMENTS": scale["NUM_FRAGMENTS"],
            "ITERATIONS": scale["ITERATIONS"],
            "SEED": SEED,
        },
        "machine": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "cpu_count": multiprocessing.cpu_count(),
            "platform": platform.platform(),
        },
    }


def normalize(raw_json: Path, executor: str, profile: str, stepping: str) -> dict:
    raw = json.loads(raw_json.read_text())
    benchmarks = []
    for entry in raw.get("benchmarks", []):
        stats = entry["stats"]
        extra = entry.get("extra_info") or {}
        row = {
            "name": entry["name"],
            "file": entry.get("fullname", "").split("::")[0],
            "wall_clock_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
            "executor": executor,
            "stepping": extra.get("stepping", stepping),
        }
        for key in (
            "broadcasts",
            "control_steps",
            "control_steps_per_broadcast",
            "batch_width",
            "workload",
            "workload_actors",
            "interference_intensity",
            "metrics",
        ):
            if key in extra:
                row[key] = extra[key]
        benchmarks.append(row)
    benchmarks.sort(key=lambda item: item["name"])
    return {**metadata(profile, stepping), "benchmarks": benchmarks}


def run_scenarios(
    specs: list, executor_name: str, workers: int | None, profile: str, stepping: str
) -> dict:
    """Time resolved scenario specs directly through the registry."""
    import time

    from repro.observability.metrics import METRICS
    from repro.observability.tracer import trace_from_env
    from repro.scenarios import executor_from_name

    trace_from_env()
    executor = (
        None if executor_name == "serial"
        else executor_from_name(executor_name, workers=workers)
    )
    rows = []
    for name, spec in specs:
        before = METRICS.snapshot()
        start = time.perf_counter()
        summary = spec.run(executor=executor, stepping=stepping)
        elapsed = time.perf_counter() - start
        delta = METRICS.snapshot().delta_since(before)
        broadcasts = int(delta.counter("swarm.broadcasts"))
        steps = int(delta.counter("swarm.control_steps"))
        lanes = delta.counter("batched.lanes")
        batched_runs = delta.counter("batched.runs")
        print(f"  scenario:{name:<30s} {elapsed:8.3f}s  "
              f"({executor_name}, {stepping})")
        row = {
            "name": f"scenario:{name}",
            "file": "repro/scenarios",
            "wall_clock_s": elapsed,
            "stddev_s": 0.0,
            "rounds": 1,
            "executor": executor_name,
            "stepping": stepping,
            "broadcasts": broadcasts,
            "control_steps": steps,
            "control_steps_per_broadcast": (
                round(steps / broadcasts, 1) if broadcasts else 0.0
            ),
            # Average lanes per batched lock-step run; 1 for scalar rows.
            "batch_width": (
                round(lanes / batched_runs, 1) if batched_runs else 1
            ),
            # Full registry delta for the scenario run (back-compat keys
            # above are derived from the same counters).
            "metrics": delta.jsonable(),
        }
        # Interference scenarios describe the contention they measured under.
        for key in ("workload", "workload_actors", "interference_intensity"):
            if key in summary:
                row[key] = summary[key]
        rows.append(row)
    rows.sort(key=lambda item: item["name"])
    return {**metadata(profile, stepping), "benchmarks": rows}


#: A shared row slower than baseline by more than this fraction regresses.
REGRESSION_THRESHOLD = 0.25


def compare(
    current: dict, baseline_path: Path, threshold: float = REGRESSION_THRESHOLD
) -> list:
    """Print per-row speedups vs a prior BENCH file; return the regressions.

    A shared row regresses when its wall-clock exceeds the baseline by more
    than ``threshold`` (new rows and rows that disappeared never regress).
    The returned list of ``(name, speedup)`` pairs is empty on a clean run;
    :func:`main` turns a non-empty list into a non-zero exit status so CI
    can gate on it.
    """
    baseline = json.loads(baseline_path.read_text())
    old = {entry["name"]: entry["wall_clock_s"] for entry in baseline.get("benchmarks", [])}
    regressions = []
    print(f"\n== comparison vs {baseline_path.name} ==")
    for entry in current["benchmarks"]:
        reference = old.get(entry["name"])
        if not reference:
            print(f"  {entry['name']:<60s} (new)")
            continue
        speedup = reference / entry["wall_clock_s"] if entry["wall_clock_s"] else float("inf")
        flag = ""
        if entry["wall_clock_s"] > reference * (1.0 + threshold):
            flag = "  ** REGRESSION **"
            regressions.append((entry["name"], speedup))
        print(
            f"  {entry['name']:<60s} {reference:8.3f}s -> "
            f"{entry['wall_clock_s']:8.3f}s  ({speedup:5.2f}x){flag}"
        )
    if regressions:
        print(
            f"{len(regressions)} row(s) regressed by more than "
            f"{threshold:.0%} vs {baseline_path.name}"
        )
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="BENCH_PR1.json",
                        help="normalized output file (default: BENCH_PR1.json)")
    parser.add_argument("-k", "--select", default=None,
                        help="pytest -k expression to run a subset")
    parser.add_argument("--compare", default=None,
                        help="prior BENCH_*.json to print speedups against; "
                             "exits non-zero if any shared row regressed by "
                             ">25%%")
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME",
                        help="time this registered scenario instead of the "
                             "pytest suite (repeatable; see `python -m repro list`)")
    parser.add_argument("--executor", choices=("serial", "process", "batched"),
                        default="serial",
                        help="campaign-executor backend recorded per row")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for --executor process")
    parser.add_argument("--profile", choices=("ci", "nightly"), default="ci",
                        help="scale profile: ci = laptop scale, nightly = "
                             "paper scale (32/site, 15 259 fragments, 30 "
                             "iterations, incremental-interest crossover)")
    parser.add_argument("--stepping", choices=("fixed", "event"),
                        default="event",
                        help="swarm control-loop policy for the whole run "
                             "(results are bit-identical across modes)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a structured telemetry trace (JSONL) of "
                             "the whole suite to PATH via REPRO_TRACE; "
                             "export with `repro trace export --chrome`")
    args = parser.parse_args()

    sys.path.insert(0, str(REPO_ROOT))
    sys.path.insert(0, str(REPO_ROOT / "src"))

    if args.scenario:
        from repro.scenarios import get_scenario

        # Resolve names first: a failure *during* a run must not be
        # misreported as an unknown-scenario error.
        try:
            specs = [(name, get_scenario(name)) for name in args.scenario]
        except KeyError as exc:
            print(str(exc.args[0]), file=sys.stderr)
            return 2
        if args.profile != "ci":
            # Scenario timings run at each spec's registered defaults; the
            # profile's scale constants only apply to the pytest suite, and
            # stamping them into the record would misrepresent what ran.
            print("--profile applies to the pytest suite, not --scenario runs",
                  file=sys.stderr)
            return 2
        os.environ["REPRO_STEPPING"] = args.stepping
        if args.trace:
            from repro.observability.tracer import configure_tracing

            configure_tracing(args.trace)
        normalized = run_scenarios(
            specs, args.executor, args.workers, args.profile, args.stepping
        )
    else:
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
            raw_json = Path(handle.name)
        status = run_suite(args.select, raw_json, args.executor, args.workers,
                           args.profile, args.stepping, trace=args.trace)
        if status != 0:
            print(f"benchmark run failed with exit status {status}", file=sys.stderr)
            return status
        normalized = normalize(raw_json, args.executor, args.profile, args.stepping)
        raw_json.unlink(missing_ok=True)
    output = Path(args.output)
    output.write_text(json.dumps(normalized, indent=2, sort_keys=False) + "\n")
    print(f"wrote {output} ({len(normalized['benchmarks'])} benchmarks)")
    if args.compare:
        if compare(normalized, Path(args.compare)):
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
