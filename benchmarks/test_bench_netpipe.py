"""§II-C / §IV-A — NetPIPE reference bandwidths.

Paper: NetPIPE measures ≈890 Mb/s between two nodes of the same Ethernet
cluster and ≈787 Mb/s between Bordeaux and Toulouse, with a very dense
(low-variance) distribution — the counterpoint to the noisy BitTorrent metric.
"""

from benchmarks.conftest import report
from repro.experiments.runners import run_netpipe_reference


def test_netpipe_reference_bandwidths(bench_once):
    outcome = bench_once(run_netpipe_reference, repeats=5)

    report(
        "NetPIPE reference measurements",
        {
            "paper intra-cluster / inter-site": "890 / 787 Mb/s",
            "measured intra-cluster": f"{outcome['intra_cluster_mbps']:.0f} Mb/s",
            "measured inter-site": f"{outcome['inter_site_mbps']:.0f} Mb/s",
            "measured std (intra / inter)": f"{outcome['intra_cluster_std']:.2e} / {outcome['inter_site_std']:.2e}",
        },
    )

    assert abs(outcome["intra_cluster_mbps"] - 890.0) / 890.0 < 0.05
    # Inter-site bandwidth is lower than intra-cluster but the same order.
    assert outcome["inter_site_mbps"] < outcome["intra_cluster_mbps"]
    assert outcome["inter_site_mbps"] > 0.5 * outcome["intra_cluster_mbps"]
    # Negligible run-to-run variance, unlike the BitTorrent metric.
    assert outcome["intra_cluster_std"] < 1e-3
    assert outcome["inter_site_std"] < 1e-3
