"""Fig. 9 and §IV-C — dataset 'BT': Bordeaux + Toulouse.

Paper: 32+32 nodes.  The ground truth has three clusters (Toulouse, and the
two logical clusters inside Bordeaux); the single-level modularity clustering
finds only the two sites, so the NMI saturates at ≈0.7 instead of 1.
"""

from benchmarks.conftest import ITERATIONS, NUM_FRAGMENTS, SEED, report
from repro.experiments.datasets import dataset_bt
from repro.experiments.runners import run_dataset_clustering


def test_fig9_bt_hierarchical_ground_truth_limits_nmi(bench_once):
    ds = dataset_bt(per_site=8)
    summary = bench_once(
        run_dataset_clustering,
        ds,
        iterations=ITERATIONS,
        num_fragments=NUM_FRAGMENTS,
        seed=SEED,
        track_convergence=True,
    )

    report(
        "Fig. 9 / dataset B-T — two sites, three-way ground truth",
        {
            "hosts": summary["hosts"],
            "ground truth clusters": ds.ground_truth.num_clusters,
            "paper found clusters / NMI": "2 / ~0.7",
            "measured clusters / NMI": f"{summary['found_clusters']} / {summary['measured_nmi']:.3f}",
            "measured NMI per iteration": [round(x, 2) for x in summary["nmi_per_iteration"]],
        },
    )

    # Shape: the method recovers the two sites (or at most adds the Bordeaux
    # split), and because the ground truth is three-way the NMI is clearly
    # below 1 when only two clusters are found, yet far above chance.
    assert ds.ground_truth.num_clusters == 3
    assert summary["found_clusters"] in (2, 3)
    if summary["found_clusters"] == 2:
        assert 0.4 <= summary["measured_nmi"] <= 0.9
    # The recovered clustering never splits a Toulouse node away from its site.
    toulouse = [h for h in ds.hosts if ds.site_of[h] == "toulouse"]
    partition = summary["result"].partition
    assert all(partition.same_cluster(toulouse[0], other) for other in toulouse[1:])
