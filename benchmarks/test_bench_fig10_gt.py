"""Fig. 10 and §IV-C — dataset 'GT': Grenoble + Toulouse.

Paper: 32+32 nodes across two sites with flat internal Ethernet; the method
identifies the two sites with 100% accuracy within the first 2 iterations.
"""

from benchmarks.conftest import ITERATIONS, NUM_FRAGMENTS, SEED, report
from repro.experiments.datasets import dataset_gt
from repro.experiments.runners import run_dataset_clustering


def test_fig10_gt_two_flat_sites(bench_once):
    ds = dataset_gt(per_site=8)
    summary = bench_once(
        run_dataset_clustering,
        ds,
        iterations=ITERATIONS,
        num_fragments=NUM_FRAGMENTS,
        seed=SEED,
        track_convergence=True,
    )

    report(
        "Fig. 10 / dataset G-T — Grenoble + Toulouse",
        {
            "hosts": summary["hosts"],
            "paper clusters / NMI / iterations": "2 / 1.0 / 2",
            "measured clusters / NMI": f"{summary['found_clusters']} / {summary['measured_nmi']:.3f}",
            "measured NMI per iteration": [round(x, 2) for x in summary["nmi_per_iteration"]],
        },
    )

    assert summary["found_clusters"] == 2
    assert summary["measured_nmi"] >= 0.99
    first_perfect = next(
        i + 1 for i, v in enumerate(summary["nmi_per_iteration"]) if v >= 0.99
    )
    assert first_perfect <= 6
