"""Ablation (§II-D) — single-run metric vs aggregation over iterations.

The paper's key reliability argument: a single broadcast is too noisy for
stable clustering, but averaging over a few iterations converges to a stable,
correct clustering.  This ablation compares clustering accuracy from a single
run against the aggregate, over several independent repetitions.
"""

import numpy as np

from benchmarks.conftest import NUM_FRAGMENTS, report
from repro.clustering.louvain import louvain
from repro.clustering.nmi import overlapping_nmi
from repro.clustering.partition import Partition
from repro.experiments.datasets import dataset_bgtl
from repro.tomography.measurement import MeasurementCampaign
from repro.tomography.metric import aggregate_mean, metric_graph
from repro.tomography.pipeline import default_swarm_config


def _cluster_nmi(matrices, ground_truth, hosts):
    metric = aggregate_mean(matrices)
    graph = metric_graph(metric)
    if graph.total_weight() <= 0:
        return overlapping_nmi(Partition.whole(hosts), ground_truth)
    return overlapping_nmi(louvain(graph).partition, ground_truth)


def run_comparison(repetitions=3, iterations=8):
    ds = dataset_bgtl(per_site=6)
    single_scores, aggregated_scores = [], []
    for rep in range(repetitions):
        campaign = MeasurementCampaign(
            ds.topology,
            default_swarm_config(NUM_FRAGMENTS),
            hosts=ds.hosts,
            seed=100 + rep,
        )
        record = campaign.run(iterations)
        single_scores.append(
            _cluster_nmi(record.matrices[:1], ds.ground_truth, ds.hosts)
        )
        aggregated_scores.append(
            _cluster_nmi(record.matrices, ds.ground_truth, ds.hosts)
        )
    return np.array(single_scores), np.array(aggregated_scores)


def test_ablation_aggregation_beats_single_run(bench_once):
    single, aggregated = bench_once(run_comparison)

    report(
        "Ablation — single run vs aggregated metric (B-G-T-L)",
        {
            "paper": "single runs are noisy; aggregation converges to NMI=1",
            "single-run NMI (mean over reps)": f"{single.mean():.3f}",
            "aggregated NMI (mean over reps)": f"{aggregated.mean():.3f}",
            "single-run NMI values": [round(v, 2) for v in single],
            "aggregated NMI values": [round(v, 2) for v in aggregated],
        },
    )

    # Aggregation never hurts and the aggregated clustering is (near) perfect.
    assert aggregated.mean() >= single.mean() - 1e-9
    assert aggregated.mean() >= 0.95
    assert aggregated.min() >= 0.9
