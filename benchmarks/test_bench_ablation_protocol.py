"""Ablation (§II-C) — protocol limits: upload slots and peer-set size.

The paper attributes the sparsity and randomness of single-run measurements to
two protocol limits: at most 4 parallel uploads and at most 35 known peers.
This ablation sweeps both limits and measures how many distinct edges a single
broadcast samples — more slots / larger peer sets cover more edges per run.
"""

import numpy as np

from benchmarks.conftest import SEED, report
from repro.bittorrent.swarm import BitTorrentBroadcast
from repro.network.grid5000 import build_flat_site
from repro.tomography.pipeline import default_swarm_config


def run_sweep():
    topology = build_flat_site("grenoble", 24)
    total_pairs = 24 * 23 // 2
    outcomes = {}
    for upload_slots, max_peers in [(2, 35), (4, 35), (8, 35), (4, 6), (4, 12)]:
        config = default_swarm_config(300, upload_slots=upload_slots, max_peers=max_peers)
        broadcast = BitTorrentBroadcast(topology, config)
        result = broadcast.run(rng=np.random.default_rng(SEED))
        outcomes[(upload_slots, max_peers)] = result.distinct_edges / total_pairs
    return outcomes


def test_ablation_protocol_limits_control_edge_coverage(bench_once):
    outcomes = bench_once(run_sweep)

    report(
        "Ablation — upload slots / peer-set size vs edge coverage per broadcast",
        {
            f"slots={slots}, peers={peers}": f"{coverage:.2%} of pairs sampled"
            for (slots, peers), coverage in outcomes.items()
        },
    )

    # More upload slots -> a single broadcast samples more edges.
    assert outcomes[(8, 35)] > outcomes[(2, 35)]
    # A smaller peer set bounds the reachable edges.
    assert outcomes[(4, 6)] < outcomes[(4, 35)]
    # No single run covers every pair (why the paper aggregates iterations).
    assert all(coverage < 1.0 for coverage in outcomes.values())
