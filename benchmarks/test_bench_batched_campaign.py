"""Multi-seed campaign: serial executor vs the batched lock-step engine.

The two rows run the *same* G-T measurement campaign (same topology, seed
and iteration count) through the serial path and through
:class:`~repro.scenarios.executors.BatchedExecutor`, so their wall-clock
ratio is the batched kernel's measured speedup — recorded per PR in the
BENCH files and discussed honestly (Amdahl ceiling and all) in
``docs/performance.md``.  Lane records are bit-identical to serial, which
the harness re-asserts here on the cheap summary fields.
"""

from benchmarks.conftest import ITERATIONS, NUM_FRAGMENTS, PER_SITE, SEED, report
from repro.experiments.datasets import dataset
from repro.scenarios.executors import BatchedExecutor
from repro.tomography.measurement import MeasurementCampaign
from repro.tomography.pipeline import default_swarm_config


def _run_campaign(executor):
    ds = dataset("G-T", per_site=PER_SITE)
    config = default_swarm_config(NUM_FRAGMENTS)
    campaign = MeasurementCampaign(
        ds.topology, config, hosts=ds.hosts, seed=SEED, executor=executor
    )
    return campaign.run(ITERATIONS)


def test_campaign_multiseed_serial(bench_once):
    record = bench_once(_run_campaign, None)
    report(
        "batched kernel baseline — serial G-T campaign",
        {
            "iterations": len(record.results),
            "batch_width": record.results[0].batch_width,
        },
    )
    assert len(record.results) == ITERATIONS
    assert all(result.batch_width == 1 for result in record.results)


def test_campaign_multiseed_batched(bench_once):
    record = bench_once(_run_campaign, BatchedExecutor())
    report(
        "batched kernel — lock-step G-T campaign",
        {
            "iterations": len(record.results),
            "batch_width": record.results[0].batch_width,
        },
    )
    assert len(record.results) == ITERATIONS
    assert all(result.batch_width == ITERATIONS for result in record.results)
