"""Ablation (§III-D) — modularity (Louvain) vs map equation (Infomap).

Paper: the authors also tried Infomap and found it did not perform as well as
modularity clustering for this problem.  This ablation runs both clusterers on
the same aggregated measurements.
"""

from benchmarks.conftest import ITERATIONS, NUM_FRAGMENTS, SEED, report
from repro.clustering.infomap import infomap
from repro.clustering.louvain import louvain
from repro.clustering.nmi import overlapping_nmi
from repro.experiments.datasets import dataset_bgt
from repro.tomography.measurement import MeasurementCampaign
from repro.tomography.metric import metric_graph
from repro.tomography.pipeline import default_swarm_config


def test_ablation_louvain_vs_infomap(bench_once):
    ds = dataset_bgt(per_site=8)

    def measure():
        campaign = MeasurementCampaign(
            ds.topology,
            default_swarm_config(NUM_FRAGMENTS),
            hosts=ds.hosts,
            seed=SEED,
        )
        return campaign.run(ITERATIONS)

    record = bench_once(measure)
    graph = metric_graph(record.aggregate())

    louvain_partition = louvain(graph).partition
    infomap_partition = infomap(graph)
    louvain_nmi = overlapping_nmi(louvain_partition, ds.ground_truth)
    infomap_nmi = overlapping_nmi(infomap_partition, ds.ground_truth)

    report(
        "Ablation — clustering objective",
        {
            "paper": "modularity preferred; Infomap 'does not perform as well'",
            "Louvain clusters / NMI": f"{louvain_partition.num_clusters} / {louvain_nmi:.3f}",
            "Infomap clusters / NMI": f"{infomap_partition.num_clusters} / {infomap_nmi:.3f}",
        },
    )

    # Modularity clustering recovers the ground truth on this dataset; Infomap
    # must not do better (the paper found it does worse or at best equal).
    assert louvain_nmi >= 0.99
    assert infomap_nmi <= louvain_nmi + 1e-9
