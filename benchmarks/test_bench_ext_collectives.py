"""Extension (§I motivation, §V future work) — topology-aware collectives.

The paper motivates tomography by topology-aware collective communication:
knowing the logical clusters lets a library schedule broadcasts/all-to-alls so
that bulk data crosses each bottleneck once.  This benchmark closes the loop:
it recovers the clusters with the tomography pipeline on the Bordeaux dataset
and compares cluster-aware collective schedules against topology-agnostic ones
on the same simulated network.
"""

from benchmarks.conftest import NUM_FRAGMENTS, SEED, report
from repro.applications.collectives import (
    cluster_aware_allgather,
    cluster_aware_broadcast,
    flat_broadcast,
    naive_allgather,
)
from repro.experiments.datasets import dataset_b
from repro.tomography.pipeline import TomographyPipeline, default_swarm_config


def test_recovered_clusters_speed_up_collectives(bench_once):
    ds = dataset_b(bordeplage=8, bordereau=6, borderline=2)

    def tomography():
        pipeline = TomographyPipeline(
            ds.topology,
            hosts=ds.hosts,
            ground_truth=ds.ground_truth,
            config=default_swarm_config(NUM_FRAGMENTS),
            seed=SEED,
        )
        return pipeline.run(iterations=6, track_convergence=False)

    result = bench_once(tomography)
    partition = result.partition

    message = 50e6  # 50 MB broadcast payload / allgather block
    root = ds.hosts[0]
    flat_bcast = flat_broadcast(ds.topology, ds.hosts, root, message)
    aware_bcast = cluster_aware_broadcast(ds.topology, ds.hosts, root, message, partition)
    naive_ag = naive_allgather(ds.topology, ds.hosts, 5e6)
    aware_ag = cluster_aware_allgather(ds.topology, ds.hosts, 5e6, partition)

    bcast_speedup = flat_bcast.completion_time / aware_bcast.completion_time
    ag_speedup = naive_ag.completion_time / aware_ag.completion_time

    report(
        "Extension — topology-aware collectives using recovered clusters",
        {
            "tomography NMI (clusters used for scheduling)": f"{result.nmi:.2f}",
            "broadcast flat / cluster-aware (s)": f"{flat_bcast.completion_time:.2f} / {aware_bcast.completion_time:.2f}",
            "broadcast speedup": f"{bcast_speedup:.2f}x",
            "allgather flat / cluster-aware (s)": f"{naive_ag.completion_time:.2f} / {aware_ag.completion_time:.2f}",
            "allgather speedup": f"{ag_speedup:.2f}x",
            "paper": "topology-aware collectives 'substantially outperform topology-agnostic methods' (§I)",
        },
    )

    # The clusters recovered by the tomography are good enough to produce a
    # real speedup for both collectives on the bottlenecked topology.
    assert result.nmi >= 0.99
    assert bcast_speedup > 1.3
    assert ag_speedup > 1.1
