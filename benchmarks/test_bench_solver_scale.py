"""Scaling benchmark for the vectorized max-min solver.

Times :meth:`repro.network.solver.FlowSet.solve` on synthetic multi-site
contention patterns at 10² – 10⁴ concurrent flows (the fluid engine calls
this on every pipe open/close and every control step, so its throughput
bounds the whole broadcast simulation), and cross-checks the smallest scale
against the scalar reference oracle.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.network.flows import FlowDemand, max_min_fair_allocation_scalar
from repro.network.solver import FlowSet

#: Number of shared core links every flow competes on (star-of-sites shape).
CORE_LINKS = 32

#: Discrete per-flow TCP-window rate caps (quantized like real RTT classes).
RATE_CAPS = (None, 98e6, 105e6, 131e6)


def build_scenario(num_flows: int, seed: int = 2012):
    """Synthetic contention: per-flow access links feeding shared cores."""
    rng = np.random.default_rng(seed)
    num_links = num_flows + CORE_LINKS
    capacities = np.empty(num_links, dtype=np.float64)
    capacities[:num_flows] = 111e6          # access links, one per flow
    capacities[num_flows:] = 1.25e9          # shared core links
    routes = []
    caps = []
    for flow in range(num_flows):
        src_core = num_flows + int(rng.integers(0, CORE_LINKS))
        dst_core = num_flows + int(rng.integers(0, CORE_LINKS))
        route = [flow, src_core]
        if dst_core != src_core:
            route.append(dst_core)
        routes.append(route)
        caps.append(RATE_CAPS[int(rng.integers(0, len(RATE_CAPS)))])
    return capacities, routes, caps


def solve_once(capacities, routes, caps):
    flow_set = FlowSet(capacities)
    for route, cap in zip(routes, caps):
        flow_set.add(route, cap, assume_unique=True)
    return flow_set.solve()


@pytest.mark.parametrize("num_flows", [100, 1_000, 10_000])
def test_solver_scales_to_many_flows(benchmark, num_flows):
    capacities, routes, caps = build_scenario(num_flows)
    rates = benchmark(solve_once, capacities, routes, caps)

    active = rates[rates > 0]
    assert active.size == num_flows
    # Feasibility: shared cores must not be oversubscribed.
    load = np.zeros(capacities.size)
    for route, rate in zip(routes, rates):
        load[route] += rate
    assert (load <= capacities * (1 + 1e-6)).all()

    mean = benchmark.stats.stats.mean
    report(
        f"solver scale — {num_flows} flows",
        {
            "mean solve wall-clock (ms)": f"{mean * 1e3:.3f}",
            "throughput (flows/s)": f"{num_flows / mean:,.0f}",
        },
    )


def test_vectorized_solver_matches_scalar_oracle_at_100_flows():
    capacities, routes, caps = build_scenario(100)
    rates = solve_once(capacities, routes, caps)
    link_names = [f"L{i}" for i in range(capacities.size)]
    flows = [
        FlowDemand(i, tuple(link_names[j] for j in route), rate_cap=cap)
        for i, (route, cap) in enumerate(zip(routes, caps))
    ]
    reference = max_min_fair_allocation_scalar(
        flows, dict(zip(link_names, capacities))
    )
    for i in range(100):
        assert rates[i] == pytest.approx(reference[i], rel=1e-6)
