"""Fig. 7/8 and §IV-B2 — dataset 'B': the 64-node Bordeaux site.

Paper: 32 Bordeplage + 5 Borderline + 27 Bordereau nodes, 36 iterations.
Modularity clustering finds exactly two logical clusters — Bordeplage versus
Bordereau∪Borderline — because the Dell↔Cisco 1 GbE link is a bottleneck under
multiple-source/multiple-destination load; NMI reaches 1 after 2 iterations.
"""

from benchmarks.conftest import ITERATIONS, NUM_FRAGMENTS, SEED, report
from repro.analysis.layout import kamada_kawai_layout, layout_cluster_separation
from repro.analysis.visualize import render_dot
from repro.experiments.datasets import dataset_b
from repro.experiments.runners import run_dataset_clustering


def test_fig8_bordeaux_bottleneck_clustering(bench_once):
    ds = dataset_b(bordeplage=8, bordereau=6, borderline=2)
    summary = bench_once(
        run_dataset_clustering,
        ds,
        iterations=ITERATIONS,
        num_fragments=NUM_FRAGMENTS,
        seed=SEED,
        track_convergence=True,
    )
    result = summary["result"]

    # The paper's Fig. 8 rendering: Kamada-Kawai layout with the ground truth
    # as node shapes; the DOT export is produced to mirror that artefact and
    # the layout separation quantifies the visual cluster structure.
    positions = kamada_kawai_layout(result.graph, seed=0)
    separation = layout_cluster_separation(positions, ds.ground_truth)
    dot = render_dot(result.graph, ground_truth=ds.ground_truth)

    report(
        "Fig. 8 / dataset B — Bordeaux 1 GbE bottleneck",
        {
            "hosts": summary["hosts"],
            "paper clusters / NMI": f"{ds.expectation.expected_clusters} / {ds.expectation.paper_nmi}",
            "measured clusters / NMI": f"{summary['found_clusters']} / {summary['measured_nmi']:.3f}",
            "paper iterations to NMI=1": ds.expectation.paper_iterations_to_converge,
            "measured NMI per iteration": [round(x, 2) for x in summary["nmi_per_iteration"]],
            "layout separation (inter/intra)": f"{separation:.2f}",
            "DOT export size (chars)": len(dot),
        },
    )

    assert summary["found_clusters"] == 2
    assert summary["measured_nmi"] >= 0.99
    # Converges within a few iterations, as in the paper.
    first_perfect = next(
        i + 1 for i, v in enumerate(summary["nmi_per_iteration"]) if v >= 0.99
    )
    assert first_perfect <= 5
    assert separation > 1.2
    assert dot.startswith("graph")
