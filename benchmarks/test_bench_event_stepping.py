"""Event-driven vs fixed-dt swarm control: step-count and replay benchmark.

The event-stepped core's value shows where the control grid is fine relative
to the true event density — the high-fidelity regime in which the fixed loop
burns almost all of its ticks on points where no choking, interest or
fragment transition can occur.  This benchmark runs the same broadcast at
TCP-burst-scale temporal resolution (``control_dt`` 256× finer than the
auto-scaled campaign default) under both stepping policies and asserts the
two contracts of docs/simulation.md:

* **exactness** — the event mode replays the fixed-dt oracle bit for bit
  (identical fragment matrices and completion times);
* **≥5× fewer control steps** — simulated time jumps straight between state
  changes instead of visiting every grid point.

At the auto-scaled CI configs the two modes execute nearly the same step
count (fragment conversions occupy every tick there — see the broadcast
benchmarks' ``control_steps_per_broadcast`` row entries); the fidelity
sweep below is the regime the ROADMAP's event-driven item targets.  The
substrate is the broadcast-efficiency benchmark's own setting — the same
4-site Grid'5000 topology, fragment budget and seed as
``run_broadcast_efficiency``'s smallest swarm — so the step cut is
demonstrated on the workload the acceptance criterion names.
"""

import dataclasses

import numpy as np

from benchmarks.conftest import report
from repro.bittorrent.swarm import BitTorrentBroadcast
from repro.network.grid5000 import build_multi_site, default_cluster_of
from repro.tomography.pipeline import default_swarm_config

#: Broadcast-efficiency settings (run_broadcast_efficiency's defaults):
#: 4 sites, smallest node count, 400 fragments, seed 13.
SITES = ("bordeaux", "grenoble", "toulouse", "lyon")
NODES = 8
FRAGMENTS = 400
SEED = 13

#: Fidelity factor: how much finer than the auto-scaled campaign default the
#: control grid runs.
FIDELITY = 1024


def _run(stepping: str, control_dt: float):
    per_site = max(NODES // len(SITES), 1)
    topology = build_multi_site(
        {site: {default_cluster_of(site): per_site} for site in SITES}
    )
    config = dataclasses.replace(
        default_swarm_config(FRAGMENTS), control_dt=control_dt, stepping=stepping
    )
    broadcast = BitTorrentBroadcast(topology, config)
    return broadcast.run(rng=np.random.default_rng(SEED))


def test_event_stepping_cuts_control_steps_5x_at_high_fidelity(bench_once):
    base_dt = default_swarm_config(FRAGMENTS).control_dt
    fine_dt = base_dt / FIDELITY

    fixed = _run("fixed", fine_dt)
    event = bench_once(_run, "event", fine_dt)

    ratio = fixed.control_steps / max(event.control_steps, 1)
    report(
        "event-driven swarm control — high-fidelity broadcast efficiency",
        {
            "setting": f"{NODES} nodes over {len(SITES)} sites, "
                       f"{FRAGMENTS} fragments (Sec. II-B workload)",
            "control_dt": f"{fine_dt:.2e} s (campaign default / {FIDELITY})",
            "fixed-dt control steps": fixed.control_steps,
            "event control steps": event.control_steps,
            "step-count ratio": f"{ratio:.1f}x",
            "duration (s)": f"{event.duration:.3f}",
            "matrices identical": bool(
                np.array_equal(fixed.fragments.counts, event.fragments.counts)
            ),
        },
    )

    # Exactness: the event mode is a scheduling optimisation, not a model.
    assert np.array_equal(fixed.fragments.counts, event.fragments.counts)
    assert event.completion_times == fixed.completion_times
    # The acceptance bar: at least 5x fewer control points executed.
    assert fixed.control_steps >= 5 * event.control_steps
