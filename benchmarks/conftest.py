"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures at laptop
scale and prints a paper-vs-measured comparison.  Absolute numbers are not
expected to match (the substrate is a simulator, not Grid'5000); the asserted
properties are the *shapes* the paper reports: which edges are heavy, how many
clusters are found, where the NMI converges, who is cheaper to run.

Two scale profiles exist, selected by the ``REPRO_BENCH_PROFILE`` environment
variable (``benchmarks/run_benchmarks.py --profile`` sets it):

* ``ci`` (default) — 8 nodes per site, 600 fragments, 10 iterations: every
  benchmark stays in the seconds range.
* ``nightly`` — the paper's scale: 32 nodes per site, 15 259 fragments, 30
  iterations.  At this scale ``hosts² × fragments`` crosses
  ``MATMUL_INTEREST_LIMIT``, so the campaigns exercise the incremental
  interest-update path end to end.

Every benchmark row records the swarm stepping mode and the control steps
executed per broadcast (``benchmark.extra_info``): the harness snapshots the
process-wide :data:`repro.observability.metrics.METRICS` registry around
each run and embeds the full counter delta as ``extra_info["metrics"]``.

``REPRO_TRACE`` routes a structured trace of the whole suite to a JSONL
file (``run_benchmarks.py --trace`` sets it); the tracer is configured once
per benchmark process at session start.
"""

from __future__ import annotations

import os
from typing import Mapping

import pytest

#: Scale profiles: nodes per site / fragments per broadcast / iterations.
PROFILES = {
    "ci": {"PER_SITE": 8, "NUM_FRAGMENTS": 600, "ITERATIONS": 10},
    "nightly": {"PER_SITE": 32, "NUM_FRAGMENTS": 15_259, "ITERATIONS": 30},
}

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "ci").strip().lower() or "ci"
if PROFILE not in PROFILES:
    raise ValueError(
        f"REPRO_BENCH_PROFILE must be one of {sorted(PROFILES)}, got {PROFILE!r}"
    )

#: Scale used by the dataset benchmarks (nodes per site; the paper uses 32).
PER_SITE = PROFILES[PROFILE]["PER_SITE"]

#: Fragments per broadcast in the benchmark campaigns (paper: 15 259).
NUM_FRAGMENTS = PROFILES[PROFILE]["NUM_FRAGMENTS"]

#: Measurement iterations for the clustering benchmarks (paper: 30-36).
ITERATIONS = PROFILES[PROFILE]["ITERATIONS"]

#: Seed shared by the benchmark campaigns.
SEED = 2012


@pytest.fixture(scope="session", autouse=True)
def _configure_tracing_from_env():
    """Honour ``REPRO_TRACE`` for benchmark runs (no-op when unset)."""
    from repro.observability.tracer import TRACER, trace_from_env

    trace_from_env()
    yield
    TRACER.flush()


def report(title: str, rows: Mapping[str, object]) -> None:
    """Print a paper-vs-measured block that survives pytest's output capture."""
    width = max(len(k) for k in rows) + 2
    lines = [f"\n=== {title} ==="]
    for key, value in rows.items():
        lines.append(f"  {key:<{width}} {value}")
    print("\n".join(lines))


@pytest.fixture
def bench_once(benchmark):
    """Run the benchmarked callable exactly once (campaigns are expensive).

    Records the stepping mode and control-steps-per-broadcast of the swarm
    work performed during the call in ``benchmark.extra_info``, from which
    ``run_benchmarks.py`` copies them into every BENCH row.
    """
    from repro.bittorrent.swarm import default_stepping
    from repro.observability.metrics import METRICS

    def _run(fn, *args, **kwargs):
        before = METRICS.snapshot()
        outcome = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        delta = METRICS.snapshot().delta_since(before)
        broadcasts = delta.counter("swarm.broadcasts")
        steps = delta.counter("swarm.control_steps")
        # Label the row with the mode(s) the measured call actually ran —
        # some benchmarks pin their own stepping regardless of the suite
        # default (e.g. the event-stepping comparison).
        ran = {
            mode
            for mode in ("fixed", "event")
            if delta.counter(f"swarm.broadcasts.{mode}")
        }
        if len(ran) == 1:
            benchmark.extra_info["stepping"] = ran.pop()
        elif ran:
            benchmark.extra_info["stepping"] = "mixed"
        else:
            benchmark.extra_info["stepping"] = default_stepping()
        # The registry is per-process, but the process-pool executor merges
        # worker snapshot deltas back into this one, so the keys below are
        # meaningful on every backend.  A zero broadcast count still means
        # "not observed" (e.g. a crashed round) — omit rather than record
        # fabricated zeros.
        if broadcasts:
            benchmark.extra_info["broadcasts"] = int(broadcasts)
            benchmark.extra_info["control_steps"] = int(steps)
            benchmark.extra_info["control_steps_per_broadcast"] = round(
                steps / broadcasts, 1
            )
            # Average lanes per batched lock-step run (1 for scalar rows),
            # so the BENCH record distinguishes batched from serial rows.
            lanes = delta.counter("batched.lanes")
            batched_runs = delta.counter("batched.runs")
            benchmark.extra_info["batch_width"] = (
                round(lanes / batched_runs, 1) if batched_runs else 1
            )
        # Full registry delta, for BENCH rows and post-hoc attribution.
        benchmark.extra_info["metrics"] = delta.jsonable()
        return outcome

    return _run
