"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures at laptop
scale and prints a paper-vs-measured comparison.  Absolute numbers are not
expected to match (the substrate is a simulator, not Grid'5000); the asserted
properties are the *shapes* the paper reports: which edges are heavy, how many
clusters are found, where the NMI converges, who is cheaper to run.
"""

from __future__ import annotations

from typing import Mapping

import pytest


#: Scale used by the dataset benchmarks (nodes per site).  The paper uses 32;
#: 8 keeps every benchmark in the seconds range while preserving the
#: contention ratios (see repro.experiments.datasets.scaled_builder).
PER_SITE = 8

#: Fragments per broadcast in the benchmark campaigns (paper: 15 259).
NUM_FRAGMENTS = 600

#: Measurement iterations for the clustering benchmarks (paper: 30-36).
ITERATIONS = 10

#: Seed shared by the benchmark campaigns.
SEED = 2012


def report(title: str, rows: Mapping[str, object]) -> None:
    """Print a paper-vs-measured block that survives pytest's output capture."""
    width = max(len(k) for k in rows) + 2
    lines = [f"\n=== {title} ==="]
    for key, value in rows.items():
        lines.append(f"  {key:<{width}} {value}")
    print("\n".join(lines))


@pytest.fixture
def bench_once(benchmark):
    """Run the benchmarked callable exactly once (campaigns are expensive)."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
