"""Extension (§IV-C discussion, §V future work) — hierarchical clustering.

The paper's B-T dataset shows the limit of a single-level clustering: when the
ground truth is hierarchical (sites containing bottleneck-separated clusters),
one partition cannot express both levels, so the NMI saturates below 1; the
paper proposes multi-level clustering as future work.

At the reproduction's reduced scale the B-T measurements do not retain the
weak intra-Bordeaux second level (see EXPERIMENTS.md), so this benchmark uses
the purpose-built ``NESTED`` dataset: a two-level network where a single-level
clustering recovers only the coarse split while the recursive-Louvain
extension recovers both levels of the ground truth from the same measurements.
"""

from benchmarks.conftest import ITERATIONS, NUM_FRAGMENTS, SEED, report
from repro.clustering.hierarchical import recursive_louvain
from repro.clustering.louvain import louvain
from repro.clustering.nmi import overlapping_nmi
from repro.experiments.datasets import dataset_nested, nested_coarse_ground_truth
from repro.tomography.measurement import MeasurementCampaign
from repro.tomography.metric import metric_graph
from repro.tomography.pipeline import default_swarm_config


def test_hierarchical_clustering_recovers_both_levels(bench_once):
    ds = dataset_nested()
    fine_truth = ds.ground_truth
    coarse_truth = nested_coarse_ground_truth(ds)

    def measure():
        campaign = MeasurementCampaign(
            ds.topology,
            default_swarm_config(NUM_FRAGMENTS),
            hosts=ds.hosts,
            seed=SEED,
            rotate_root=True,
        )
        return campaign.run(ITERATIONS)

    record = bench_once(measure)
    graph = metric_graph(record.aggregate())

    single_level = louvain(graph).partition
    single_vs_fine = overlapping_nmi(single_level, fine_truth)
    single_vs_coarse = overlapping_nmi(single_level, coarse_truth)

    hierarchy = recursive_louvain(graph, min_cluster_size=3, min_split_modularity=0.02)
    leaves = hierarchy.flatten()
    _, best_vs_fine = hierarchy.best_match(fine_truth)
    _, best_vs_coarse = hierarchy.best_match(coarse_truth)

    report(
        "Extension — hierarchical clustering on a two-level network",
        {
            "paper": "single-level clustering caps at NMI≈0.7 on hierarchical ground "
                     "truth (B-T); multi-level clustering named as future work (§V)",
            "single-level clusters": single_level.num_clusters,
            "single-level NMI vs coarse / fine truth": f"{single_vs_coarse:.2f} / {single_vs_fine:.2f}",
            "hierarchy leaf clusters": leaves.num_clusters,
            "hierarchy best-level NMI vs coarse / fine truth": f"{best_vs_coarse:.2f} / {best_vs_fine:.2f}",
            "hierarchy outline": "\n" + hierarchy.describe(),
        },
    )

    # The single level reproduces the B-T failure mode: it matches the coarse
    # split but cannot express the fine one.
    assert single_level.num_clusters == 2
    assert single_vs_coarse >= 0.99
    assert single_vs_fine < 0.9
    # The hierarchical extension recovers both levels from the same data.
    assert best_vs_coarse >= 0.99
    assert best_vs_fine >= 0.99
    assert leaves.num_clusters == 3
