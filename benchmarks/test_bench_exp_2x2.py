"""§IV-B1 — the 2×2-node experiment.

Paper: with only 2 Bordeplage + 2 Borderline nodes the 1 GbE inter-switch link
is not a bottleneck, the measured metrics are similar for all links, and the
method correctly identifies a single logical cluster containing all four
nodes.
"""

import numpy as np

from benchmarks.conftest import SEED, report
from repro.experiments.datasets import dataset_2x2
from repro.experiments.runners import run_dataset_clustering


def test_2x2_nodes_form_a_single_logical_cluster(bench_once):
    ds = dataset_2x2()
    summary = bench_once(
        run_dataset_clustering,
        ds,
        iterations=12,
        num_fragments=500,
        seed=SEED,
        track_convergence=True,
    )
    metric = summary["result"].metric
    weights = metric.weights[np.triu_indices(len(metric.labels), k=1)]

    report(
        "§IV-B1 — 2x2 experiment",
        {
            "paper": "similar metrics on all links; one logical cluster",
            "measured clusters": summary["found_clusters"],
            "measured NMI": f"{summary['measured_nmi']:.2f}",
            "edge weight spread (max/min)": f"{weights.max() / max(weights.min(), 1e-9):.2f}",
        },
    )

    assert summary["found_clusters"] == 1
    assert summary["measured_nmi"] >= 0.99
    # All six edges carried traffic and none is an order of magnitude heavier.
    assert np.all(weights > 0)
    assert weights.max() / weights.min() < 10.0
