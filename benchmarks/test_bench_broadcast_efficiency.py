"""§II-B — efficiency of the BitTorrent broadcast measurement.

Paper: broadcasting the 239 MB file takes about 20 s for 32, 64 and 128 nodes,
even across 4 sites — i.e. the completion time is roughly constant in the
number of nodes and linear (O(M)) in the message size.
"""

from benchmarks.conftest import SEED, report
from repro.experiments.runners import run_broadcast_efficiency


def test_broadcast_time_constant_in_nodes_linear_in_size(bench_once):
    outcome = bench_once(
        run_broadcast_efficiency,
        node_counts=(8, 16, 32),
        num_fragments=400,
        sites=("bordeaux", "grenoble", "toulouse", "lyon"),
        seed=SEED,
    )

    report(
        "§II-B — broadcast efficiency",
        {
            "paper": "239 MB broadcast ≈ 20 s for 32/64/128 nodes over 4 sites",
            "measured durations by node count (s)": {
                k: round(v, 2) for k, v in outcome["durations_by_nodes"].items()
            },
            "measured durations by fragments (s)": {
                k: round(v, 2) for k, v in outcome["durations_by_fragments"].items()
            },
            "largest/smallest swarm duration ratio": f"{outcome['node_scaling_ratio']:.2f}",
            "4x-size duration ratio": f"{outcome['size_scaling_ratio']:.2f}",
            "control steps by node count": outcome["control_steps_by_nodes"],
            "stepping mode": outcome["stepping"],
        },
    )

    # Roughly constant in node count: quadrupling the swarm changes the
    # duration by far less than 4x.
    assert outcome["node_scaling_ratio"] < 2.0
    # Roughly linear in message size: 4x fragments -> between 2x and 8x time.
    assert 2.0 <= outcome["size_scaling_ratio"] <= 8.0
