"""Multi-tenant workload benchmarks: interference campaigns end to end.

Times the interference scenario families (concurrent-broadcast contention,
cross-traffic, churn) through the workload engine and asserts the headline
property of docs/workloads.md: at the families' default intensities the
clustering still recovers the planted two-site structure.  Every row records
the workload metadata (actor counts, interference intensity, injected
events) in ``benchmark.extra_info`` so the BENCH_*.json entries describe the
contention each number was measured under.
"""

from benchmarks.conftest import ITERATIONS, SEED, report
from repro.experiments.datasets import dataset
from repro.tomography.interference import run_interference_study
from repro.workloads import (
    churn_workload,
    cross_traffic_workload,
    rival_broadcast_workload,
)

#: Laptop-scale substrate shared by the workload benchmarks: the interference
#: families' default two-site setting.
PER_SITE = 4
FRAGMENTS = 300


def _study(workload, noise_threshold):
    return run_interference_study(
        dataset("G-T", per_site=PER_SITE),
        workload,
        iterations=max(ITERATIONS // 2, 4),
        num_fragments=FRAGMENTS,
        seed=SEED,
        noise_threshold=noise_threshold,
    )


def _record(benchmark, summary):
    benchmark.extra_info["workload"] = summary["workload"]
    benchmark.extra_info["workload_actors"] = summary["workload_actors"]
    benchmark.extra_info["interference_intensity"] = summary[
        "interference_intensity"
    ]
    report(
        f"workload {summary['workload']} on {summary['dataset']}",
        {
            "tenants per broadcast": summary["workload_actors"],
            "interference intensity": summary["interference_intensity"],
            "background flows": summary["background_flows"],
            "churn leaves/rejoins": (
                f"{summary['churn_leaves']}/{summary['churn_rejoins']}"
            ),
            "overlapping NMI": f"{summary['measured_nmi']:.3f} "
            f"(threshold {summary['noise_threshold']})",
        },
    )


def test_bench_workload_rival_broadcasts(bench_once, benchmark):
    summary = bench_once(
        _study, rival_broadcast_workload(rivals=1, stagger=0.3), 0.85
    )
    _record(benchmark, summary)
    assert summary["recovered"], summary["measured_nmi"]
    assert summary["rival_broadcasts"] >= summary["iterations"]


def test_bench_workload_cross_traffic(bench_once, benchmark):
    summary = bench_once(
        _study, cross_traffic_workload(intensity=1.0, sources=2, bulk=True), 0.8
    )
    _record(benchmark, summary)
    assert summary["recovered"], summary["measured_nmi"]
    assert summary["background_flows"] > 0


def test_bench_workload_churn(bench_once, benchmark):
    summary = bench_once(_study, churn_workload(churn_rate=1.0), 0.8)
    _record(benchmark, summary)
    assert summary["recovered"], summary["measured_nmi"]
    assert summary["churn_leaves"] > 0
