"""Fig. 13 — NMI vs measurement iterations for all datasets.

Paper: the NMI generally improves with the number of iterations and converges
to a stable value; it reaches 1 for B, G-T, B-G-T and B-G-T-L (the simpler
topologies converge within ~2 iterations, B-G-T-L needs ~15), and saturates
around 0.7 for B-T because of the three-way hierarchical ground truth.
"""

from benchmarks.conftest import SEED, report
from repro.experiments.runners import run_fig13


def test_fig13_nmi_convergence_curves(bench_once):
    studies = bench_once(
        run_fig13,
        datasets=["B", "B-T", "G-T", "B-G-T", "B-G-T-L"],
        per_site=8,
        iterations=10,
        num_fragments=500,
        seed=SEED,
    )

    rows = {}
    for name, study in studies.items():
        rows[name] = (
            f"final NMI {study.final_nmi:.2f}, curve "
            f"{[round(v, 2) for v in study.curve]}"
        )
    rows["paper"] = "B, G-T, B-G-T, B-G-T-L -> 1.0; B-T -> ~0.7"
    report("Fig. 13 — NMI convergence", rows)

    # Perfect recovery for the four non-hierarchical datasets.
    for name in ("B", "G-T", "B-G-T", "B-G-T-L"):
        assert studies[name].final_nmi >= 0.99, name
        assert studies[name].iterations_to_reach(0.99) is not None, name
    # The hierarchical mismatch keeps B-T clearly below 1 but well above chance.
    assert 0.4 <= studies["B-T"].final_nmi <= 0.95

    # The NMI "generally improves as the number of iterations performed
    # increases, converging on a stable value": the late part of every curve
    # is at least as good as the early part.
    for name, study in studies.items():
        early = sum(study.curve[:3]) / 3.0
        late = sum(study.curve[-3:]) / 3.0
        assert late >= early - 1e-9, name
