"""Fig. 5 — distribution of w(e) for a fixed edge over independent runs.

Paper: over 36 independent runs of the metric on a fixed intra-cluster edge,
23 runs exchanged zero fragments and the rest ranged from 3 to 6304 — a very
high variance, in contrast to the tight NetPIPE distribution around 890 Mb/s.
"""

import numpy as np

from benchmarks.conftest import SEED, report
from repro.experiments.runners import run_fig5, run_netpipe_reference


def test_fig5_single_run_metric_is_highly_variable(bench_once):
    outcome = bench_once(
        run_fig5, cluster_nodes=16, iterations=24, num_fragments=400, seed=SEED
    )
    netpipe = run_netpipe_reference(repeats=3)

    report(
        "Fig. 5 — single-edge metric distribution",
        {
            "edge": " -- ".join(outcome["edge"]),
            "paper": "23/36 runs zero; nonzero range 3..6304 fragments",
            "measured zero runs": f"{outcome['zero_runs']}/{outcome['iterations']}",
            "measured nonzero range": f"{outcome['nonzero_min']:.0f}..{outcome['nonzero_max']:.0f}",
            "metric coefficient of variation": f"{outcome['coefficient_of_variation']:.2f}",
            "NetPIPE intra-cluster std (Mb/s)": f"{netpipe['intra_cluster_std']:.4f}",
        },
    )

    # Shape: the single-run metric is very noisy, NetPIPE essentially noiseless.
    assert outcome["coefficient_of_variation"] > 0.5
    assert outcome["zero_runs"] > 0
    assert netpipe["intra_cluster_std"] < 1e-3
    history = np.array(outcome["history"])
    assert history.max() > 5 * max(history.min(), 1.0)
