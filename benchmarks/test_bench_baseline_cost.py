"""§II-B — measurement cost of classical saturation tomography vs BitTorrent.

Paper: the pairwise procedure of [13] takes about an hour for only 20 nodes
(O(N²) probes), the triplet procedure of [12] is O(N³), while a handful of
BitTorrent broadcasts measures the whole network in a few minutes regardless
of the node count.
"""

from benchmarks.conftest import SEED, report
from repro.experiments.runners import run_baseline_cost


def test_baseline_measurement_cost_scales_worse_than_bittorrent(bench_once):
    outcome = bench_once(
        run_baseline_cost,
        node_counts=(6, 10, 14),
        probe_size=16e6,
        num_fragments=300,
        bt_iterations=4,
        seed=SEED,
    )
    rows = outcome["rows"]

    table = {}
    for row in rows:
        table[f"N={row['nodes']}"] = (
            f"BT {row['bittorrent_time_s']:.1f}s | pairwise {row['pairwise_time_s']:.1f}s "
            f"({row['pairwise_probes']} probes) | triplet {row['triplet_time_s']:.1f}s "
            f"({row['triplet_probes']} probes)"
        )
    table["paper"] = "pairwise ≈ 1 h @ 20 nodes; BitTorrent a few minutes"
    report("§II-B — measurement cost comparison", table)

    small, mid, large = rows
    bt_growth = large["bittorrent_time_s"] / small["bittorrent_time_s"]
    pairwise_growth = large["pairwise_time_s"] / small["pairwise_time_s"]
    triplet_growth = large["triplet_time_s"] / small["triplet_time_s"]

    # Shape: the broadcast campaign cost is roughly flat in N, the baselines
    # grow polynomially, and the triplet method grows fastest.
    assert bt_growth < 2.0
    assert pairwise_growth > 1.5 * bt_growth
    assert triplet_growth > pairwise_growth
    # The baselines are already slower in absolute simulated time at N=14.
    assert large["pairwise_time_s"] > large["bittorrent_time_s"]
    assert large["triplet_time_s"] > large["pairwise_time_s"]
