"""Fig. 12 and §IV-D — dataset 'BGTL': Bordeaux + Grenoble + Toulouse + Lyon.

Paper: 4 × 16 nodes, 30 iterations; the four logical clusters are identified
correctly, but this most complex setting needs the most iterations (~15) to
reach perfect accuracy.
"""

from benchmarks.conftest import NUM_FRAGMENTS, SEED, report
from repro.experiments.datasets import dataset_bgtl
from repro.experiments.runners import run_dataset_clustering


def test_fig12_bgtl_four_sites(bench_once):
    ds = dataset_bgtl(per_site=8)
    summary = bench_once(
        run_dataset_clustering,
        ds,
        iterations=12,
        num_fragments=NUM_FRAGMENTS,
        seed=SEED,
        track_convergence=True,
    )
    curve = summary["nmi_per_iteration"]
    first_perfect = next((i + 1 for i, v in enumerate(curve) if v >= 0.99), None)

    report(
        "Fig. 12 / dataset B-G-T-L — four sites",
        {
            "hosts": summary["hosts"],
            "paper clusters / NMI": "4 / 1.0 (needs ~15 iterations)",
            "measured clusters / NMI": f"{summary['found_clusters']} / {summary['measured_nmi']:.3f}",
            "measured NMI per iteration": [round(x, 2) for x in curve],
            "iterations to perfect NMI": first_perfect,
        },
    )

    assert summary["found_clusters"] == 4
    assert summary["measured_nmi"] >= 0.99
    assert first_perfect is not None
    # The single-run clustering is generally *not* perfect: aggregation over
    # iterations is what makes the metric reliable (the paper's key point).
    assert first_perfect >= 1
