"""Fig. 4 — metric values for all edges of a fixed node, local vs remote.

Paper: in a 64-node single-site broadcast (36 iterations), the fixed node
exchanged 22 533 fragments with local-cluster peers and 6 337 with remote
peers — local edges are several times heavier per peer.
"""

from benchmarks.conftest import ITERATIONS, NUM_FRAGMENTS, SEED, report
from repro.analysis.visualize import render_fig4_bars
from repro.experiments.runners import run_fig4


def test_fig4_local_edges_dominate(bench_once):
    outcome = bench_once(
        run_fig4,
        bordeplage=8,
        bordereau=6,
        borderline=2,
        iterations=ITERATIONS,
        num_fragments=NUM_FRAGMENTS,
        seed=SEED,
    )
    local_mean = outcome["local_mean"]
    remote_mean = outcome["remote_mean"]
    paper_ratio = (22533 / 31) / (6337 / 32)
    measured_ratio = local_mean / remote_mean

    report(
        "Fig. 4 — fragments exchanged by a fixed node",
        {
            "focus host": outcome["focus_host"],
            "paper local/remote totals": "22533 / 6337 (36 iters, 64 nodes)",
            "measured local/remote totals": f"{outcome['local_total']:.0f} / {outcome['remote_total']:.0f}",
            "paper per-peer ratio": f"{paper_ratio:.2f}",
            "measured per-peer ratio": f"{measured_ratio:.2f}",
        },
    )
    print(render_fig4_bars(outcome["local_edges"], outcome["remote_edges"]))

    # Shape: local-cluster edges carry clearly more fragments per peer.
    assert measured_ratio > 1.5
    assert outcome["local_total"] > outcome["remote_total"]
