"""Fig. 11 and §IV-D — dataset 'BGT': Bordeaux + Grenoble + Toulouse.

Paper: 3 × 32 nodes (only well-connected Bordeaux clusters), 30 iterations
run but 2 suffice for perfect accuracy; three clusters identified.
"""

from benchmarks.conftest import ITERATIONS, NUM_FRAGMENTS, SEED, report
from repro.experiments.datasets import dataset_bgt
from repro.experiments.runners import run_dataset_clustering


def test_fig11_bgt_three_sites(bench_once):
    ds = dataset_bgt(per_site=8)
    summary = bench_once(
        run_dataset_clustering,
        ds,
        iterations=ITERATIONS,
        num_fragments=NUM_FRAGMENTS,
        seed=SEED,
        track_convergence=True,
    )

    report(
        "Fig. 11 / dataset B-G-T — three sites",
        {
            "hosts": summary["hosts"],
            "paper clusters / NMI / iterations": "3 / 1.0 / 2",
            "measured clusters / NMI": f"{summary['found_clusters']} / {summary['measured_nmi']:.3f}",
            "measured NMI per iteration": [round(x, 2) for x in summary["nmi_per_iteration"]],
            "measurement time (simulated s)": f"{summary['measurement_time_s']:.1f}",
        },
    )

    assert summary["found_clusters"] == 3
    assert summary["measured_nmi"] >= 0.99
    first_perfect = next(
        i + 1 for i, v in enumerate(summary["nmi_per_iteration"]) if v >= 0.99
    )
    assert first_perfect <= 6
