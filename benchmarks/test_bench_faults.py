"""Fault-injection benchmarks: tomography campaigns under injected failure.

Times the fault-injection scenario families end to end and records the
fault metadata (injector counts, failure intensity, detection verdict) in
``benchmark.extra_info`` so BENCH rows describe the failures each number
was measured under.  Three properties are asserted:

* the headline metric exists — a persistent bottleneck blackout is
  *detected* via its duration spike, and ``time_to_detect_s`` is charged;
* the chaos plan (link failures + route flaps + tracker outages + tenant
  cycling) still lets the clustering recover the planted structure;
* the empty plan is free — ``faults="none"`` resolves to the single-tenant
  fast path and reproduces the plain campaign bit for bit (≈0 overhead).
"""

import numpy as np

from benchmarks.conftest import ITERATIONS, SEED, report
from repro.experiments.datasets import dataset
from repro.tomography.faults import run_fault_study
from repro.tomography.measurement import MeasurementCampaign
from repro.tomography.pipeline import default_swarm_config

#: Laptop-scale substrate shared by the fault benchmarks (same two-site
#: setting as the interference rows).
PER_SITE = 4
FRAGMENTS = 300


def _study(faults, noise_threshold, **kwargs):
    return run_fault_study(
        dataset("G-T", per_site=PER_SITE),
        faults=faults,
        iterations=max(ITERATIONS // 2, 5),
        num_fragments=FRAGMENTS,
        seed=SEED,
        noise_threshold=noise_threshold,
        **kwargs,
    )


def _record(benchmark, summary):
    benchmark.extra_info["faults"] = summary["faults"]
    benchmark.extra_info["fault_injectors"] = summary["fault_injectors"]
    benchmark.extra_info["fault_intensity"] = summary["fault_intensity"]
    benchmark.extra_info["detected"] = summary["detected"]
    if summary["time_to_detect_s"] is not None:
        benchmark.extra_info["time_to_detect_s"] = summary["time_to_detect_s"]
    report(
        f"faults {summary['faults']} on {summary['dataset']}",
        {
            "fault injectors": summary["fault_injectors"],
            "failure intensity": summary["fault_intensity"],
            "link failures": summary["link_failures"],
            "detected": (
                f"iteration {summary['detected_iteration']} "
                f"(time to detect {summary['time_to_detect_s']:.3f} s)"
                if summary["detected"] else "no"
            ),
            "overlapping NMI": f"{summary['measured_nmi']:.3f} "
            f"(threshold {summary['noise_threshold']})",
        },
    )


def test_bench_fault_blackout_detection(bench_once, benchmark):
    """The headline metric: time to detect a failed bottleneck link."""
    summary = bench_once(_study, "blackout", 0.6)
    _record(benchmark, summary)
    assert summary["detected"], summary
    assert summary["time_to_detect_s"] > 0
    assert summary["iterations_to_detect"] >= 1


def test_bench_fault_chaos_recovery(bench_once, benchmark):
    summary = bench_once(_study, "chaos", 0.75)
    _record(benchmark, summary)
    assert summary["recovered"], summary["measured_nmi"]
    assert summary["fault_injectors"] == 4


def test_bench_fault_empty_plan_overhead(bench_once, benchmark):
    """faults="none" must cost nothing: it resolves to the plain
    single-tenant campaign and reproduces it bit for bit."""

    def _paired_campaigns():
        ds = dataset("G-T", per_site=PER_SITE)
        config = default_swarm_config(FRAGMENTS)
        iterations = max(ITERATIONS // 2, 5)
        plain = MeasurementCampaign(
            ds.topology, config, hosts=ds.hosts, seed=SEED
        ).run(iterations)
        empty = MeasurementCampaign(
            ds.topology, config, hosts=ds.hosts, seed=SEED, faults="none"
        ).run(iterations)
        return plain, empty

    plain, empty = bench_once(_paired_campaigns)
    benchmark.extra_info["faults"] = "none"
    benchmark.extra_info["fault_injectors"] = 0
    identical = all(
        np.array_equal(a.fragments.counts, b.fragments.counts)
        and a.duration == b.duration
        for a, b in zip(plain.results, empty.results)
    )
    report(
        "faults none (empty-plan overhead)",
        {
            "campaigns timed": "plain + faults='none' back to back",
            "bit-identical": identical,
        },
    )
    assert identical
    assert not empty.workload_stats


def _record_localization(benchmark, summary):
    benchmark.extra_info["localization_status"] = summary["localization_status"]
    benchmark.extra_info["localized_link"] = summary["localized_link"]
    if summary["localization_rank"] is not None:
        benchmark.extra_info["localization_rank"] = summary["localization_rank"]
    if summary["time_to_localize_s"] is not None:
        benchmark.extra_info["time_to_localize_s"] = summary["time_to_localize_s"]


def test_bench_fault_localization(bench_once, benchmark):
    """The second headline metric: time to *localize* the failed link.

    Runs the LINK-BLACKOUT scenario (Bordeaux substrate with per-cluster
    uplinks, persistent bottleneck blackout) and records the boolean-
    tomography verdict next to the detection one.
    """
    from repro.scenarios import get_scenario

    summary = bench_once(
        lambda: get_scenario("LINK-BLACKOUT").run(
            iterations=max(ITERATIONS // 2, 5),
            num_fragments=FRAGMENTS,
            seed=SEED,
            per_site=PER_SITE,
        )
    )
    _record(benchmark, summary)
    _record_localization(benchmark, summary)
    report(
        "fault localization (LINK-BLACKOUT)",
        {
            "verdict": f"{summary['localization_status']}: "
                       f"{summary['localized_link']}",
            "true link rank": summary["localization_rank"],
            "time to localize": f"{summary['time_to_localize_s']:.3f} s",
        },
    )
    assert summary["localization_status"] == "named"
    assert summary["localized_link"] == summary["true_link"]
    assert summary["localization_rank"] == 1
    assert summary["time_to_localize_s"] > 0


def test_bench_fault_migrating_selfhealing(bench_once, benchmark):
    """Self-healing under a relocating failure: reroute + re-pin per
    epoch, re-detect and re-localize each victim."""
    from repro.scenarios import get_scenario

    # Pinned at the scenario's own scale (240 fragments): the healed
    # epoch's residual slowdown rides the backup-link penalty, and at
    # higher fragment counts it dips under the divergence ratio — the
    # failure becomes *invisible* because the healing worked.
    summary = bench_once(
        lambda: get_scenario("MIGRATING-BOTTLENECK").run(
            iterations=6,
            num_fragments=240,
            seed=SEED,
            per_site=PER_SITE,
        )
    )
    _record(benchmark, summary)
    _record_localization(benchmark, summary)
    epochs = summary["epochs"]
    benchmark.extra_info["epochs"] = len(epochs)
    report(
        "self-healing migrating bottleneck",
        {
            "epochs": len(epochs),
            "per-epoch verdicts": "; ".join(
                f"e{e['epoch']}: {e.get('localized_link') or e['localization_status']}"
                f" (rank {e.get('localization_rank')})"
                for e in epochs
            ),
            "worst rank": summary["localization_rank"],
        },
    )
    assert len(epochs) == 2
    for epoch in epochs:
        assert epoch["detected"], epoch
        assert epoch["localization_rank"] is not None
        assert epoch["localization_rank"] <= 3, epoch
