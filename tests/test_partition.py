"""Unit and property tests for the Partition datatype."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.partition import Partition


class TestConstruction:
    def test_basic_partition(self):
        p = Partition([{"a", "b"}, {"c"}])
        assert p.num_clusters == 2
        assert len(p) == 3
        assert p.same_cluster("a", "b")
        assert not p.same_cluster("a", "c")

    def test_overlapping_clusters_rejected(self):
        with pytest.raises(ValueError):
            Partition([{"a", "b"}, {"b", "c"}])

    def test_empty_partition_rejected(self):
        with pytest.raises(ValueError):
            Partition([])
        with pytest.raises(ValueError):
            Partition([set(), set()])

    def test_empty_clusters_are_dropped(self):
        p = Partition([{"a"}, set(), {"b"}])
        assert p.num_clusters == 2

    def test_from_membership(self):
        p = Partition.from_membership({"a": 0, "b": 0, "c": 1})
        assert p.same_cluster("a", "b")
        assert not p.same_cluster("a", "c")

    def test_singletons_and_whole(self):
        nodes = ["a", "b", "c"]
        singles = Partition.singletons(nodes)
        whole = Partition.whole(nodes)
        assert singles.num_clusters == 3
        assert whole.num_clusters == 1

    def test_equality_ignores_construction_order(self):
        p1 = Partition([{"a", "b"}, {"c", "d"}])
        p2 = Partition([{"d", "c"}, {"b", "a"}])
        assert p1 == p2
        assert hash(p1) == hash(p2)

    def test_inequality(self):
        p1 = Partition([{"a", "b"}, {"c"}])
        p2 = Partition([{"a"}, {"b", "c"}])
        assert p1 != p2


class TestQueries:
    def test_cluster_of_and_index(self):
        p = Partition([{"a", "b", "c"}, {"d"}])
        assert p.cluster_of("d") == frozenset({"d"})
        assert p.cluster_index("a") == p.cluster_index("b")
        with pytest.raises(KeyError):
            p.cluster_of("zzz")

    def test_membership_mapping_is_consistent(self):
        p = Partition([{"a", "b"}, {"c"}])
        membership = p.membership()
        assert membership["a"] == membership["b"]
        assert membership["a"] != membership["c"]

    def test_sizes_sorted_descending(self):
        p = Partition([{"x"}, {"a", "b", "c"}, {"p", "q"}])
        assert p.sizes() == [3, 2, 1]

    def test_contains(self):
        p = Partition([{"a"}])
        assert "a" in p
        assert "b" not in p

    def test_restrict(self):
        p = Partition([{"a", "b"}, {"c", "d"}])
        restricted = p.restrict(["a", "c", "d"])
        assert restricted.num_clusters == 2
        assert len(restricted) == 3
        with pytest.raises(KeyError):
            p.restrict(["a", "zzz"])

    def test_relabel(self):
        p = Partition([{"a", "b"}, {"c"}])
        renamed = p.relabel({"a": "A", "b": "B", "c": "C"})
        assert renamed.same_cluster("A", "B")
        assert "a" not in renamed


@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=5),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=80, deadline=None)
def test_from_membership_roundtrip(membership):
    p = Partition.from_membership(membership)
    # Every node keeps exactly its original group-mates.
    for u in membership:
        for v in membership:
            assert p.same_cluster(u, v) == (membership[u] == membership[v])
    # Cluster sizes add up to the node count.
    assert sum(p.sizes()) == len(membership)
