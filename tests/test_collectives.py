"""Tests for the topology-aware collective schedules."""

import pytest

from repro.applications.collectives import (
    cluster_aware_allgather,
    cluster_aware_broadcast,
    flat_broadcast,
    naive_allgather,
)
from repro.clustering.partition import Partition


def dumbbell_partition(topology):
    return Partition(
        [
            {h for h in topology.host_names if h.startswith("left")},
            {h for h in topology.host_names if h.startswith("right")},
        ]
    )


class TestBroadcast:
    def test_cluster_aware_broadcast_beats_flat_across_bottleneck(self, dumbbell_topology):
        partition = dumbbell_partition(dumbbell_topology)
        hosts = dumbbell_topology.host_names
        root = "left-0"
        size = 20e6
        flat = flat_broadcast(dumbbell_topology, hosts, root, size)
        aware = cluster_aware_broadcast(dumbbell_topology, hosts, root, size, partition)
        # The flat schedule pushes the message across the 10 Mb/s bottleneck
        # once per remote host; the cluster-aware one only once.
        assert aware.completion_time < flat.completion_time
        assert flat.completion_time / aware.completion_time > 1.5
        assert len(aware.phases) == 2
        assert aware.total_bytes == pytest.approx(flat.total_bytes)

    def test_results_record_operation_and_schedule(self, dumbbell_topology):
        partition = dumbbell_partition(dumbbell_topology)
        flat = flat_broadcast(dumbbell_topology, dumbbell_topology.host_names, "left-0", 1e6)
        aware = cluster_aware_broadcast(
            dumbbell_topology, dumbbell_topology.host_names, "left-0", 1e6, partition
        )
        assert flat.operation == aware.operation == "broadcast"
        assert flat.schedule == "flat"
        assert aware.schedule == "cluster-aware"

    def test_single_cluster_aware_broadcast_degenerates_gracefully(self, dumbbell_topology):
        whole = Partition.whole(dumbbell_topology.host_names)
        aware = cluster_aware_broadcast(
            dumbbell_topology, dumbbell_topology.host_names, "left-0", 1e6, whole
        )
        # Phase 1 is empty (no other cluster), phase 2 does all the work.
        assert aware.phases[0] == 0.0
        assert aware.completion_time > 0

    def test_validation_errors(self, dumbbell_topology):
        hosts = dumbbell_topology.host_names
        partition = dumbbell_partition(dumbbell_topology)
        with pytest.raises(ValueError):
            flat_broadcast(dumbbell_topology, hosts, "ghost", 1e6)
        with pytest.raises(ValueError):
            flat_broadcast(dumbbell_topology, hosts, "left-0", 0.0)
        with pytest.raises(ValueError):
            flat_broadcast(dumbbell_topology, ["left-0"], "left-0", 1e6)
        with pytest.raises(ValueError):
            cluster_aware_broadcast(
                dumbbell_topology, hosts + [], "left-0", 1e6,
                Partition([{h for h in hosts if h.startswith("left")}]),
            )


class TestAllgather:
    def test_cluster_aware_allgather_reduces_bottleneck_traffic(self, dumbbell_topology):
        partition = dumbbell_partition(dumbbell_topology)
        hosts = dumbbell_topology.host_names
        size = 5e6
        naive = naive_allgather(dumbbell_topology, hosts, size)
        aware = cluster_aware_allgather(dumbbell_topology, hosts, size, partition)
        assert aware.completion_time < naive.completion_time
        assert len(aware.phases) == 3

    def test_every_phase_contributes_bytes(self, dumbbell_topology):
        partition = dumbbell_partition(dumbbell_topology)
        aware = cluster_aware_allgather(
            dumbbell_topology, dumbbell_topology.host_names, 1e6, partition
        )
        assert all(phase >= 0 for phase in aware.phases)
        assert aware.total_bytes > 0

    def test_naive_allgather_total_bytes(self, dumbbell_topology):
        hosts = dumbbell_topology.host_names
        size = 1e6
        naive = naive_allgather(dumbbell_topology, hosts, size)
        n = len(hosts)
        assert naive.total_bytes == pytest.approx(n * (n - 1) * size)

    def test_partition_must_cover_hosts(self, dumbbell_topology):
        partial = Partition([{"left-0", "left-1"}])
        with pytest.raises(ValueError):
            cluster_aware_allgather(
                dumbbell_topology, dumbbell_topology.host_names, 1e6, partial
            )
