"""Tests for the force-directed layout implementations."""

import numpy as np
import pytest

from repro.analysis.layout import (
    fruchterman_reingold_layout,
    kamada_kawai_layout,
    layout_cluster_separation,
)
from repro.clustering.partition import Partition
from repro.graph.wgraph import WeightedGraph


def two_cluster_graph():
    graph = WeightedGraph()
    a = [f"a{i}" for i in range(5)]
    b = [f"b{i}" for i in range(5)]
    for group in (a, b):
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                graph.add_edge(group[i], group[j], 20.0)
    graph.add_edge("a0", "b0", 1.0)
    return graph, Partition([set(a), set(b)])


class TestKamadaKawai:
    def test_positions_for_all_nodes(self):
        graph, _ = two_cluster_graph()
        positions = kamada_kawai_layout(graph)
        assert set(positions) == set(graph.nodes())
        for x, y in positions.values():
            assert np.isfinite(x) and np.isfinite(y)

    def test_heavy_edges_are_shorter(self):
        graph = WeightedGraph()
        graph.add_edge("a", "b", 100.0)
        graph.add_edge("b", "c", 1.0)
        positions = kamada_kawai_layout(graph, seed=1)
        dist_ab = np.hypot(
            positions["a"][0] - positions["b"][0], positions["a"][1] - positions["b"][1]
        )
        dist_bc = np.hypot(
            positions["b"][0] - positions["c"][0], positions["b"][1] - positions["c"][1]
        )
        assert dist_ab < dist_bc

    def test_clusters_are_visually_separated(self):
        """The paper's qualitative claim (§III-C): layout separates ground truth."""
        graph, truth = two_cluster_graph()
        positions = kamada_kawai_layout(graph, seed=0)
        separation = layout_cluster_separation(positions, truth)
        assert separation > 1.5

    def test_small_graphs(self):
        empty = WeightedGraph()
        assert kamada_kawai_layout(empty) == {}
        single = WeightedGraph()
        single.add_node("only")
        assert kamada_kawai_layout(single) == {"only": (0.0, 0.0)}

    def test_deterministic_for_fixed_seed(self):
        graph, _ = two_cluster_graph()
        a = kamada_kawai_layout(graph, seed=3)
        b = kamada_kawai_layout(graph, seed=3)
        for node in graph.nodes():
            assert a[node] == pytest.approx(b[node])

    def test_disconnected_graph_does_not_crash(self):
        graph = WeightedGraph.from_edges([("a", "b", 1.0), ("c", "d", 1.0)])
        positions = kamada_kawai_layout(graph)
        assert len(positions) == 4


class TestFruchtermanReingold:
    def test_positions_for_all_nodes(self):
        graph, _ = two_cluster_graph()
        positions = fruchterman_reingold_layout(graph, seed=2)
        assert set(positions) == set(graph.nodes())

    def test_clusters_separated(self):
        graph, truth = two_cluster_graph()
        positions = fruchterman_reingold_layout(graph, seed=2, iterations=300)
        assert layout_cluster_separation(positions, truth) > 1.2

    def test_empty_graph(self):
        assert fruchterman_reingold_layout(WeightedGraph()) == {}


class TestSeparationScore:
    def test_requires_positioned_nodes(self):
        with pytest.raises(ValueError):
            layout_cluster_separation({}, Partition([{"a"}]))

    def test_single_cluster_gives_zero(self):
        positions = {"a": (0.0, 0.0), "b": (1.0, 0.0)}
        assert layout_cluster_separation(positions, Partition([{"a", "b"}])) == 0.0

    def test_perfectly_separated_points(self):
        positions = {"a": (0.0, 0.0), "b": (0.1, 0.0), "c": (10.0, 0.0), "d": (10.1, 0.0)}
        truth = Partition([{"a", "b"}, {"c", "d"}])
        assert layout_cluster_separation(positions, truth) > 10
