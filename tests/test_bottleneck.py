"""Tests for bottleneck-link identification from a recovered clustering."""

import pytest

from repro.clustering.partition import Partition
from repro.experiments.datasets import dataset_b
from repro.tomography.bottleneck import (
    BottleneckReport,
    describe_bottlenecks,
    find_bottleneck_links,
)
from repro.tomography.pipeline import TomographyPipeline, default_swarm_config


def dumbbell_partition(topology):
    return Partition(
        [
            {h for h in topology.host_names if h.startswith("left")},
            {h for h in topology.host_names if h.startswith("right")},
        ]
    )


class TestFindBottleneckLinks:
    def test_dumbbell_bottleneck_is_identified(self, dumbbell_topology):
        reports = find_bottleneck_links(dumbbell_topology, dumbbell_partition(dumbbell_topology))
        assert len(reports) == 1
        report = reports[0]
        assert report.primary_bottleneck() == "bottleneck"
        assert "bottleneck" in report.shared_links
        # Every considered pair crosses the bottleneck link.
        assert report.link_pair_counts["bottleneck"] == report.pair_count == 9

    def test_ranked_links_puts_shared_link_first(self, dumbbell_topology):
        report = find_bottleneck_links(
            dumbbell_topology, dumbbell_partition(dumbbell_topology)
        )[0]
        top_link, top_count = report.ranked_links()[0]
        assert top_link == "bottleneck"
        assert top_count == report.pair_count

    def test_intra_cluster_partition_has_no_shared_wan_link(self, dumbbell_topology):
        partition = Partition([{"left-0", "left-1"}, {"left-2"}])
        reports = find_bottleneck_links(dumbbell_topology, partition)
        # Routes stay inside the left switch; the only shared links are the
        # access links, never the inter-switch bottleneck.
        assert all("bottleneck" not in r.shared_links for r in reports)

    def test_pair_sampling_cap(self, dumbbell_topology):
        reports = find_bottleneck_links(
            dumbbell_topology,
            dumbbell_partition(dumbbell_topology),
            max_pairs_per_cluster_pair=4,
        )
        assert reports[0].pair_count == 4
        with pytest.raises(ValueError):
            find_bottleneck_links(
                dumbbell_topology,
                dumbbell_partition(dumbbell_topology),
                max_pairs_per_cluster_pair=0,
            )

    def test_non_host_members_rejected(self, dumbbell_topology):
        partition = Partition([{"left-0", "sw-left"}, {"right-0"}])
        with pytest.raises(ValueError):
            find_bottleneck_links(dumbbell_topology, partition)

    def test_describe_mentions_shared_links(self, dumbbell_topology):
        reports = find_bottleneck_links(
            dumbbell_topology, dumbbell_partition(dumbbell_topology)
        )
        text = describe_bottlenecks(dumbbell_topology, reports)
        assert "bottleneck" in text
        assert "Gb/s" in text

    def test_three_cluster_reports_cover_all_pairs(self, dumbbell_topology):
        partition = Partition(
            [
                {"left-0", "left-1"},
                {"left-2"},
                {h for h in dumbbell_topology.host_names if h.startswith("right")},
            ]
        )
        reports = find_bottleneck_links(dumbbell_topology, partition)
        assert len(reports) == 3
        assert {(r.cluster_a, r.cluster_b) for r in reports} == {(0, 1), (0, 2), (1, 2)}


class TestEndToEndDiagnosis:
    def test_recovered_bordeaux_clusters_point_at_the_1gbe_link(self):
        """The paper's conclusion: the method identifies the bottleneck link."""
        ds = dataset_b(bordeplage=6, bordereau=4, borderline=2)
        pipeline = TomographyPipeline(
            ds.topology,
            hosts=ds.hosts,
            ground_truth=ds.ground_truth,
            config=default_swarm_config(400),
            seed=4,
        )
        result = pipeline.run(iterations=6, track_convergence=False)
        assert result.num_clusters == 2
        reports = find_bottleneck_links(ds.topology, result.partition)
        primary = reports[0].primary_bottleneck()
        assert primary == "bordeaux.bordeplage.bottleneck"
