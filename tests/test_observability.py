"""Unit tests for the telemetry layer: metrics algebra, tracer lifecycle,
environment routing, and the Chrome trace-event export.

The integration-level guarantees live elsewhere: seed-replay neutrality in
``tests/test_seed_replay.py`` (tracing on/off goldens), cross-executor
snapshot merging in ``tests/test_executors.py``, and the chaos-marker
telemetry assertions next to the fault-tolerance tests.  This module pins
the value-object semantics those suites rely on.
"""

import json
import os
import pickle
import subprocess
import sys

import pytest

from repro.observability.export import (
    export_chrome,
    load_records,
    summarize,
    to_chrome,
    trace_meta,
)
from repro.observability.metrics import (
    METRIC_CATALOGUE,
    METRICS,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.observability.tracer import (
    TRACE_DETAIL_ENV,
    TRACE_ENV,
    TRACE_OWNER_ENV,
    TRACE_SCHEMA,
    TRACER,
    TraceConfigError,
    Tracer,
    configure_tracing,
    trace_from_env,
    worker_trace_path,
)


# ---------------------------------------------------------------------- #
# metrics: snapshot algebra
# ---------------------------------------------------------------------- #
class TestMetricsSnapshot:
    def test_delta_drops_untouched_and_zero_counters(self):
        registry = MetricsRegistry()
        registry.count("a")
        registry.count("b", 2)
        before = registry.snapshot()
        registry.count("b", 3)
        registry.count("c", 0.5)
        delta = registry.snapshot().delta_since(before)
        assert delta.counters == {"b": 3, "c": 0.5}
        assert delta.counter("a") == 0.0
        assert delta.counter("missing", default=-1) == -1

    def test_delta_of_histograms_subtracts_count_and_total(self):
        registry = MetricsRegistry()
        registry.observe("h", 1.0)
        before = registry.snapshot()
        registry.observe("h", 3.0)
        registry.observe("h", 5.0)
        delta = registry.snapshot().delta_since(before)
        count, total, lo, hi = delta.histograms["h"]
        assert (count, total) == (2, 8.0)
        # min/max cannot be un-merged; the interval inherits the run's.
        assert (lo, hi) == (1.0, 5.0)

    def test_merged_adds_counters_and_folds_histograms(self):
        a = MetricsSnapshot(
            counters={"x": 1.0},
            gauges={"g": 0.5},
            histograms={"h": (1, 2.0, 2.0, 2.0)},
        )
        b = MetricsSnapshot(
            counters={"x": 2.0, "y": 1.0},
            gauges={"g": 0.9},
            histograms={"h": (2, 9.0, 1.0, 8.0), "k": (1, 1.0, 1.0, 1.0)},
        )
        merged = a.merged(b)
        assert merged.counters == {"x": 3.0, "y": 1.0}
        assert merged.gauges == {"g": 0.9}  # last value wins
        assert merged.histograms["h"] == (3, 11.0, 1.0, 8.0)
        assert merged.histograms["k"] == (1, 1.0, 1.0, 1.0)

    def test_snapshot_is_picklable_and_falsy_when_empty(self):
        assert not MetricsSnapshot()
        registry = MetricsRegistry()
        registry.count("n")
        snap = registry.snapshot()
        assert snap
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap

    def test_jsonable_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.count("c", 2)
        registry.gauge("g", 0.75)
        registry.observe("h", 1.5)
        payload = json.loads(json.dumps(registry.snapshot().jsonable()))
        assert payload["counters"] == {"c": 2}
        assert payload["gauges"] == {"g": 0.75}
        assert payload["histograms"]["h"] == {
            "count": 1,
            "total": 1.5,
            "min": 1.5,
            "max": 1.5,
        }

    def test_registry_merge_and_reset(self):
        registry = MetricsRegistry()
        registry.count("x")
        registry.observe("h", 2.0)
        registry.merge(
            MetricsSnapshot(
                counters={"x": 4.0},
                gauges={"g": 1.0},
                histograms={"h": (1, 6.0, 6.0, 6.0)},
            )
        )
        registry.merge(None)  # tolerated: tasks without telemetry
        snap = registry.snapshot()
        assert snap.counter("x") == 5.0
        assert snap.gauges["g"] == 1.0
        assert snap.histograms["h"] == (2, 8.0, 2.0, 6.0)
        registry.reset()
        assert not registry.snapshot()

    def test_timer_observes_wall_seconds(self):
        registry = MetricsRegistry()
        with registry.timer("t"):
            pass
        count, total, lo, hi = registry.snapshot().histograms["t"]
        assert count == 1
        assert 0.0 <= lo <= hi
        assert total == pytest.approx(lo + hi - lo)

    def test_catalogue_names_follow_the_dotted_convention(self):
        for name, (kind, description) in METRIC_CATALOGUE.items():
            assert "." in name, name
            assert kind in ("counter", "gauge", "histogram")
            assert description


# ---------------------------------------------------------------------- #
# tracer: lifecycle, fail-fast, environment routing
# ---------------------------------------------------------------------- #
class TestTracer:
    def test_disabled_tracer_is_a_noop(self, tmp_path):
        tracer = Tracer()
        tracer.event("never", sim_time=1.0)
        tracer.span_record("never", 0.0)
        with tracer.span("never"):
            pass
        assert not tracer.enabled

    def test_records_meta_events_and_spans(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer()
        tracer.configure(str(path), detail="full")
        tracer.event("sim.thing", sim_time=2.5, detail=7)
        tracer.event("host.thing")
        with tracer.span("outer", label="x"):
            pass
        tracer.close()
        assert not tracer.enabled

        records = load_records(str(path))
        meta = trace_meta(records)
        assert meta["schema"] == TRACE_SCHEMA
        assert meta["detail"] == "full"
        assert meta["pid"] == os.getpid()

        by_name = {r.get("name"): r for r in records}
        assert by_name["sim.thing"]["sim_ts"] == 2.5
        assert by_name["sim.thing"]["args"] == {"detail": 7}
        assert "sim_ts" not in by_name["host.thing"]
        span = by_name["outer"]
        assert span["type"] == "span"
        assert span["wall_dur"] >= 0.0
        assert span["args"] == {"label": "x"}

    def test_unwritable_path_fails_fast(self, tmp_path):
        tracer = Tracer()
        with pytest.raises(TraceConfigError, match="not writable"):
            tracer.configure(str(tmp_path / "no" / "such" / "dir" / "t.jsonl"))
        assert not tracer.enabled
        with pytest.raises(TraceConfigError, match="detail"):
            tracer.configure(str(tmp_path / "t.jsonl"), detail="verbose")

    def test_worker_trace_path_suffixes_the_stem(self):
        assert worker_trace_path("trace.jsonl", 42) == "trace.w42.jsonl"
        assert worker_trace_path("/a/b/t.jsonl", 7) == "/a/b/t.w7.jsonl"
        assert worker_trace_path("bare", 9) == "bare.w9.jsonl"

    @pytest.fixture
    def clean_trace_env(self, monkeypatch):
        for var in (TRACE_ENV, TRACE_DETAIL_ENV, TRACE_OWNER_ENV):
            monkeypatch.delenv(var, raising=False)
        yield monkeypatch
        TRACER.close()

    def test_trace_from_env_unset_is_noop(self, clean_trace_env):
        assert trace_from_env() is False
        assert not TRACER.enabled

    def test_trace_from_env_owner_uses_the_path_verbatim(
        self, clean_trace_env, tmp_path
    ):
        path = tmp_path / "t.jsonl"
        clean_trace_env.setenv(TRACE_ENV, str(path))
        clean_trace_env.setenv(TRACE_DETAIL_ENV, "full")
        assert trace_from_env() is True
        assert TRACER.path == str(path)
        assert TRACER.full
        assert os.environ[TRACE_OWNER_ENV] == str(os.getpid())
        # Idempotent: a second call does not re-open (and truncate) the sink.
        TRACER.event("probe")
        assert trace_from_env() is True
        TRACER.close()
        assert any(
            r.get("name") == "probe" for r in load_records(str(path))
        )

    def test_trace_from_env_worker_writes_a_per_pid_sibling(
        self, clean_trace_env, tmp_path
    ):
        path = tmp_path / "t.jsonl"
        clean_trace_env.setenv(TRACE_ENV, str(path))
        # Pretend another process owns the path: we are a pool worker.
        clean_trace_env.setenv(TRACE_OWNER_ENV, str(os.getpid() + 1))
        assert trace_from_env() is True
        assert TRACER.path == worker_trace_path(str(path), os.getpid())
        assert not path.exists()

    def test_trace_from_env_reroutes_a_fork_inherited_sink(
        self, clean_trace_env, tmp_path
    ):
        """Fork-started pool workers inherit the parent's *enabled* tracer;
        trace_from_env must close the inherited sink and re-route to the
        per-pid sibling instead of interleaving with the parent."""
        path = tmp_path / "t.jsonl"
        configure_tracing(str(path))
        parent_pid = os.getpid() + 1
        # Pretend this process is a fork of `parent_pid`: the tracer is
        # enabled but stamped with the (fake) parent's pid, and the
        # environment names the parent as the owner.
        TRACER._pid = parent_pid
        clean_trace_env.setenv(TRACE_OWNER_ENV, str(parent_pid))
        assert trace_from_env() is True
        assert TRACER.path == worker_trace_path(str(path), os.getpid())

    def test_configure_tracing_exports_the_environment(
        self, clean_trace_env, tmp_path
    ):
        path = tmp_path / "t.jsonl"
        configure_tracing(str(path), detail="full")
        assert os.environ[TRACE_ENV] == str(path)
        assert os.environ[TRACE_DETAIL_ENV] == "full"
        assert os.environ[TRACE_OWNER_ENV] == str(os.getpid())
        assert TRACER.enabled and TRACER.full


# ---------------------------------------------------------------------- #
# export: Chrome trace events and summaries
# ---------------------------------------------------------------------- #
def write_trace(tmp_path):
    path = tmp_path / "t.jsonl"
    tracer = Tracer()
    tracer.configure(str(path), detail="full")
    tracer.event("fault.link-failure", sim_time=1.5, link=("a", "b"))
    tracer.event("executor.retry", attempt=1)
    with tracer.span("swarm.broadcast", root="a"):
        pass
    tracer.close()
    return path


class TestExport:
    def test_chrome_export_has_required_keys(self, tmp_path):
        path = write_trace(tmp_path)
        out = tmp_path / "t.chrome.json"
        count = export_chrome(str(path), str(out))
        chrome = json.loads(out.read_text())
        assert set(chrome) == {"traceEvents", "displayTimeUnit"}
        events = chrome["traceEvents"]
        assert len(events) == count
        for event in events:
            assert event["ph"] in ("M", "X", "i")
            assert "pid" in event
            if event["ph"] != "M":
                assert "ts" in event

    def test_chrome_clock_routing(self, tmp_path):
        records = load_records(str(write_trace(tmp_path)))
        events = to_chrome(records)["traceEvents"]
        by_name = {e["name"]: e for e in events if e["ph"] != "M"}
        # Sim-time events ride the sim track, in simulation microseconds.
        sim = by_name["fault.link-failure"]
        assert (sim["ph"], sim["tid"], sim["ts"]) == ("i", 1, 1.5e6)
        # Host-side events and spans ride the wall track.
        assert by_name["executor.retry"]["tid"] == 0
        span = by_name["swarm.broadcast"]
        assert span["ph"] == "X" and span["tid"] == 0 and "dur" in span

    def test_summarize_counts_and_span_seconds(self, tmp_path):
        records = load_records(str(write_trace(tmp_path)))
        summary = summarize(records)
        assert summary["fault.link-failure"]["count"] == 1
        assert summary["executor.retry"]["type"] == "event"
        assert summary["swarm.broadcast"]["wall_s"] >= 0.0
        assert "meta" not in summary

    def test_load_records_reports_path_and_line(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type":"meta"}\nnot json\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            load_records(str(bad))


# ---------------------------------------------------------------------- #
# CLI: fail-fast and telemetry surfaces
# ---------------------------------------------------------------------- #
class TestCli:
    def _repro(self, *argv, cwd=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
        for var in (TRACE_ENV, TRACE_DETAIL_ENV, TRACE_OWNER_ENV):
            env.pop(var, None)
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True,
            text=True,
            env=env,
            cwd=cwd,
        )

    def test_unwritable_trace_path_exits_fast(self, tmp_path):
        proc = self._repro(
            "run",
            "B-G-T",
            "--iterations",
            "1",
            "--trace",
            str(tmp_path / "no" / "dir" / "t.jsonl"),
        )
        assert proc.returncode == 2
        assert "not writable" in proc.stderr

    def test_metrics_subcommand_lists_the_catalogue(self, tmp_path):
        out = tmp_path / "catalogue.json"
        proc = self._repro("metrics", "--json", str(out))
        assert proc.returncode == 0
        assert "swarm.broadcasts" in proc.stdout
        listing = json.loads(out.read_text())["catalogue"]
        by_name = {row["name"]: row for row in listing}
        assert by_name["swarm.broadcasts"]["kind"] == "counter"
        assert set(by_name) == set(METRIC_CATALOGUE)

    def test_trace_export_requires_chrome_flag(self, tmp_path):
        path = write_trace(tmp_path)
        proc = self._repro("trace", "export", str(path))
        assert proc.returncode == 2
        proc = self._repro("trace", "export", str(path), "--chrome")
        assert proc.returncode == 0
        chrome = json.loads((tmp_path / "t.jsonl.chrome.json").read_text())
        assert chrome["traceEvents"]

    def test_trace_summary_on_missing_file_exits_cleanly(self, tmp_path):
        proc = self._repro("trace", "summary", str(tmp_path / "absent.jsonl"))
        assert proc.returncode == 2
