"""Edge cases of the anchored fluid engine under multi-tenant transitions.

Covers the corners the workload engine leans on:
``FluidNetwork.next_transition``/``advance_to`` with (effectively)
zero-rate flows, simultaneous completions, sub-clock-tick residuals, and a
capacity change landing exactly on a predicted transition time.
"""

import numpy as np
import pytest

from repro.network.fluid import FluidNetwork
from repro.network.topology import MBPS


class TestZeroRateFlows:
    def test_next_transition_none_when_nothing_moves(self, dumbbell_topology):
        net = FluidNetwork(dumbbell_topology)
        # A positive-but-negligible rate cap: the allocator honours it, the
        # transition predictor must treat the flow as stalled, not schedule
        # a completion aeons away.
        net.start_transfer("left-0", "right-0", 1e6, rate_cap=1e-13)
        assert net.next_transition() is None

    def test_advance_to_credits_nothing_to_stalled_flows(self, dumbbell_topology):
        net = FluidNetwork(dumbbell_topology)
        stalled = net.start_transfer("left-0", "right-0", 1e6, rate_cap=1e-13)
        finished = net.advance_to(100.0)
        assert finished == []
        assert net.now == 100.0
        assert stalled.transferred == pytest.approx(0.0, abs=1e-9)
        assert not stalled.done

    def test_stalled_flow_resumes_when_a_real_one_joins(self, dumbbell_topology):
        net = FluidNetwork(dumbbell_topology)
        stalled = net.start_transfer("left-0", "right-0", 1e6, rate_cap=1e-13)
        net.advance_to(10.0)
        mover = net.start_transfer("left-1", "left-2", 1e6)
        transition = net.next_transition()
        assert transition is not None
        net.advance_to(transition)
        assert mover.done
        assert not stalled.done


class TestSimultaneousCompletions:
    def test_equal_flows_finish_together_in_slot_order(self, dumbbell_topology):
        net = FluidNetwork(dumbbell_topology)
        first = net.start_transfer("left-0", "left-1", 5e6)
        second = net.start_transfer("right-0", "right-1", 5e6)
        transition = net.next_transition()
        finished = net.advance_to(transition + 1e-6)
        assert {t.transfer_id for t in finished} == {
            first.transfer_id, second.transfer_id
        }
        # Deterministic completion order (slot order) and identical times.
        assert [t.transfer_id for t in finished] == sorted(
            t.transfer_id for t in finished
        )
        assert finished[0].finish_time == finished[1].finish_time
        assert all(t.done for t in finished)

    def test_sub_tick_residual_completes_instead_of_spinning(self, dumbbell_topology):
        """A residual that would drain within one clock ulp is done now.

        Regression for the multi-tenant deadlock: another tenant's
        completion materializes the byte state a hair before a flow's own
        finish, leaving a femto-residual that no representable clock
        advance could drain."""
        net = FluidNetwork(dumbbell_topology)
        net.advance_to(1.0)
        transfer = net.start_transfer("left-0", "left-1", 1e6)
        slot = transfer._slot
        net._materialize(net.now)
        # Pin an artificial residual far below rate x ulp(clock).
        net._remaining[slot] = 5e-9
        finished = net.advance_to(1.0 + 1e-9)
        assert transfer in finished
        assert transfer.done


class TestCapacityChangeTransitions:
    def test_change_landing_exactly_on_predicted_transition(self, dumbbell_topology):
        net = FluidNetwork(dumbbell_topology)
        short = net.start_transfer("left-0", "left-1", 1e6)
        long = net.start_transfer("left-2", "right-0", 50e6)
        predicted = net.next_transition()
        finished = net.advance_to(predicted)
        assert short in finished
        moved_before = long.transferred
        # The drift event lands on the very transition instant: the byte
        # state must be settled under the old rates before the new capacity
        # takes effect.
        net.set_link_capacity("bottleneck", 5 * MBPS)
        assert long.transferred == pytest.approx(moved_before, rel=1e-12)
        remaining = long.size - moved_before
        transition = net.next_transition()
        assert transition == pytest.approx(
            predicted + remaining / (5 * MBPS), rel=1e-9
        )
        net.advance_to(transition)
        assert long.done

    def test_capacity_change_is_a_counted_transition(self, dumbbell_topology):
        net = FluidNetwork(dumbbell_topology)
        net.start_transfer("left-0", "right-0", 1e6)
        before = net.transitions
        net.set_link_capacity("bottleneck", 8 * MBPS)
        assert net.transitions == before + 1
        # Setting the same value again is a no-op, not a transition.
        net.set_link_capacity("bottleneck", 8 * MBPS)
        assert net.transitions == before + 1

    def test_capacity_raise_speeds_in_flight_completion(self, dumbbell_topology):
        net = FluidNetwork(dumbbell_topology)
        transfer = net.start_transfer("left-0", "right-0", 10e6)
        slow_eta = net.next_transition()
        net.advance_to(slow_eta / 2)
        net.set_link_capacity("bottleneck", 100 * MBPS)
        fast_eta = net.next_transition()
        assert fast_eta < slow_eta
        net.advance_to(fast_eta)
        assert transfer.done
        assert transfer.finish_time == pytest.approx(fast_eta)

    def test_unknown_link_and_bad_capacity_rejected(self, dumbbell_topology):
        net = FluidNetwork(dumbbell_topology)
        with pytest.raises(KeyError, match="unknown link"):
            net.set_link_capacity("nope", 1 * MBPS)
        with pytest.raises(ValueError, match="positive"):
            net.set_link_capacity("bottleneck", 0.0)
        assert net.link_capacity("bottleneck") == 10 * MBPS


class TestRetainCompleted:
    def test_completed_list_can_be_disabled(self, dumbbell_topology):
        net = FluidNetwork(dumbbell_topology)
        net.retain_completed = False
        seen = []
        net.start_transfer("left-0", "left-1", 1e6, on_complete=seen.append)
        net.run_until_complete()
        assert len(seen) == 1
        assert net.completed == []
        assert seen[0].done
