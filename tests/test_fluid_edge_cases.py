"""Edge cases of the anchored fluid engine under multi-tenant transitions.

Covers the corners the workload engine leans on:
``FluidNetwork.next_transition``/``advance_to`` with (effectively)
zero-rate flows, simultaneous completions, sub-clock-tick residuals, and a
capacity change landing exactly on a predicted transition time.
"""

import numpy as np
import pytest

from repro.network.fluid import FluidNetwork
from repro.network.topology import MBPS


class TestZeroRateFlows:
    def test_next_transition_none_when_nothing_moves(self, dumbbell_topology):
        net = FluidNetwork(dumbbell_topology)
        # A positive-but-negligible rate cap: the allocator honours it, the
        # transition predictor must treat the flow as stalled, not schedule
        # a completion aeons away.
        net.start_transfer("left-0", "right-0", 1e6, rate_cap=1e-13)
        assert net.next_transition() is None

    def test_advance_to_credits_nothing_to_stalled_flows(self, dumbbell_topology):
        net = FluidNetwork(dumbbell_topology)
        stalled = net.start_transfer("left-0", "right-0", 1e6, rate_cap=1e-13)
        finished = net.advance_to(100.0)
        assert finished == []
        assert net.now == 100.0
        assert stalled.transferred == pytest.approx(0.0, abs=1e-9)
        assert not stalled.done

    def test_stalled_flow_resumes_when_a_real_one_joins(self, dumbbell_topology):
        net = FluidNetwork(dumbbell_topology)
        stalled = net.start_transfer("left-0", "right-0", 1e6, rate_cap=1e-13)
        net.advance_to(10.0)
        mover = net.start_transfer("left-1", "left-2", 1e6)
        transition = net.next_transition()
        assert transition is not None
        net.advance_to(transition)
        assert mover.done
        assert not stalled.done


class TestSimultaneousCompletions:
    def test_equal_flows_finish_together_in_slot_order(self, dumbbell_topology):
        net = FluidNetwork(dumbbell_topology)
        first = net.start_transfer("left-0", "left-1", 5e6)
        second = net.start_transfer("right-0", "right-1", 5e6)
        transition = net.next_transition()
        finished = net.advance_to(transition + 1e-6)
        assert {t.transfer_id for t in finished} == {
            first.transfer_id, second.transfer_id
        }
        # Deterministic completion order (slot order) and identical times.
        assert [t.transfer_id for t in finished] == sorted(
            t.transfer_id for t in finished
        )
        assert finished[0].finish_time == finished[1].finish_time
        assert all(t.done for t in finished)

    def test_sub_tick_residual_completes_instead_of_spinning(self, dumbbell_topology):
        """A residual that would drain within one clock ulp is done now.

        Regression for the multi-tenant deadlock: another tenant's
        completion materializes the byte state a hair before a flow's own
        finish, leaving a femto-residual that no representable clock
        advance could drain."""
        net = FluidNetwork(dumbbell_topology)
        net.advance_to(1.0)
        transfer = net.start_transfer("left-0", "left-1", 1e6)
        slot = transfer._slot
        net._materialize(net.now)
        # Pin an artificial residual far below rate x ulp(clock).
        net._remaining[slot] = 5e-9
        finished = net.advance_to(1.0 + 1e-9)
        assert transfer in finished
        assert transfer.done


class TestCapacityChangeTransitions:
    def test_change_landing_exactly_on_predicted_transition(self, dumbbell_topology):
        net = FluidNetwork(dumbbell_topology)
        short = net.start_transfer("left-0", "left-1", 1e6)
        long = net.start_transfer("left-2", "right-0", 50e6)
        predicted = net.next_transition()
        finished = net.advance_to(predicted)
        assert short in finished
        moved_before = long.transferred
        # The drift event lands on the very transition instant: the byte
        # state must be settled under the old rates before the new capacity
        # takes effect.
        net.set_link_capacity("bottleneck", 5 * MBPS)
        assert long.transferred == pytest.approx(moved_before, rel=1e-12)
        remaining = long.size - moved_before
        transition = net.next_transition()
        assert transition == pytest.approx(
            predicted + remaining / (5 * MBPS), rel=1e-9
        )
        net.advance_to(transition)
        assert long.done

    def test_capacity_change_is_a_counted_transition(self, dumbbell_topology):
        net = FluidNetwork(dumbbell_topology)
        net.start_transfer("left-0", "right-0", 1e6)
        before = net.transitions
        net.set_link_capacity("bottleneck", 8 * MBPS)
        assert net.transitions == before + 1
        # Setting the same value again is a no-op, not a transition.
        net.set_link_capacity("bottleneck", 8 * MBPS)
        assert net.transitions == before + 1

    def test_capacity_raise_speeds_in_flight_completion(self, dumbbell_topology):
        net = FluidNetwork(dumbbell_topology)
        transfer = net.start_transfer("left-0", "right-0", 10e6)
        slow_eta = net.next_transition()
        net.advance_to(slow_eta / 2)
        net.set_link_capacity("bottleneck", 100 * MBPS)
        fast_eta = net.next_transition()
        assert fast_eta < slow_eta
        net.advance_to(fast_eta)
        assert transfer.done
        assert transfer.finish_time == pytest.approx(fast_eta)

    def test_unknown_link_and_bad_capacity_rejected(self, dumbbell_topology):
        net = FluidNetwork(dumbbell_topology)
        with pytest.raises(KeyError, match="unknown link"):
            net.set_link_capacity("nope", 1 * MBPS)
        with pytest.raises(ValueError, match="positive"):
            net.set_link_capacity("bottleneck", 0.0)
        assert net.link_capacity("bottleneck") == 10 * MBPS


class TestFailureOnPredictedTransition:
    def test_failure_landing_exactly_on_predicted_transition(
        self, dumbbell_topology
    ):
        """A link *failure* (capacity collapse to a positive residual) landing
        on the very instant of a predicted completion: bytes are settled
        under the old rates first, the survivor then drains at the residual
        rate."""
        net = FluidNetwork(dumbbell_topology)
        short = net.start_transfer("left-0", "left-1", 1e6)
        long = net.start_transfer("left-2", "right-0", 50e6)
        predicted = net.next_transition()
        finished = net.advance_to(predicted)
        assert short in finished
        moved_before = long.transferred
        residual_rate = 1e-3 * net.link_capacity("bottleneck")
        net.set_link_capacity("bottleneck", residual_rate)
        assert long.transferred == pytest.approx(moved_before, rel=1e-12)
        transition = net.next_transition()
        assert transition == pytest.approx(
            predicted + (long.size - moved_before) / residual_rate, rel=1e-9
        )

    def _broadcast_under_failure(self, topology, stepping, fail_time=None):
        """Fingerprint a workload broadcast; at ``fail_time`` the bottleneck
        collapses to half capacity.  With ``fail_time=None``, instead record
        every transition time the engine's predictor returns."""
        from repro.bittorrent.swarm import SwarmConfig
        from repro.bittorrent.torrent import TorrentMeta
        from repro.workloads import BroadcastActor, WorkloadEngine
        from repro.workloads.actors import WorkloadActor

        class ScriptedFailure(WorkloadActor):
            kind = "link-failure"

            def __init__(self, label, time, link):
                super().__init__(label)
                self.time, self.link = time, link

            def start(self):
                self.engine.schedule(self, self.time, self._fail)

            def _fail(self):
                fluid = self.engine.fluid
                fluid.set_link_capacity(
                    self.link, 0.1 * fluid.link_capacity(self.link)
                )

        meta = TorrentMeta(name="edge", fragment_size=16384, num_fragments=40)
        config = SwarmConfig(torrent=meta, stepping=stepping)
        engine = WorkloadEngine(topology)
        primary = engine.add(
            BroadcastActor("primary", config, rng=np.random.default_rng(17))
        )
        predicted = []
        if fail_time is None:
            original = engine.fluid.next_transition

            def spy():
                t = original()
                if t is not None:
                    predicted.append(t)
                return t

            engine.fluid.next_transition = spy
        else:
            engine.add(ScriptedFailure("blackout", fail_time, "bottleneck"))
        engine.run()
        result = primary.result
        return (
            tuple(result.fragments.labels),
            result.fragments.counts.tobytes(),
            result.duration,
            predicted,
        )

    def test_fixed_and_event_agree_when_failure_hits_a_transition(
        self, dumbbell_topology
    ):
        """Fixed and event stepping stay bit-identical when a link failure
        lands *exactly* on a predicted fluid transition — the engine's
        tie-break (settle completions, then run the agenda event) must be
        the same in both modes."""
        # Probe run: harvest the exact transition instants the predictor
        # announces mid-broadcast, then aim the failure at one of them.
        probe = self._broadcast_under_failure(dumbbell_topology, "fixed")
        probe_duration, predicted = probe[2], probe[3]
        mid_flight = sorted(t for t in predicted if 0 < t < probe_duration)
        assert mid_flight, "broadcast produced no mid-flight transitions"
        fail_time = mid_flight[len(mid_flight) // 4]

        fixed = self._broadcast_under_failure(
            dumbbell_topology, "fixed", fail_time=fail_time
        )
        event = self._broadcast_under_failure(
            dumbbell_topology, "event", fail_time=fail_time
        )
        assert fixed[:3] == event[:3]
        # And the failure really happened: the degraded broadcast's matrix
        # or duration differs from the healthy probe's.
        assert fixed[:3] != probe[:3]


class TestRetainCompleted:
    def test_completed_list_can_be_disabled(self, dumbbell_topology):
        net = FluidNetwork(dumbbell_topology)
        net.retain_completed = False
        seen = []
        net.start_transfer("left-0", "left-1", 1e6, on_complete=seen.append)
        net.run_until_complete()
        assert len(seen) == 1
        assert net.completed == []
        assert seen[0].done
