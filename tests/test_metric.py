"""Unit tests for the fragment metric (Eq. 1-2) and its graph conversion."""

import numpy as np
import pytest

from repro.bittorrent.instrumentation import FragmentMatrix
from repro.tomography.metric import (
    EdgeMetric,
    aggregate_mean,
    edge_weight_history,
    local_remote_split,
    metric_graph,
    single_run_metric,
)


def make_matrices():
    m1 = FragmentMatrix(["a", "b", "c"])
    m1.record("a", "b", 10)
    m1.record("b", "a", 2)
    m1.record("c", "a", 4)
    m2 = FragmentMatrix(["a", "b", "c"])
    m2.record("a", "b", 6)
    m2.record("c", "b", 8)
    return [m1, m2]


class TestEdgeMetric:
    def test_aggregate_mean_implements_eq2(self):
        metric = aggregate_mean(make_matrices())
        assert metric.iterations == 2
        assert metric.weight("a", "b") == pytest.approx((10 + 2 + 6) / 2.0)
        assert metric.weight("a", "c") == pytest.approx(4 / 2.0)
        assert metric.weight("b", "c") == pytest.approx(8 / 2.0)

    def test_single_run_metric_is_eq1(self):
        metric = single_run_metric(make_matrices()[0])
        assert metric.weight("a", "b") == pytest.approx(12.0)
        assert metric.iterations == 1

    def test_weight_is_symmetric(self):
        metric = aggregate_mean(make_matrices())
        assert metric.weight("a", "b") == metric.weight("b", "a")

    def test_unknown_host_raises(self):
        metric = aggregate_mean(make_matrices())
        with pytest.raises(KeyError):
            metric.weight("a", "zzz")

    def test_edges_of_excludes_self(self):
        metric = aggregate_mean(make_matrices())
        edges = metric.edges_of("a")
        assert set(edges) == {"b", "c"}

    def test_counts_and_totals(self):
        metric = aggregate_mean(make_matrices())
        assert metric.nonzero_edge_count() == 3
        assert metric.total_weight() == pytest.approx(
            metric.weight("a", "b") + metric.weight("a", "c") + metric.weight("b", "c")
        )

    def test_mismatched_labels_rejected(self):
        other = FragmentMatrix(["a", "b", "x"])
        with pytest.raises(ValueError):
            aggregate_mean([make_matrices()[0], other])
        with pytest.raises(ValueError):
            aggregate_mean([])

    def test_validation_of_direct_construction(self):
        with pytest.raises(ValueError):
            EdgeMetric(labels=("a", "b"), weights=np.zeros((3, 3)), iterations=1)
        with pytest.raises(ValueError):
            EdgeMetric(
                labels=("a", "b"),
                weights=np.array([[0.0, 1.0], [2.0, 0.0]]),
                iterations=1,
            )
        with pytest.raises(ValueError):
            EdgeMetric(labels=("a", "b"), weights=np.zeros((2, 2)), iterations=0)
        with pytest.raises(ValueError):
            EdgeMetric(
                labels=("a", "b"),
                weights=np.array([[0.0, -1.0], [-1.0, 0.0]]),
                iterations=1,
            )


class TestMetricGraph:
    def test_graph_has_all_hosts_and_positive_edges(self):
        metric = aggregate_mean(make_matrices())
        graph = metric_graph(metric)
        assert set(graph.nodes()) == {"a", "b", "c"}
        assert graph.edge_weight("a", "b") == pytest.approx(metric.weight("a", "b"))
        assert graph.number_of_edges() == 3

    def test_zero_edges_dropped_by_default(self):
        matrix = FragmentMatrix(["a", "b", "c"])
        matrix.record("a", "b", 1)
        graph = metric_graph(aggregate_mean([matrix]))
        assert not graph.has_edge("a", "c")
        dense = metric_graph(aggregate_mean([matrix]), drop_zero=False)
        assert dense.has_edge("a", "c")

    def test_edge_weight_history(self):
        matrices = make_matrices()
        history = edge_weight_history(matrices, "a", "b")
        assert history == [pytest.approx(12.0), pytest.approx(6.0)]
        with pytest.raises(ValueError):
            edge_weight_history([], "a", "b")

    def test_local_remote_split(self):
        metric = aggregate_mean(make_matrices())
        local, remote = local_remote_split(metric, "a", ["b"])
        assert set(local) == {"b"}
        assert set(remote) == {"c"}
        with pytest.raises(KeyError):
            local_remote_split(metric, "zzz", ["b"])
