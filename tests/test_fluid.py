"""Unit tests for the fluid transfer engine."""

import pytest

from repro.network.fluid import FluidNetwork
from repro.network.topology import MBPS


class TestSingleTransfer:
    def test_transfer_time_matches_bottleneck(self, dumbbell_topology):
        network = FluidNetwork(dumbbell_topology)
        # 10 MB over a 100 Mb/s access path = 10e6 / 12.5e6 = 0.8 s
        duration = network.transfer_time("left-0", "left-1", 10e6)
        assert duration == pytest.approx(10e6 / (100 * MBPS), rel=1e-6)

    def test_transfer_across_bottleneck_is_slower(self, dumbbell_topology):
        network = FluidNetwork(dumbbell_topology)
        duration = network.transfer_time("left-0", "right-0", 10e6)
        assert duration == pytest.approx(10e6 / (10 * MBPS), rel=1e-6)

    def test_rate_cap_limits_single_flow(self, dumbbell_topology):
        network = FluidNetwork(dumbbell_topology)
        transfer = network.start_transfer("left-0", "left-1", 10e6, rate_cap=1e6)
        network.run_until_complete()
        assert transfer.finish_time == pytest.approx(10.0, rel=1e-6)

    def test_completion_callback_fires(self, dumbbell_topology):
        network = FluidNetwork(dumbbell_topology)
        finished = []
        network.start_transfer(
            "left-0", "left-1", 1e6, on_complete=lambda t: finished.append(t.transfer_id)
        )
        network.run_until_complete()
        assert len(finished) == 1

    def test_invalid_transfers_rejected(self, dumbbell_topology):
        network = FluidNetwork(dumbbell_topology)
        with pytest.raises(ValueError):
            network.start_transfer("left-0", "left-1", 0.0)
        with pytest.raises(ValueError):
            network.start_transfer("sw-left", "left-1", 1e6)

    def test_transfer_time_requires_idle_network(self, dumbbell_topology):
        network = FluidNetwork(dumbbell_topology)
        network.start_transfer("left-0", "left-1", 1e6)
        with pytest.raises(RuntimeError):
            network.transfer_time("left-1", "left-2", 1e6)


class TestSharing:
    def test_two_flows_share_bottleneck(self, dumbbell_topology):
        network = FluidNetwork(dumbbell_topology)
        t1 = network.start_transfer("left-0", "right-0", 5e6)
        t2 = network.start_transfer("left-1", "right-1", 5e6)
        network.run_until_complete()
        # Both share the 10 Mb/s bottleneck -> each gets half -> 8 s.
        expected = 5e6 / (5 * MBPS)
        assert t1.finish_time == pytest.approx(expected, rel=1e-6)
        assert t2.finish_time == pytest.approx(expected, rel=1e-6)

    def test_intra_cluster_flow_unaffected_by_bottleneck_traffic(self, dumbbell_topology):
        network = FluidNetwork(dumbbell_topology)
        cross = network.start_transfer("left-0", "right-0", 5e6)
        local = network.start_transfer("left-1", "left-2", 5e6)
        network.run_until_complete()
        assert local.finish_time == pytest.approx(5e6 / (100 * MBPS), rel=1e-6)
        assert cross.finish_time == pytest.approx(5e6 / (10 * MBPS), rel=1e-6)

    def test_completion_frees_bandwidth(self, dumbbell_topology):
        network = FluidNetwork(dumbbell_topology)
        short = network.start_transfer("left-0", "right-0", 1e6)
        long = network.start_transfer("left-1", "right-1", 2e6)
        network.run_until_complete()
        # Phase 1: both at 5 Mb/s until short finishes at t=1.6 (1e6/0.625e6).
        assert short.finish_time == pytest.approx(1e6 / (5 * MBPS), rel=1e-6)
        # Long has 2e6 - 1e6 = 1e6 left, then runs at full 10 Mb/s.
        expected_long = short.finish_time + 1e6 / (10 * MBPS)
        assert long.finish_time == pytest.approx(expected_long, rel=1e-6)

    def test_cancel_removes_flow_and_frees_capacity(self, dumbbell_topology):
        network = FluidNetwork(dumbbell_topology)
        doomed = network.start_transfer("left-0", "right-0", 100e6)
        survivor = network.start_transfer("left-1", "right-1", 1e6)
        network.advance(0.1)
        network.cancel_transfer(doomed)
        network.run_until_complete()
        assert doomed.transfer_id not in [t.transfer_id for t in network.completed]
        assert survivor.done


class TestAdvance:
    def test_advance_accumulates_bytes_at_allocated_rate(self, dumbbell_topology):
        network = FluidNetwork(dumbbell_topology)
        transfer = network.start_transfer("left-0", "left-1", 100e6)
        network.advance(0.5)
        assert transfer.transferred == pytest.approx(0.5 * 100 * MBPS, rel=1e-6)
        assert not transfer.done

    def test_advance_handles_mid_step_completion(self, dumbbell_topology):
        network = FluidNetwork(dumbbell_topology)
        small = network.start_transfer("left-0", "left-1", 1e6)
        finished = network.advance(10.0)
        assert [t.transfer_id for t in finished] == [small.transfer_id]
        assert small.finish_time == pytest.approx(1e6 / (100 * MBPS), rel=1e-6)
        assert network.now == pytest.approx(10.0)

    def test_advance_with_negative_dt_raises(self, dumbbell_topology):
        network = FluidNetwork(dumbbell_topology)
        with pytest.raises(ValueError):
            network.advance(-1.0)

    def test_advance_without_transfers_moves_clock(self, dumbbell_topology):
        network = FluidNetwork(dumbbell_topology)
        network.advance(2.0)
        assert network.now == pytest.approx(2.0)

    def test_rates_reported_for_active_transfers(self, dumbbell_topology):
        network = FluidNetwork(dumbbell_topology)
        t1 = network.start_transfer("left-0", "right-0", 50e6)
        t2 = network.start_transfer("left-1", "right-1", 50e6)
        rates = network.rates()
        assert rates[t1.transfer_id] == pytest.approx(5 * MBPS, rel=1e-6)
        assert rates[t2.transfer_id] == pytest.approx(5 * MBPS, rel=1e-6)
