"""Unit tests for shortest-path routing."""

import pytest

from repro.network.routing import RoutingTable
from repro.network.topology import MBPS, Host, Switch, Topology, TopologyError


class TestRouting:
    def test_route_within_cluster_is_two_hops(self, dumbbell_topology):
        routing = RoutingTable(dumbbell_topology)
        route = routing.route("left-0", "left-1")
        assert len(route) == 2
        assert all("sw-left" in name for name in route)

    def test_route_across_bottleneck(self, dumbbell_topology):
        routing = RoutingTable(dumbbell_topology)
        route = routing.route("left-0", "right-0")
        assert "bottleneck" in route
        assert len(route) == 3

    def test_route_to_self_is_empty(self, dumbbell_topology):
        routing = RoutingTable(dumbbell_topology)
        assert routing.route("left-0", "left-0") == []

    def test_routes_are_symmetric_in_length(self, dumbbell_topology):
        routing = RoutingTable(dumbbell_topology)
        forward = routing.route("left-0", "right-2")
        backward = routing.route("right-2", "left-0")
        assert len(forward) == len(backward)
        assert set(forward) == set(backward)

    def test_unknown_source_raises(self, dumbbell_topology):
        routing = RoutingTable(dumbbell_topology)
        with pytest.raises(TopologyError):
            routing.route("ghost", "left-0")

    def test_hosts_do_not_forward_transit_traffic(self):
        # a -- b -- c where b is a *host*: no route a->c may pass through b.
        topo = Topology()
        for name in ("a", "b", "c"):
            topo.add_host(Host(name=name))
        topo.add_link("a", "b", capacity=10 * MBPS)
        topo.add_link("b", "c", capacity=10 * MBPS)
        routing = RoutingTable(topo)
        with pytest.raises(TopologyError):
            routing.route("a", "c")
        # Direct neighbours still reachable.
        assert len(routing.route("a", "b")) == 1

    def test_bottleneck_capacity(self, line_topology):
        routing = RoutingTable(line_topology)
        assert routing.bottleneck_capacity("a", "c") == pytest.approx(25 * MBPS)
        assert routing.bottleneck_capacity("a", "b") == pytest.approx(50 * MBPS)
        assert routing.bottleneck_capacity("a", "a") == float("inf")

    def test_path_latency_accumulates(self, dumbbell_topology):
        routing = RoutingTable(dumbbell_topology)
        intra = routing.path_latency("left-0", "left-1")
        inter = routing.path_latency("left-0", "right-0")
        assert inter > intra > 0

    def test_shared_links_detects_common_bottleneck(self, dumbbell_topology):
        routing = RoutingTable(dumbbell_topology)
        shared = routing.shared_links(("left-0", "right-0"), ("left-1", "right-1"))
        assert "bottleneck" in shared
        disjoint = routing.shared_links(("left-0", "left-1"), ("right-0", "right-1"))
        assert disjoint == []

    def test_prefers_lower_latency_path(self):
        topo = Topology()
        topo.add_host(Host(name="a"))
        topo.add_host(Host(name="b"))
        topo.add_switch(Switch(name="fast"))
        topo.add_switch(Switch(name="slow1"))
        topo.add_switch(Switch(name="slow2"))
        topo.add_link("a", "fast", capacity=10 * MBPS, latency=1e-5)
        topo.add_link("fast", "b", capacity=10 * MBPS, latency=1e-5)
        topo.add_link("a", "slow1", capacity=10 * MBPS, latency=1e-3)
        topo.add_link("slow1", "slow2", capacity=10 * MBPS, latency=1e-3)
        topo.add_link("slow2", "b", capacity=10 * MBPS, latency=1e-3)
        routing = RoutingTable(topo)
        route = routing.route("a", "b")
        assert len(route) == 2
        assert all("fast" in name for name in route)

    def test_grid5000_routes_use_renater_for_inter_site(self, two_site_topology):
        routing = RoutingTable(two_site_topology)
        hosts = two_site_topology.host_names
        grenoble = [h for h in hosts if h.startswith("grenoble")]
        toulouse = [h for h in hosts if h.startswith("toulouse")]
        route = routing.route(grenoble[0], toulouse[0])
        assert any(name.startswith("renater.") for name in route)
        intra = routing.route(grenoble[0], grenoble[1])
        assert not any(name.startswith("renater.") for name in intra)
