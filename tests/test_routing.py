"""Unit tests for shortest-path routing."""

import itertools
import warnings

import pytest

from repro.network.routing import RoutingTable
from repro.network.topology import MBPS, Host, Switch, Topology, TopologyError
from repro.observability.metrics import METRICS


class TestRouting:
    def test_route_within_cluster_is_two_hops(self, dumbbell_topology):
        routing = RoutingTable(dumbbell_topology)
        route = routing.route("left-0", "left-1")
        assert len(route) == 2
        assert all("sw-left" in name for name in route)

    def test_route_across_bottleneck(self, dumbbell_topology):
        routing = RoutingTable(dumbbell_topology)
        route = routing.route("left-0", "right-0")
        assert "bottleneck" in route
        assert len(route) == 3

    def test_route_to_self_is_empty(self, dumbbell_topology):
        routing = RoutingTable(dumbbell_topology)
        assert routing.route("left-0", "left-0") == []

    def test_routes_are_symmetric_in_length(self, dumbbell_topology):
        routing = RoutingTable(dumbbell_topology)
        forward = routing.route("left-0", "right-2")
        backward = routing.route("right-2", "left-0")
        assert len(forward) == len(backward)
        assert set(forward) == set(backward)

    def test_unknown_source_raises(self, dumbbell_topology):
        routing = RoutingTable(dumbbell_topology)
        with pytest.raises(TopologyError):
            routing.route("ghost", "left-0")

    def test_hosts_do_not_forward_transit_traffic(self):
        # a -- b -- c where b is a *host*: no route a->c may pass through b.
        topo = Topology()
        for name in ("a", "b", "c"):
            topo.add_host(Host(name=name))
        topo.add_link("a", "b", capacity=10 * MBPS)
        topo.add_link("b", "c", capacity=10 * MBPS)
        routing = RoutingTable(topo)
        with pytest.raises(TopologyError):
            routing.route("a", "c")
        # Direct neighbours still reachable.
        assert len(routing.route("a", "b")) == 1

    def test_bottleneck_capacity(self, line_topology):
        routing = RoutingTable(line_topology)
        assert routing.bottleneck_capacity("a", "c") == pytest.approx(25 * MBPS)
        assert routing.bottleneck_capacity("a", "b") == pytest.approx(50 * MBPS)
        assert routing.bottleneck_capacity("a", "a") == float("inf")

    def test_path_latency_accumulates(self, dumbbell_topology):
        routing = RoutingTable(dumbbell_topology)
        intra = routing.path_latency("left-0", "left-1")
        inter = routing.path_latency("left-0", "right-0")
        assert inter > intra > 0

    def test_shared_links_detects_common_bottleneck(self, dumbbell_topology):
        routing = RoutingTable(dumbbell_topology)
        shared = routing.shared_links(("left-0", "right-0"), ("left-1", "right-1"))
        assert "bottleneck" in shared
        disjoint = routing.shared_links(("left-0", "left-1"), ("right-0", "right-1"))
        assert disjoint == []

    def test_prefers_lower_latency_path(self):
        topo = Topology()
        topo.add_host(Host(name="a"))
        topo.add_host(Host(name="b"))
        topo.add_switch(Switch(name="fast"))
        topo.add_switch(Switch(name="slow1"))
        topo.add_switch(Switch(name="slow2"))
        topo.add_link("a", "fast", capacity=10 * MBPS, latency=1e-5)
        topo.add_link("fast", "b", capacity=10 * MBPS, latency=1e-5)
        topo.add_link("a", "slow1", capacity=10 * MBPS, latency=1e-3)
        topo.add_link("slow1", "slow2", capacity=10 * MBPS, latency=1e-3)
        topo.add_link("slow2", "b", capacity=10 * MBPS, latency=1e-3)
        routing = RoutingTable(topo)
        route = routing.route("a", "b")
        assert len(route) == 2
        assert all("fast" in name for name in route)

    def test_grid5000_routes_use_renater_for_inter_site(self, two_site_topology):
        routing = RoutingTable(two_site_topology)
        hosts = two_site_topology.host_names
        grenoble = [h for h in hosts if h.startswith("grenoble")]
        toulouse = [h for h in hosts if h.startswith("toulouse")]
        route = routing.route(grenoble[0], toulouse[0])
        assert any(name.startswith("renater.") for name in route)
        intra = routing.route(grenoble[0], grenoble[1])
        assert not any(name.startswith("renater.") for name in intra)


# --------------------------------------------------------------------- #
# avoid-set routing: the control plane's self-healing recompute
# --------------------------------------------------------------------- #
def _without_link(topo: Topology, link_name: str) -> Topology:
    """A fresh topology identical to ``topo`` minus one link."""
    clone = Topology(name=f"{topo.name}-sans-{link_name}")
    for host in topo.hosts:
        clone.add_host(host)
    for switch in topo.switches:
        clone.add_switch(switch)
    for link in topo.links:
        if link.name != link_name:
            clone.add_link(link.a, link.b, capacity=link.capacity,
                           latency=link.latency, name=link.name)
    return clone


def _dumbbell_with_backup(dumbbell_topology: Topology) -> Topology:
    # A dormant detour: higher latency than the bottleneck, so Dijkstra
    # ignores it while the network is healthy.
    dumbbell_topology.add_link("sw-left", "sw-right", capacity=5 * MBPS,
                               latency=1e-3, name="backup")
    return dumbbell_topology


class TestAvoidSetRouting:
    def test_avoiding_unknown_link_rejected(self, dumbbell_topology):
        with pytest.raises(TopologyError, match="unknown links"):
            RoutingTable(dumbbell_topology, avoid={"no-such-link"})

    def test_avoid_equals_fresh_table_on_pruned_topology(
        self, dumbbell_topology, bordeaux_small, two_site_topology
    ):
        """The self-healing property: for every single-link failure, the
        avoid-set recompute must produce exactly the routes a fresh table
        computes on the topology with that link physically removed; pairs
        the removal disconnects raise (no fallback) or serve the nominal
        route (with fallback)."""
        for topo in (dumbbell_topology, bordeaux_small, two_site_topology):
            nominal = RoutingTable(topo)
            hosts = topo.host_names
            for link in topo.links:
                healed = RoutingTable(topo, avoid={link.name})
                pruned = RoutingTable(_without_link(topo, link.name))
                fallback = RoutingTable(topo, avoid={link.name},
                                        fallback=nominal)
                for src, dst in itertools.combinations(hosts, 2):
                    try:
                        expected = pruned.route(src, dst)
                    except TopologyError:
                        with pytest.raises(TopologyError):
                            healed.route(src, dst)
                        with warnings.catch_warnings():
                            warnings.simplefilter("ignore")
                            assert fallback.route(src, dst) == \
                                nominal.route(src, dst)
                        continue
                    assert healed.route(src, dst) == expected, \
                        (topo.name, link.name, src, dst)
                    assert link.name not in expected

    def test_detour_taken_when_primary_fails(self, dumbbell_topology):
        topo = _dumbbell_with_backup(dumbbell_topology)
        healthy = RoutingTable(topo)
        assert "bottleneck" in healthy.route("left-0", "right-0")
        assert "backup" not in healthy.route("left-0", "right-0")
        healed = RoutingTable(topo, avoid={"bottleneck"}, fallback=healthy)
        detour = healed.route("left-0", "right-0")
        assert "backup" in detour
        assert "bottleneck" not in detour

    def test_fallback_counts_and_warns_once(self, dumbbell_topology):
        nominal = RoutingTable(dumbbell_topology)
        healed = RoutingTable(dumbbell_topology, avoid={"bottleneck"},
                              fallback=nominal)
        before = METRICS.snapshot().counter("routing.fallback_hits")
        with pytest.warns(RuntimeWarning, match="serving the fallback route"):
            assert healed.route("left-0", "right-0") == \
                nominal.route("left-0", "right-0")
        # Counted on every hit, warned only on the first.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            healed.route("left-1", "right-1")
        after = METRICS.snapshot().counter("routing.fallback_hits")
        assert after - before == 2

    def test_no_fallback_raises_for_disconnected_pair(self, dumbbell_topology):
        healed = RoutingTable(dumbbell_topology, avoid={"bottleneck"})
        with pytest.raises(TopologyError, match="no route"):
            healed.route("left-0", "right-0")
        # Pairs the failure does not disconnect still route normally.
        assert len(healed.route("left-0", "left-1")) == 2
