"""Unit tests for per-peer protocol state."""

import numpy as np
import pytest

from repro.bittorrent.peer import PeerState


def make_peer(name="p", index=0, fragments=10):
    return PeerState(name=name, index=index, num_fragments=fragments)


class TestBitfield:
    def test_new_peer_has_nothing(self):
        peer = make_peer()
        assert peer.fragment_count == 0
        assert not peer.is_seed

    def test_make_seed(self):
        peer = make_peer()
        peer.make_seed()
        assert peer.is_seed
        assert peer.fragment_count == peer.num_fragments

    def test_receive_fragment(self):
        peer = make_peer()
        peer.receive_fragment(3)
        assert peer.fragment_count == 1
        assert peer.have[3]
        peer.receive_fragment(3)
        assert peer.fragment_count == 1

    def test_receive_out_of_range_rejected(self):
        peer = make_peer(fragments=5)
        with pytest.raises(IndexError):
            peer.receive_fragment(5)
        with pytest.raises(IndexError):
            peer.receive_fragment(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PeerState(name="x", index=0, num_fragments=0)
        with pytest.raises(ValueError):
            PeerState(name="x", index=0, num_fragments=4, have=np.zeros(3, dtype=bool))


class TestInterest:
    def test_interested_in_seed(self):
        a, b = make_peer("a"), make_peer("b", 1)
        b.make_seed()
        assert a.is_interested_in(b)
        assert not b.is_interested_in(a)

    def test_not_interested_in_empty_peer(self):
        a, b = make_peer("a"), make_peer("b", 1)
        assert not a.is_interested_in(b)

    def test_not_interested_when_nothing_new(self):
        a, b = make_peer("a"), make_peer("b", 1)
        b.receive_fragment(2)
        a.receive_fragment(2)
        assert not a.is_interested_in(b)

    def test_interested_when_other_has_missing_fragment(self):
        a, b = make_peer("a"), make_peer("b", 1)
        b.receive_fragment(2)
        b.receive_fragment(4)
        a.receive_fragment(2)
        assert a.is_interested_in(b)
        mask = a.missing_from(b)
        assert mask[4] and not mask[2]

    def test_seed_is_never_interested(self):
        a, b = make_peer("a"), make_peer("b", 1)
        a.make_seed()
        b.receive_fragment(0)
        assert not a.is_interested_in(b)


class TestReciprocation:
    def test_credit_and_ranking(self):
        peer = make_peer()
        peer.neighbors = {"x", "y", "z"}
        peer.credit_download("x", 100.0)
        peer.credit_download("y", 300.0)
        peer.credit_download("x", 50.0)
        assert peer.reciprocation_ranking() == ["y", "x"]

    def test_ranking_excludes_non_neighbors(self):
        peer = make_peer()
        peer.neighbors = {"x"}
        peer.credit_download("x", 10.0)
        peer.credit_download("stranger", 1000.0)
        assert peer.reciprocation_ranking() == ["x"]

    def test_reset_round_clears_counters(self):
        peer = make_peer()
        peer.neighbors = {"x"}
        peer.credit_download("x", 10.0)
        peer.reset_round()
        assert peer.reciprocation_ranking() == []
        assert peer.downloaded_this_round == {}

    def test_negative_credit_rejected(self):
        peer = make_peer()
        with pytest.raises(ValueError):
            peer.credit_download("x", -1.0)

    def test_ties_break_deterministically(self):
        peer = make_peer()
        peer.neighbors = {"a", "b"}
        peer.credit_download("b", 10.0)
        peer.credit_download("a", 10.0)
        assert peer.reciprocation_ranking() == ["a", "b"]
