"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulation.engine import Event, EventQueue, SimulationError, Simulator


class TestEventQueue:
    def test_pop_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while True:
            event = queue.pop()
            if event is None:
                break
            event.callback()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        order = []
        for label in ("first", "second", "third"):
            queue.push(5.0, lambda lbl=label: order.append(lbl))
        while (event := queue.pop()) is not None:
            event.callback()
        assert order == ["first", "second", "third"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        keep = queue.push(1.0, lambda: fired.append("keep"))
        cancel = queue.push(0.5, lambda: fired.append("cancel"))
        cancel.cancel()
        assert len(queue) == 1
        event = queue.pop()
        event.callback()
        assert fired == ["keep"]
        assert keep is event

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        early = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        early.cancel()
        assert queue.peek_time() == pytest.approx(2.0)

    def test_empty_queue_behaviour(self):
        queue = EventQueue()
        assert queue.pop() is None
        assert queue.peek_time() is None
        assert len(queue) == 0


class TestSimulator:
    def test_clock_advances_with_events(self):
        sim = Simulator()
        times = []
        sim.schedule_at(1.5, lambda: times.append(sim.now))
        sim.schedule_at(0.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5, 1.5]
        assert sim.now == pytest.approx(1.5)

    def test_schedule_in_uses_relative_delay(self):
        sim = Simulator(start_time=10.0)
        observed = []
        sim.schedule_in(2.0, lambda: observed.append(sim.now))
        sim.run()
        assert observed == [pytest.approx(12.0)]

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(sim.now)
            if depth < 3:
                sim.schedule_in(1.0, lambda: chain(depth + 1))

        sim.schedule_at(0.0, lambda: chain(0))
        sim.run()
        assert fired == [pytest.approx(t) for t in (0.0, 1.0, 2.0, 3.0)]

    def test_run_until_horizon_leaves_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.pending == 1
        assert sim.now == pytest.approx(2.0)
        sim.run()
        assert fired == [1, 5]

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_in(-1.0, lambda: None)

    def test_non_finite_time_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_at(float("inf"), lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_at(float("nan"), lambda: None)

    def test_stop_halts_processing(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]
        assert sim.pending == 1

    def test_max_events_bound(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule_at(float(i), lambda i=i: fired.append(i))
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_cancelled_event_not_executed(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_at(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_advance_to_moves_clock_forward_only(self):
        sim = Simulator()
        sim.advance_to(4.0)
        assert sim.now == pytest.approx(4.0)
        with pytest.raises(SimulationError):
            sim.advance_to(1.0)

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule_at(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule_at(0.0, nested)
        sim.run()
        assert len(errors) == 1


class TestLazyCompaction:
    """Cancelled-entry accumulation: the heap must stay O(live events)."""

    def test_heap_compacts_when_cancelled_entries_dominate(self):
        queue = EventQueue()
        live = [queue.push(1e9, lambda: None) for _ in range(10)]
        # Churn/rechoke pattern: schedule-then-cancel, thousands of times.
        for i in range(10_000):
            queue.push(float(i), lambda: None).cancel()
            assert len(queue) == 10
        # Without compaction the heap would hold ~10k dead entries.
        assert len(queue._heap) <= 2 * len(live) + 1
        assert queue.peek_time() == 1e9

    def test_compaction_preserves_dispatch_order(self):
        queue = EventQueue()
        survivors = []
        for i in range(200):
            event = queue.push(float(i % 7), lambda i=i: None)
            if i % 3 == 0:
                survivors.append((i % 7, i))
            else:
                event.cancel()
        popped = [(event.time, event.order) for event in iter(queue.pop, None)]
        assert popped == sorted(popped)
        assert len(popped) == len(survivors)

    def test_small_heaps_are_never_compacted(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(10)]
        for event in events[:9]:
            event.cancel()
        # Below the compaction floor the dead entries just wait for pop.
        assert len(queue._heap) == 10
        assert len(queue) == 1

    def test_pending_counter_tracks_cancel_after_pop(self):
        sim = Simulator()
        event = sim.schedule_at(1.0, lambda: None)
        sim.run()
        assert sim.pending == 0
        event.cancel()  # cancelling an already-fired event is a no-op
        assert sim.pending == 0

    def test_simulator_pending_stays_exact_under_churn(self):
        sim = Simulator()
        keep = sim.schedule_at(50.0, lambda: None)
        for i in range(5_000):
            sim.schedule_at(100.0 + i, lambda: None).cancel()
        assert sim.pending == 1
        sim.run()
        assert sim.now == 50.0


class TestSharedAgendaSurface:
    """peek/step/owner: the workload engine's shared-agenda interface."""

    def test_step_dispatches_exactly_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(2.0, lambda: fired.append(2))
        assert sim.peek_time() == 1.0
        event = sim.step()
        assert fired == [1]
        assert event.time == 1.0
        assert sim.now == 1.0
        assert sim.peek_time() == 2.0

    def test_step_on_empty_agenda_returns_none(self):
        sim = Simulator()
        assert sim.step() is None
        assert sim.peek_time() is None

    def test_events_carry_their_owner(self):
        sim = Simulator()
        owner = object()
        sim.schedule_at(1.0, lambda: None, owner=owner)
        event = sim.step()
        assert event.owner is owner
