"""Unit and property tests for the NMI measures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.nmi import normalized_mutual_information, overlapping_nmi
from repro.clustering.partition import Partition


def p(*clusters):
    return Partition(clusters)


class TestClassicalNMI:
    def test_identical_partitions_score_one(self):
        a = p({"a", "b"}, {"c", "d"})
        assert normalized_mutual_information(a, a) == pytest.approx(1.0)

    def test_completely_different_partitions_score_low(self):
        truth = p({"a", "b"}, {"c", "d"})
        found = p({"a", "c"}, {"b", "d"})
        assert normalized_mutual_information(found, truth) == pytest.approx(0.0, abs=1e-9)

    def test_single_cluster_vs_structure_scores_zero(self):
        truth = p({"a", "b"}, {"c", "d"})
        found = p({"a", "b", "c", "d"})
        assert normalized_mutual_information(found, truth) == pytest.approx(0.0)

    def test_both_trivial_scores_one(self):
        a = p({"a", "b", "c"})
        assert normalized_mutual_information(a, a) == pytest.approx(1.0)

    def test_refinement_scores_between_zero_and_one(self):
        truth = p({"a", "b", "c", "d"}, {"e", "f", "g", "h"})
        found = p({"a", "b"}, {"c", "d"}, {"e", "f"}, {"g", "h"})
        value = normalized_mutual_information(found, truth)
        assert 0.0 < value < 1.0

    def test_mismatched_node_sets_rejected(self):
        with pytest.raises(ValueError):
            normalized_mutual_information(p({"a", "b"}), p({"a", "c"}))

    def test_symmetry(self):
        truth = p({"a", "b", "c"}, {"d", "e"})
        found = p({"a", "b"}, {"c", "d", "e"})
        assert normalized_mutual_information(found, truth) == pytest.approx(
            normalized_mutual_information(truth, found)
        )


class TestOverlappingNMI:
    def test_identical_partitions_score_one(self):
        a = p({"a", "b"}, {"c", "d"}, {"e"})
        assert overlapping_nmi(a, a) == pytest.approx(1.0)

    def test_disagreement_scores_below_one(self):
        truth = p({"a", "b"}, {"c", "d"})
        found = p({"a", "c"}, {"b", "d"})
        assert overlapping_nmi(found, truth) < 0.2

    def test_bounded_between_zero_and_one(self):
        truth = p({"a", "b", "c"}, {"d", "e", "f"})
        found = p({"a", "b"}, {"c", "d"}, {"e", "f"})
        value = overlapping_nmi(found, truth)
        assert 0.0 <= value <= 1.0

    def test_symmetry(self):
        truth = p({"a", "b", "c", "d"}, {"e", "f"})
        found = p({"a", "b"}, {"c", "d"}, {"e", "f"})
        assert overlapping_nmi(found, truth) == pytest.approx(
            overlapping_nmi(truth, found)
        )

    def test_two_site_merge_scores_intermediate(self):
        """The BT scenario: 3-way ground truth recovered as the 2-way site split."""
        truth = p(
            {f"bp{i}" for i in range(8)},       # Bordeplage
            {f"br{i}" for i in range(8)},       # Bordereau/Borderline
            {f"t{i}" for i in range(16)},       # Toulouse
        )
        found = p(
            {f"bp{i}" for i in range(8)} | {f"br{i}" for i in range(8)},
            {f"t{i}" for i in range(16)},
        )
        value = overlapping_nmi(found, truth)
        assert 0.4 < value < 0.95

    def test_mismatched_node_sets_rejected(self):
        with pytest.raises(ValueError):
            overlapping_nmi(p({"a"}, {"b"}), p({"a", "b", "c"}))


# --------------------------------------------------------------------- #
# property-based consistency between the two measures
# --------------------------------------------------------------------- #
@st.composite
def two_partitions(draw):
    n = draw(st.integers(min_value=2, max_value=16))
    nodes = [f"n{i}" for i in range(n)]
    a = {node: draw(st.integers(min_value=0, max_value=3)) for node in nodes}
    b = {node: draw(st.integers(min_value=0, max_value=3)) for node in nodes}
    return Partition.from_membership(a), Partition.from_membership(b)


@given(two_partitions())
@settings(max_examples=80, deadline=None)
def test_both_measures_are_bounded_and_symmetric(partitions):
    found, truth = partitions
    for measure in (normalized_mutual_information, overlapping_nmi):
        value = measure(found, truth)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(measure(truth, found), abs=1e-9)


@given(two_partitions())
@settings(max_examples=80, deadline=None)
def test_identity_always_scores_one(partitions):
    found, _ = partitions
    assert normalized_mutual_information(found, found) == pytest.approx(1.0)
    assert overlapping_nmi(found, found) == pytest.approx(1.0)
