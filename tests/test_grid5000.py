"""Unit tests for the Grid'5000 topology builders."""

import pytest

from repro.network.grid5000 import (
    BORDEAUX_BOTTLENECK_CAPACITY,
    GRID5000_SITES,
    NODE_ACCESS_CAPACITY,
    Grid5000Builder,
    build_bordeaux_site,
    build_flat_site,
    build_multi_site,
    default_cluster_of,
    flow_rate_cap,
    host_name,
    path_rtt,
    tcp_rate_cap,
)
from repro.network.routing import RoutingTable
from repro.network.topology import TopologyError


class TestSiteBuilders:
    def test_bordeaux_default_matches_paper_configuration(self):
        topo = build_bordeaux_site()
        assert len(topo.host_names) == 64
        assert len(topo.hosts_in_cluster("bordeaux", "bordeplage")) == 32
        assert len(topo.hosts_in_cluster("bordeaux", "bordereau")) == 27
        assert len(topo.hosts_in_cluster("bordeaux", "borderline")) == 5

    def test_bordeaux_has_single_bottleneck_link(self):
        topo = build_bordeaux_site(4, 3, 1)
        bottlenecks = [l for l in topo.links if "bottleneck" in l.name]
        assert len(bottlenecks) == 1
        assert bottlenecks[0].capacity == pytest.approx(BORDEAUX_BOTTLENECK_CAPACITY)

    def test_flat_site_has_no_bottleneck(self):
        topo = build_flat_site("grenoble", 6)
        assert len(topo.host_names) == 6
        assert not any("bottleneck" in l.name for l in topo.links)

    def test_node_access_capacity(self):
        topo = build_flat_site("toulouse", 2)
        host_links = [l for l in topo.links if topo.is_host(l.a) or topo.is_host(l.b)]
        assert all(l.capacity == pytest.approx(NODE_ACCESS_CAPACITY) for l in host_links)

    def test_unknown_site_rejected(self):
        builder = Grid5000Builder()
        with pytest.raises(TopologyError):
            builder.build_single_site("atlantis", {"x": 2})

    def test_unknown_cluster_rejected(self):
        builder = Grid5000Builder()
        with pytest.raises(TopologyError):
            builder.build_single_site("bordeaux", {"nonexistent": 2})

    def test_requesting_too_many_nodes_rejected(self):
        builder = Grid5000Builder()
        with pytest.raises(TopologyError):
            builder.build_single_site("bordeaux", {"borderline": 1000})

    def test_host_naming_scheme(self):
        assert host_name("bordeaux", "bordereau", 3) == "bordeaux.bordereau-3"
        topo = build_flat_site("lyon", 2)
        assert "lyon.sagittaire-0" in topo.host_names


class TestMultiSite:
    def test_multi_site_connects_through_renater(self):
        topo = build_multi_site(
            {
                "grenoble": {default_cluster_of("grenoble"): 2},
                "toulouse": {default_cluster_of("toulouse"): 2},
                "lyon": {default_cluster_of("lyon"): 2},
            }
        )
        assert len(topo.host_names) == 6
        renater_links = [l for l in topo.links if l.name.startswith("renater.")]
        assert len(renater_links) == 3
        topo.validate_connected()

    def test_empty_request_rejected(self):
        with pytest.raises(TopologyError):
            build_multi_site({})

    def test_sites_listed(self):
        topo = build_multi_site(
            {
                "grenoble": {default_cluster_of("grenoble"): 1},
                "toulouse": {default_cluster_of("toulouse"): 1},
            }
        )
        assert topo.sites() == ["grenoble", "toulouse"]

    def test_catalogue_covers_nine_sites(self):
        assert len(GRID5000_SITES) == 9
        for spec in GRID5000_SITES.values():
            assert spec.clusters
            assert spec.wan_latency > 0


class TestBandwidthCalibration:
    """The two reference numbers the paper quotes must hold on the simulator."""

    def test_intra_cluster_point_to_point_is_about_890_mbps(self):
        topo = build_flat_site("grenoble", 2)
        routing = RoutingTable(topo)
        hosts = topo.host_names
        bottleneck = routing.bottleneck_capacity(hosts[0], hosts[1])
        assert bottleneck * 8 / 1e6 == pytest.approx(890.0, rel=0.01)

    def test_inter_site_tcp_cap_is_below_intra_cluster(self):
        topo = build_multi_site(
            {
                "bordeaux": {"bordereau": 1},
                "toulouse": {default_cluster_of("toulouse"): 1},
            }
        )
        routing = RoutingTable(topo)
        bordeaux = [h for h in topo.host_names if h.startswith("bordeaux")][0]
        toulouse = [h for h in topo.host_names if h.startswith("toulouse")][0]
        cap = flow_rate_cap(routing, bordeaux, toulouse)
        mbps = cap * 8 / 1e6
        # The paper reports ~787 Mb/s; the window/RTT model should land in a
        # broadly similar band, clearly below the 890 Mb/s intra-cluster value.
        assert 550 <= mbps <= 880

    def test_rtt_intra_site_is_much_smaller_than_inter_site(self):
        topo = build_multi_site(
            {
                "grenoble": {default_cluster_of("grenoble"): 2},
                "toulouse": {default_cluster_of("toulouse"): 1},
            }
        )
        routing = RoutingTable(topo)
        hosts = topo.host_names
        grenoble = [h for h in hosts if h.startswith("grenoble")]
        toulouse = [h for h in hosts if h.startswith("toulouse")]
        intra = path_rtt(routing, grenoble[0], grenoble[1])
        inter = path_rtt(routing, grenoble[0], toulouse[0])
        assert inter > 10 * intra

    def test_tcp_rate_cap_edge_cases(self):
        assert tcp_rate_cap(0.0) == float("inf")
        assert tcp_rate_cap(0.01, window=1e6) == pytest.approx(1e8)

    def test_intra_site_cap_never_binds(self):
        topo = build_flat_site("grenoble", 2)
        routing = RoutingTable(topo)
        hosts = topo.host_names
        cap = flow_rate_cap(routing, hosts[0], hosts[1])
        assert cap > NODE_ACCESS_CAPACITY
