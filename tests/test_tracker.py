"""Unit tests for the tracker's bounded random peer sets."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bittorrent.tracker import DEFAULT_MAX_PEERS, Tracker


class TestTracker:
    def test_small_swarm_is_fully_connected(self, rng):
        tracker = Tracker()
        names = [f"n{i}" for i in range(10)]
        connections = tracker.build_connections(names, rng)
        for name, peers in connections.items():
            assert peers == set(names) - {name}

    def test_peer_set_limit_bounds_knowledge_but_symmetry_holds(self, rng):
        tracker = Tracker(max_peers=5)
        names = [f"n{i}" for i in range(30)]
        connections = tracker.build_connections(names, rng)
        # Connections are symmetric.
        for name, peers in connections.items():
            assert name not in peers
            for other in peers:
                assert name in connections[other]
        # With max_peers=5 in a 30-node swarm, nobody is connected to everyone.
        assert all(len(peers) < len(names) - 1 for peers in connections.values())
        # But everyone has at least their own 5 picks.
        assert all(len(peers) >= 5 for peers in connections.values())

    def test_default_limit_is_35_like_the_reference_client(self):
        assert DEFAULT_MAX_PEERS == 35
        assert Tracker().max_peers == 35

    def test_large_swarm_is_not_complete_graph(self, rng):
        tracker = Tracker()
        names = [f"n{i}" for i in range(80)]
        connections = tracker.build_connections(names, rng)
        density = tracker.connection_density(connections)
        assert density < 1.0
        assert density > 0.3

    def test_duplicate_names_rejected(self, rng):
        tracker = Tracker()
        with pytest.raises(ValueError):
            tracker.build_connections(["a", "a", "b"], rng)

    def test_too_small_swarm_rejected(self, rng):
        tracker = Tracker()
        with pytest.raises(ValueError):
            tracker.build_connections(["only"], rng)

    def test_invalid_max_peers_rejected(self):
        with pytest.raises(ValueError):
            Tracker(max_peers=0)

    def test_determinism_with_same_seed(self):
        tracker = Tracker(max_peers=10)
        names = [f"n{i}" for i in range(40)]
        a = tracker.build_connections(names, np.random.default_rng(9))
        b = tracker.build_connections(names, np.random.default_rng(9))
        assert a == b

    def test_connection_density_degenerate(self):
        tracker = Tracker()
        assert tracker.connection_density({"a": set()}) == 0.0


@given(
    n=st.integers(min_value=2, max_value=60),
    max_peers=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_connection_graph_is_connected_enough_for_broadcast(n, max_peers, seed):
    """Every peer must have at least one connection (otherwise it could never download)."""
    tracker = Tracker(max_peers=max_peers)
    names = [f"n{i}" for i in range(n)]
    connections = tracker.build_connections(names, np.random.default_rng(seed))
    assert set(connections) == set(names)
    for name, peers in connections.items():
        assert len(peers) >= 1
        assert name not in peers
