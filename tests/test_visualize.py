"""Tests for DOT export and text rendering helpers."""

import pytest

from repro.analysis.visualize import (
    ascii_cluster_table,
    metric_summary,
    render_dot,
    render_fig4_bars,
)
from repro.bittorrent.instrumentation import FragmentMatrix
from repro.clustering.partition import Partition
from repro.graph.wgraph import WeightedGraph
from repro.tomography.metric import aggregate_mean


def sample_graph():
    graph = WeightedGraph()
    graph.add_edge("a", "b", 10.0)
    graph.add_edge("b", "c", 5.0)
    graph.add_edge("c", "d", 1.0)
    return graph


class TestRenderDot:
    def test_contains_all_nodes_and_top_edges_only(self):
        graph = sample_graph()
        dot = render_dot(graph, top_edge_fraction=0.34)
        for node in "abcd":
            assert f'"{node}"' in dot
        assert '"a" -- "b"' in dot
        assert '"c" -- "d"' not in dot
        assert dot.startswith("graph")
        assert dot.rstrip().endswith("}")

    def test_ground_truth_controls_shapes(self):
        graph = sample_graph()
        truth = Partition([{"a", "b"}, {"c", "d"}])
        dot = render_dot(graph, ground_truth=truth, top_edge_fraction=1.0)
        assert "shape=diamond" in dot or "shape=circle" in dot
        shapes = {line.split("shape=")[1].rstrip("];") for line in dot.splitlines() if "shape=" in line}
        assert len(shapes) >= 2

    def test_edge_length_inverse_to_weight(self):
        graph = sample_graph()
        dot = render_dot(graph, top_edge_fraction=1.0)
        lengths = {}
        for line in dot.splitlines():
            if "--" in line and "len=" in line:
                pair = line.split("[")[0].strip()
                length = float(line.split("len=")[1].split(",")[0])
                lengths[pair] = length
        heavy = min(lengths.values())
        light = max(lengths.values())
        assert light > heavy

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            render_dot(sample_graph(), top_edge_fraction=0.0)


class TestAsciiRendering:
    def test_cluster_table_lists_all_nodes(self):
        partition = Partition([{"a", "b"}, {"c"}])
        table = ascii_cluster_table(partition)
        for node in "abc":
            assert node in table
        assert "cluster 0" in table and "cluster 1" in table

    def test_cluster_table_with_ground_truth_composition(self):
        partition = Partition([{"a", "b", "c"}])
        truth = Partition([{"a", "b"}, {"c"}])
        table = ascii_cluster_table(partition, ground_truth=truth)
        assert "truth-0" in table and "truth-1" in table

    def test_fig4_bars_include_totals(self):
        local = {"peer1": 700.0, "peer2": 650.0}
        remote = {"peer3": 150.0}
        text = render_fig4_bars(local, remote)
        assert "local=1350" in text
        assert "remote=150" in text
        assert "#" in text

    def test_fig4_bars_handle_empty_groups(self):
        text = render_fig4_bars({}, {"x": 1.0})
        assert "(none)" in text

    def test_fig4_bars_width_validation(self):
        with pytest.raises(ValueError):
            render_fig4_bars({"a": 1.0}, {}, width=2)

    def test_metric_summary_mentions_counts(self):
        m = FragmentMatrix(["a", "b", "c"])
        m.record("a", "b", 12)
        metric = aggregate_mean([m])
        text = metric_summary(metric)
        assert "hosts: 3" in text
        assert "edges with traffic: 1 / 3" in text
