"""Campaign executor backends: chunking, resolution, and — crucially —
bit-for-bit equality between the serial and process-pool paths, including
recovery from crashed and hung workers (the ``chaos`` marker)."""

import os
import time

import numpy as np
import pytest

from repro.experiments.runners import run_broadcast_efficiency
from repro.scenarios.executors import (
    BatchedExecutor,
    BroadcastTask,
    CampaignExecutionError,
    ProcessPoolExecutor,
    SerialExecutor,
    default_executor,
    execute_task,
    execute_task_output,
    executor_from_name,
    workers_from_env,
)
from repro.tomography.measurement import MeasurementCampaign
from repro.tomography.pipeline import default_swarm_config

#: Sentinel file for the chaos task functions: the first worker to find it
#: missing creates it and misbehaves; retries then run clean.  Module-level
#: so the fork-started workers inherit the per-test path.
_CHAOS_FLAG = None


def _crash_once_fn(task):
    """Hard-kill the first worker process (simulates a segfaulting task)."""
    if _CHAOS_FLAG is not None and not os.path.exists(_CHAOS_FLAG):
        open(_CHAOS_FLAG, "w").close()
        os._exit(1)
    return execute_task_output(task)


def _hang_once_fn(task):
    """Stall the first worker past any reasonable task timeout."""
    if _CHAOS_FLAG is not None and not os.path.exists(_CHAOS_FLAG):
        open(_CHAOS_FLAG, "w").close()
        time.sleep(300)
    return execute_task_output(task)


def _always_crash_fn(task):
    os._exit(1)


def assert_records_identical(a, b):
    """Two measurement records must match byte for byte."""
    assert a.hosts == b.hosts
    assert a.iterations == b.iterations
    for ra, rb in zip(a.results, b.results):
        assert ra.root == rb.root
        assert ra.duration == rb.duration
        assert ra.distinct_edges == rb.distinct_edges
        assert ra.fragments.labels == rb.fragments.labels
        assert np.array_equal(ra.fragments.counts, rb.fragments.counts)
        assert ra.completion_times == rb.completion_times


class TestChunking:
    def test_serial_is_one_chunk(self):
        specs = [(("broadcast", i), None) for i in range(5)]
        assert SerialExecutor().chunk_specs(specs) == [tuple(specs)]

    def test_process_splits_evenly_and_contiguously(self):
        specs = [(("broadcast", i), None) for i in range(5)]
        chunks = ProcessPoolExecutor(workers=2).chunk_specs(specs)
        assert len(chunks) == 2
        assert [s for chunk in chunks for s in chunk] == specs

    def test_explicit_chunk_size(self):
        specs = [(("broadcast", i), None) for i in range(5)]
        chunks = ProcessPoolExecutor(workers=2, chunk_size=2).chunk_specs(specs)
        assert [len(c) for c in chunks] == [2, 2, 1]

    def test_empty_specs(self):
        assert ProcessPoolExecutor(workers=2).chunk_specs([]) == []

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ProcessPoolExecutor(workers=0)
        with pytest.raises(ValueError):
            ProcessPoolExecutor(chunk_size=0)


class TestResolution:
    def test_names(self):
        assert executor_from_name(None).name == "serial"
        assert executor_from_name("serial").name == "serial"
        assert executor_from_name("process", workers=3).workers == 3
        assert executor_from_name("batched").name == "batched"
        assert executor_from_name("batched", chunk_size=2).max_width == 2
        with pytest.raises(ValueError):
            executor_from_name("gpu")

    def test_default_executor_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert default_executor() is None

    def test_default_executor_serial_is_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "serial")
        assert default_executor() is None

    def test_default_executor_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "3")
        executor = default_executor()
        assert executor.name == "process"
        assert executor.workers == 3

    def test_default_executor_batched(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "batched")
        monkeypatch.delenv("REPRO_EXECUTOR_WORKERS", raising=False)
        assert default_executor().name == "batched"


class TestExecuteTask:
    def test_task_replays_campaign_iteration(self, two_site_topology, tiny_swarm_config):
        campaign = MeasurementCampaign(
            two_site_topology, tiny_swarm_config, seed=9
        )
        expected = campaign.run_iteration(0)
        task = BroadcastTask(
            two_site_topology,
            tiny_swarm_config,
            tuple(campaign.hosts),
            9,
            ((("broadcast", 0), campaign.hosts[0]),),
        )
        (replayed,) = execute_task(task)
        assert np.array_equal(replayed.fragments.counts, expected.fragments.counts)
        assert replayed.duration == expected.duration


class TestBackendEquality:
    """The acceptance gate: fixed seed ⇒ byte-identical records on every backend."""

    def _campaign(self, topology, config, executor, rotate_root=False):
        return MeasurementCampaign(
            topology, config, seed=42, rotate_root=rotate_root, executor=executor
        )

    def test_serial_executor_matches_inline_loop(self, two_site_topology, tiny_swarm_config):
        inline = self._campaign(two_site_topology, tiny_swarm_config, None).run(4)
        serial = self._campaign(
            two_site_topology, tiny_swarm_config, SerialExecutor()
        ).run(4)
        assert_records_identical(inline, serial)

    def test_process_pool_matches_serial(self, two_site_topology, tiny_swarm_config):
        inline = self._campaign(two_site_topology, tiny_swarm_config, None).run(4)
        pooled = self._campaign(
            two_site_topology, tiny_swarm_config, ProcessPoolExecutor(workers=2)
        ).run(4)
        assert_records_identical(inline, pooled)

    def test_process_pool_matches_serial_with_rotating_root(
        self, two_site_topology, tiny_swarm_config
    ):
        inline = self._campaign(
            two_site_topology, tiny_swarm_config, None, rotate_root=True
        ).run(5)
        pooled = self._campaign(
            two_site_topology,
            tiny_swarm_config,
            ProcessPoolExecutor(workers=2),
            rotate_root=True,
        ).run(5)
        assert {r.root for r in pooled.results} != {pooled.hosts[0]}
        assert_records_identical(inline, pooled)

    def test_batched_matches_inline_loop(self, two_site_topology, tiny_swarm_config):
        inline = self._campaign(two_site_topology, tiny_swarm_config, None).run(4)
        batched = self._campaign(
            two_site_topology, tiny_swarm_config, BatchedExecutor()
        ).run(4)
        assert_records_identical(inline, batched)
        assert all(r.batch_width == 4 for r in batched.results)

    def test_batched_matches_serial_with_rotating_root(
        self, two_site_topology, tiny_swarm_config
    ):
        inline = self._campaign(
            two_site_topology, tiny_swarm_config, None, rotate_root=True
        ).run(5)
        batched = self._campaign(
            two_site_topology,
            tiny_swarm_config,
            BatchedExecutor(),
            rotate_root=True,
        ).run(5)
        assert {r.root for r in batched.results} != {batched.hosts[0]}
        assert_records_identical(inline, batched)

    def test_batched_width_does_not_change_results(
        self, dumbbell_topology, tiny_swarm_config
    ):
        full = self._campaign(
            dumbbell_topology, tiny_swarm_config, BatchedExecutor()
        ).run(4)
        capped = self._campaign(
            dumbbell_topology, tiny_swarm_config, BatchedExecutor(max_width=2)
        ).run(4)
        assert_records_identical(full, capped)
        assert [r.batch_width for r in capped.results] == [2, 2, 2, 2]

    def test_rerunning_same_campaign_is_idempotent(
        self, two_site_topology, tiny_swarm_config
    ):
        """A second run() of the same campaign object replays the first —
        on every backend — so serial and pooled paths can never drift."""
        inline = self._campaign(two_site_topology, tiny_swarm_config, None)
        first = inline.run(2)
        assert_records_identical(first, inline.run(2))
        pooled = self._campaign(
            two_site_topology, tiny_swarm_config, ProcessPoolExecutor(workers=2)
        )
        assert_records_identical(first, pooled.run(2))
        assert_records_identical(first, pooled.run(2))

    def test_chunk_size_does_not_change_results(self, dumbbell_topology, tiny_swarm_config):
        coarse = self._campaign(
            dumbbell_topology, tiny_swarm_config, ProcessPoolExecutor(workers=2)
        ).run(4)
        fine = self._campaign(
            dumbbell_topology,
            tiny_swarm_config,
            ProcessPoolExecutor(workers=2, chunk_size=1),
        ).run(4)
        assert_records_identical(coarse, fine)

    def test_broadcast_efficiency_backend_equality(self):
        serial = run_broadcast_efficiency(
            node_counts=(4, 8), num_fragments=60, seed=3
        )
        pooled = run_broadcast_efficiency(
            node_counts=(4, 8),
            num_fragments=60,
            seed=3,
            executor=ProcessPoolExecutor(workers=2),
        )
        assert serial["durations_by_nodes"] == pooled["durations_by_nodes"]
        assert serial["durations_by_fragments"] == pooled["durations_by_fragments"]


class TestWorkersEnvValidation:
    def test_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR_WORKERS", raising=False)
        assert workers_from_env() is None
        # A blank value reads as "unset", not as an error.
        monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "  ")
        assert workers_from_env() is None

    @pytest.mark.parametrize("bad", ["0", "-2", "two", "1.5"])
    def test_invalid_values_rejected_with_clear_error(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", bad)
        with pytest.raises(ValueError, match="REPRO_EXECUTOR_WORKERS"):
            workers_from_env()

    def test_default_executor_surfaces_the_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "0")
        with pytest.raises(ValueError, match="REPRO_EXECUTOR_WORKERS"):
            default_executor()

    def test_executor_from_name_falls_back_to_env(self, monkeypatch):
        # The CLI path (`--executor process` without `--workers`) must
        # honour — and therefore validate — the env var too.
        monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "3")
        assert executor_from_name("process").workers == 3
        monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "zero")
        with pytest.raises(ValueError, match="REPRO_EXECUTOR_WORKERS"):
            executor_from_name("process")
        # An explicit workers= wins over the environment.
        assert executor_from_name("process", workers=2).workers == 2

    def test_fault_tolerance_knob_validation(self):
        with pytest.raises(ValueError, match="task_timeout"):
            ProcessPoolExecutor(task_timeout=0)
        with pytest.raises(ValueError, match="retries"):
            ProcessPoolExecutor(retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            ProcessPoolExecutor(retry_backoff=-0.1)


class TestWorkloadFaultTaskThreading:
    """Satellite guard: ``--executor process`` campaigns must actually run
    the workload/fault plan, not silently fall back to bare broadcasts."""

    def _records(self, topology, config, executor, **kwargs):
        return MeasurementCampaign(
            topology, config, seed=42, executor=executor, **kwargs
        ).run(3)

    def test_process_pool_runs_workloads(self, two_site_topology, tiny_swarm_config):
        serial = self._records(
            two_site_topology, tiny_swarm_config, None, workload="churn"
        )
        pooled = self._records(
            two_site_topology,
            tiny_swarm_config,
            ProcessPoolExecutor(workers=2),
            workload="churn",
        )
        assert_records_identical(serial, pooled)
        # The guard proper: the pooled record carries real per-iteration
        # workload stats — the tenants ran inside the worker processes.
        assert pooled.workload_stats == serial.workload_stats
        assert any(
            row["kind"] == "churn" for it in pooled.workload_stats for row in it
        )

    def test_process_pool_runs_fault_plans(self, two_site_topology, tiny_swarm_config):
        serial = self._records(
            two_site_topology, tiny_swarm_config, None,
            workload="rival", faults="chaos",
        )
        pooled = self._records(
            two_site_topology,
            tiny_swarm_config,
            ProcessPoolExecutor(workers=2),
            workload="rival", faults="chaos",
        )
        assert_records_identical(serial, pooled)
        assert pooled.workload_stats == serial.workload_stats
        assert any(
            row.get("fault") for it in pooled.workload_stats for row in it
        )


class TestTelemetryMerge:
    """The metrics registry is per-process; the process pool ships worker
    snapshot deltas back inside each TaskOutput and merges them into the
    parent.  The simulation-side counters must therefore agree exactly
    across serial, process and batched backends — the executor is an
    execution strategy, not a different instrument."""

    SIM_COUNTERS = (
        "swarm.broadcasts",
        "swarm.control_steps",
        "swarm.receipts",
        "campaign.iterations",
    )

    def _campaign_delta(self, topology, config, executor):
        from repro.observability.metrics import METRICS

        before = METRICS.snapshot()
        record = MeasurementCampaign(
            topology, config, seed=42, executor=executor
        ).run(4)
        return record, METRICS.snapshot().delta_since(before)

    def test_metrics_merge_identically_across_executors(
        self, two_site_topology, tiny_swarm_config
    ):
        serial_record, serial = self._campaign_delta(
            two_site_topology, tiny_swarm_config, None
        )
        pooled_record, pooled = self._campaign_delta(
            two_site_topology, tiny_swarm_config, ProcessPoolExecutor(workers=2)
        )
        batched_record, batched = self._campaign_delta(
            two_site_topology, tiny_swarm_config, BatchedExecutor()
        )
        assert_records_identical(serial_record, pooled_record)
        assert_records_identical(serial_record, batched_record)
        for key in self.SIM_COUNTERS:
            assert pooled.counter(key) == serial.counter(key), key
            assert batched.counter(key) == serial.counter(key), key
        # The pooled counters arrived via worker snapshot merging: more than
        # one task chunk executed, none of them in this process.
        assert pooled.counter("executor.tasks") >= 2
        # The batched backend additionally records its lock-step shape.
        assert batched.counter("batched.lanes") == 4


@pytest.mark.chaos
class TestWorkerFaultTolerance:
    """Crash/hang injection: the pool must terminate or survive misbehaving
    workers, retry on a fresh pool, and still produce byte-identical
    records."""

    def _serial_record(self, topology, config):
        return MeasurementCampaign(topology, config, seed=42).run(3)

    def _chaos_executor(self, task_fn, **kwargs):
        return ProcessPoolExecutor(
            workers=2, task_fn=task_fn, retries=2, retry_backoff=0.01, **kwargs
        )

    @pytest.fixture(autouse=True)
    def chaos_flag(self, tmp_path):
        global _CHAOS_FLAG
        _CHAOS_FLAG = str(tmp_path / "misbehaved")
        yield
        _CHAOS_FLAG = None

    @pytest.fixture
    def chaos_trace(self, tmp_path):
        """Trace the chaos run, yield the path, restore the no-op tracer."""
        from repro.observability.tracer import TRACER

        trace_path = tmp_path / "chaos.jsonl"
        TRACER.configure(str(trace_path))
        yield trace_path
        TRACER.close()

    @staticmethod
    def _trace_names(trace_path):
        import json

        from repro.observability.tracer import TRACER

        TRACER.flush()
        return [
            json.loads(line).get("name")
            for line in trace_path.read_text().splitlines()
        ]

    def test_recovers_from_crashed_worker(
        self, two_site_topology, tiny_swarm_config, chaos_trace
    ):
        from repro.observability.metrics import METRICS

        before = METRICS.snapshot()
        executor = self._chaos_executor(_crash_once_fn)
        record = MeasurementCampaign(
            two_site_topology, tiny_swarm_config, seed=42, executor=executor
        ).run(3)
        assert_records_identical(
            self._serial_record(two_site_topology, tiny_swarm_config), record
        )
        assert executor.task_failures >= 1
        # The telemetry layer saw the crash and the recovery round.
        delta = METRICS.snapshot().delta_since(before)
        assert delta.counter("executor.worker_crashes") >= 1
        assert delta.counter("executor.retries") >= 1
        names = self._trace_names(chaos_trace)
        assert "executor.worker_crash" in names
        assert "executor.retry" in names

    def test_recovers_from_hung_worker(
        self, two_site_topology, tiny_swarm_config, chaos_trace
    ):
        from repro.observability.metrics import METRICS

        before = METRICS.snapshot()
        executor = self._chaos_executor(_hang_once_fn, task_timeout=15)
        record = MeasurementCampaign(
            two_site_topology, tiny_swarm_config, seed=42, executor=executor
        ).run(3)
        assert_records_identical(
            self._serial_record(two_site_topology, tiny_swarm_config), record
        )
        assert executor.task_failures >= 1
        delta = METRICS.snapshot().delta_since(before)
        assert delta.counter("executor.timeouts") >= 1
        assert delta.counter("executor.retries") >= 1
        names = self._trace_names(chaos_trace)
        assert "executor.timeout" in names
        assert "executor.retry" in names

    def test_persistent_crash_raises_after_retries(
        self, two_site_topology, tiny_swarm_config
    ):
        executor = ProcessPoolExecutor(
            workers=2, task_fn=_always_crash_fn, retries=1, retry_backoff=0.01
        )
        campaign = MeasurementCampaign(
            two_site_topology, tiny_swarm_config, seed=42, executor=executor
        )
        with pytest.raises(CampaignExecutionError, match="after 1 retr"):
            campaign.run(3)


class TestPipelineIntegration:
    def test_pipeline_summary_identical_across_backends(self, two_site_topology):
        from repro.scenarios import get_scenario

        spec = get_scenario("G-T")
        serial = spec.run(iterations=3, num_fragments=100, per_site=3)
        pooled = spec.run(
            iterations=3,
            num_fragments=100,
            per_site=3,
            executor=ProcessPoolExecutor(workers=2),
        )
        assert serial["measured_nmi"] == pooled["measured_nmi"]
        assert serial["modularity"] == pooled["modularity"]
        assert serial["measurement_time_s"] == pooled["measurement_time_s"]
        assert serial["nmi_per_iteration"] == pooled["nmi_per_iteration"]
        assert pooled["executor"] == "process"
        assert_records_identical(serial["result"].record, pooled["result"].record)
