"""Unit tests for measurement campaigns."""

import numpy as np
import pytest

from repro.tomography.measurement import MeasurementCampaign, MeasurementRecord
from repro.tomography.pipeline import default_swarm_config


class TestMeasurementCampaign:
    def test_runs_requested_iterations(self, dumbbell_topology, tiny_swarm_config):
        campaign = MeasurementCampaign(dumbbell_topology, tiny_swarm_config, seed=1)
        record = campaign.run(3)
        assert record.iterations == 3
        assert len(record.matrices) == 3
        assert len(record.durations) == 3
        assert record.total_measurement_time() == pytest.approx(sum(record.durations))

    def test_invalid_iteration_count(self, dumbbell_topology, tiny_swarm_config):
        campaign = MeasurementCampaign(dumbbell_topology, tiny_swarm_config, seed=1)
        with pytest.raises(ValueError):
            campaign.run(0)

    def test_iterations_are_statistically_independent(self, dumbbell_topology, tiny_swarm_config):
        campaign = MeasurementCampaign(dumbbell_topology, tiny_swarm_config, seed=1)
        record = campaign.run(2)
        assert not np.array_equal(record.matrices[0].counts, record.matrices[1].counts)

    def test_campaign_is_reproducible_from_seed(self, dumbbell_topology, tiny_swarm_config):
        a = MeasurementCampaign(dumbbell_topology, tiny_swarm_config, seed=5).run(2)
        b = MeasurementCampaign(dumbbell_topology, tiny_swarm_config, seed=5).run(2)
        for ma, mb in zip(a.matrices, b.matrices):
            assert np.array_equal(ma.counts, mb.counts)

    def test_different_seeds_differ(self, dumbbell_topology, tiny_swarm_config):
        a = MeasurementCampaign(dumbbell_topology, tiny_swarm_config, seed=5).run(1)
        b = MeasurementCampaign(dumbbell_topology, tiny_swarm_config, seed=6).run(1)
        assert not np.array_equal(a.matrices[0].counts, b.matrices[0].counts)

    def test_fixed_root_by_default(self, dumbbell_topology, tiny_swarm_config):
        campaign = MeasurementCampaign(dumbbell_topology, tiny_swarm_config, seed=2)
        record = campaign.run(2)
        roots = {r.root for r in record.results}
        assert roots == {campaign.hosts[0]}

    def test_rotating_root(self, dumbbell_topology, tiny_swarm_config):
        campaign = MeasurementCampaign(
            dumbbell_topology, tiny_swarm_config, seed=2, rotate_root=True
        )
        record = campaign.run(3)
        roots = [r.root for r in record.results]
        assert roots == campaign.hosts[:3]

    def test_host_subset(self, dumbbell_topology, tiny_swarm_config):
        hosts = ["left-0", "left-1", "right-0", "right-1"]
        campaign = MeasurementCampaign(
            dumbbell_topology, tiny_swarm_config, hosts=hosts, seed=3
        )
        record = campaign.run(1)
        assert record.hosts == hosts
        assert record.matrices[0].labels == hosts


class TestMeasurementRecord:
    def test_aggregate_prefixes(self, dumbbell_topology, tiny_swarm_config):
        campaign = MeasurementCampaign(dumbbell_topology, tiny_swarm_config, seed=4)
        record = campaign.run(3)
        metric_all = record.aggregate()
        metric_two = record.aggregate(2)
        assert metric_all.iterations == 3
        assert metric_two.iterations == 2
        with pytest.raises(ValueError):
            record.aggregate(0)
        with pytest.raises(ValueError):
            record.aggregate(4)

    def test_cumulative_aggregates_lengths(self, dumbbell_topology, tiny_swarm_config):
        campaign = MeasurementCampaign(dumbbell_topology, tiny_swarm_config, seed=4)
        record = campaign.run(3)
        cumulative = record.cumulative_aggregates()
        assert [m.iterations for m in cumulative] == [1, 2, 3]

    def test_cumulative_aggregates_match_per_prefix_aggregation(
        self, dumbbell_topology, tiny_swarm_config
    ):
        """The incremental running-sum path is exact: fragment counts are
        integer-valued, so every prefix mean equals ``aggregate(k)`` bit for
        bit, not just approximately."""
        campaign = MeasurementCampaign(dumbbell_topology, tiny_swarm_config, seed=6)
        record = campaign.run(5)
        cumulative = record.cumulative_aggregates()
        assert len(cumulative) == 5
        for k, metric in enumerate(cumulative, start=1):
            reference = record.aggregate(k)
            assert metric.labels == reference.labels
            assert metric.iterations == reference.iterations
            assert np.array_equal(metric.weights, reference.weights)

    def test_empty_record_rejects_aggregation(self):
        record = MeasurementRecord(hosts=["a", "b"])
        with pytest.raises(ValueError):
            record.aggregate()
        with pytest.raises(ValueError):
            record.cumulative_aggregates()

    def test_aggregation_reduces_variance(self, dumbbell_topology, small_swarm_config):
        """More iterations → the aggregated metric stabilises (Section II-D)."""
        campaign = MeasurementCampaign(dumbbell_topology, small_swarm_config, seed=9)
        record = campaign.run(10)
        # Distance between consecutive cumulative aggregates shrinks on average
        # (individual steps are noisy because each broadcast is random).
        diffs = []
        cumulative = record.cumulative_aggregates()
        for a, b in zip(cumulative, cumulative[1:]):
            diffs.append(np.abs(a.weights - b.weights).sum())
        assert np.mean(diffs[-3:]) < np.mean(diffs[:3])
        # And the step size is bounded by total-weight / iteration-count.
        total = record.aggregate(1).weights.sum()
        for k, diff in enumerate(diffs, start=2):
            assert diff <= 2.0 * total / k + 1e-6
