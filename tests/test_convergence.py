"""Tests for the NMI-vs-iterations convergence analysis (Fig. 13 machinery)."""

import pytest

from repro.analysis.convergence import ConvergenceStudy, nmi_convergence
from repro.clustering.louvain import louvain
from repro.clustering.partition import Partition
from repro.tomography.measurement import MeasurementCampaign
from repro.tomography.pipeline import default_swarm_config


def clusterer(graph):
    return louvain(graph).partition


class TestConvergenceStudy:
    def test_iterations_to_reach_and_converge(self):
        study = ConvergenceStudy("demo", [0.3, 0.8, 1.0, 0.9, 1.0, 1.0])
        assert study.iterations == 6
        assert study.final_nmi == pytest.approx(1.0)
        assert study.iterations_to_reach(0.8) == 2
        assert study.iterations_to_reach(1.0) == 3
        # "Converge" means stays at/above the target from that point on.
        assert study.iterations_to_converge(0.999) == 5
        assert study.iterations_to_converge(0.85) == 3

    def test_target_never_reached(self):
        study = ConvergenceStudy("demo", [0.1, 0.2])
        assert study.iterations_to_reach(0.9) is None
        assert study.iterations_to_converge(0.9) is None

    def test_empty_curve_final_nmi_raises(self):
        with pytest.raises(ValueError):
            ConvergenceStudy("demo", []).final_nmi

    def test_monotonicity_check(self):
        assert ConvergenceStudy("x", [0.2, 0.5, 0.9, 1.0]).is_monotone_after()
        assert not ConvergenceStudy("x", [0.9, 0.2, 1.0]).is_monotone_after()

    def test_from_record_runs_end_to_end(self, dumbbell_topology):
        truth = Partition(
            [
                {h for h in dumbbell_topology.host_names if h.startswith("left")},
                {h for h in dumbbell_topology.host_names if h.startswith("right")},
            ]
        )
        campaign = MeasurementCampaign(
            dumbbell_topology, default_swarm_config(300), seed=4
        )
        record = campaign.run(4)
        study = ConvergenceStudy.from_record("dumbbell", record, truth, clusterer)
        assert study.iterations == 4
        assert study.final_nmi == pytest.approx(1.0)
        assert study.iterations_to_reach(0.99) is not None


class TestNmiConvergence:
    def test_curve_length_matches_iterations(self, dumbbell_topology):
        truth = Partition(
            [
                {h for h in dumbbell_topology.host_names if h.startswith("left")},
                {h for h in dumbbell_topology.host_names if h.startswith("right")},
            ]
        )
        campaign = MeasurementCampaign(
            dumbbell_topology, default_swarm_config(200), seed=5
        )
        record = campaign.run(3)
        curve = nmi_convergence(record, truth, clusterer)
        assert len(curve) == 3
        assert all(0.0 <= value <= 1.0 for value in curve)

    def test_ground_truth_superset_is_restricted(self, dumbbell_topology):
        clusters = [
            {h for h in dumbbell_topology.host_names if h.startswith("left")},
            {h for h in dumbbell_topology.host_names if h.startswith("right")},
            {"unrelated-host"},
        ]
        truth = Partition(clusters)
        campaign = MeasurementCampaign(
            dumbbell_topology, default_swarm_config(200), seed=6
        )
        record = campaign.run(2)
        curve = nmi_convergence(record, truth, clusterer)
        assert len(curve) == 2
