"""Unit tests for the fragment-counter instrumentation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bittorrent.instrumentation import FragmentMatrix


class TestFragmentMatrix:
    def test_record_and_lookup(self):
        matrix = FragmentMatrix(["a", "b", "c"])
        matrix.record("a", "b", 5)
        matrix.record("a", "c", 2)
        assert matrix.received_by("a") == {"b": 5.0, "c": 2.0}
        assert matrix.total_fragments() == pytest.approx(7.0)

    def test_symmetric_weights_implements_eq1(self):
        matrix = FragmentMatrix(["a", "b"])
        matrix.record("a", "b", 3)
        matrix.record("b", "a", 4)
        assert matrix.edge_weight("a", "b") == pytest.approx(7.0)
        sym = matrix.symmetric_weights()
        assert sym[0, 1] == sym[1, 0] == pytest.approx(7.0)

    def test_self_reception_rejected(self):
        matrix = FragmentMatrix(["a", "b"])
        with pytest.raises(ValueError):
            matrix.record("a", "a")

    def test_negative_count_rejected(self):
        matrix = FragmentMatrix(["a", "b"])
        with pytest.raises(ValueError):
            matrix.record("a", "b", -1)

    def test_unknown_host_rejected(self):
        matrix = FragmentMatrix(["a", "b"])
        with pytest.raises(KeyError):
            matrix.record("a", "ghost")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            FragmentMatrix(["a", "a"])

    def test_too_few_hosts_rejected(self):
        with pytest.raises(ValueError):
            FragmentMatrix(["only"])

    def test_counts_validation(self):
        with pytest.raises(ValueError):
            FragmentMatrix(["a", "b"], counts=np.zeros((3, 3)))
        with pytest.raises(ValueError):
            FragmentMatrix(["a", "b"], counts=-np.ones((2, 2)))

    def test_mean_over_iterations_implements_eq2(self):
        m1 = FragmentMatrix(["a", "b"])
        m1.record("a", "b", 10)
        m2 = FragmentMatrix(["a", "b"])
        m2.record("a", "b", 0)
        m2.record("b", "a", 6)
        mean = FragmentMatrix.mean([m1, m2])
        assert mean.edge_weight("a", "b") == pytest.approx((10 + 6) / 2.0)

    def test_mean_requires_matching_labels(self):
        m1 = FragmentMatrix(["a", "b"])
        m2 = FragmentMatrix(["a", "c"])
        with pytest.raises(ValueError):
            FragmentMatrix.mean([m1, m2])
        with pytest.raises(ValueError):
            FragmentMatrix.mean([])

    def test_copy_is_independent(self):
        m = FragmentMatrix(["a", "b"])
        m.record("a", "b", 1)
        clone = m.copy()
        clone.record("a", "b", 10)
        assert m.edge_weight("a", "b") == pytest.approx(1.0)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=1, max_value=50),
        ),
        max_size=40,
    )
)
@settings(max_examples=50, deadline=None)
def test_total_fragments_equals_sum_of_records(records):
    labels = [f"h{i}" for i in range(5)]
    matrix = FragmentMatrix(labels)
    expected = 0
    for receiver, sender, count in records:
        if receiver == sender:
            continue
        matrix.record(labels[receiver], labels[sender], count)
        expected += count
    assert matrix.total_fragments() == pytest.approx(float(expected))
    # Symmetrised total is exactly twice the directed total.
    assert matrix.symmetric_weights().sum() == pytest.approx(2.0 * expected)
