"""Unit and property tests for the Louvain method."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.louvain import louvain
from repro.clustering.modularity import modularity
from repro.clustering.partition import Partition
from repro.graph.wgraph import WeightedGraph


def clique_graph(groups, intra=10.0, inter=1.0, bridge_pairs=()):
    """Disjoint cliques with optional weak bridges between consecutive groups."""
    graph = WeightedGraph()
    for group in groups:
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                graph.add_edge(group[i], group[j], intra)
    for (a, b) in bridge_pairs:
        graph.add_edge(a, b, inter)
    return graph


class TestLouvain:
    def test_recovers_two_cliques(self, two_community_graph):
        result = louvain(two_community_graph)
        expected = Partition([{f"l{i}" for i in range(4)}, {f"r{i}" for i in range(4)}])
        assert result.partition == expected
        assert result.modularity == pytest.approx(
            modularity(two_community_graph, expected), abs=1e-9
        )

    def test_recovers_four_cliques(self):
        groups = [[f"g{k}n{i}" for i in range(5)] for k in range(4)]
        bridges = [(groups[k][0], groups[(k + 1) % 4][0]) for k in range(4)]
        graph = clique_graph(groups, bridge_pairs=bridges)
        result = louvain(graph)
        assert result.partition.num_clusters == 4
        for group in groups:
            assert result.partition.same_cluster(group[0], group[-1])

    def test_weight_sensitivity(self):
        """With a dominating bridge weight the two 'cliques' merge."""
        groups = [["a1", "a2"], ["b1", "b2"]]
        weak = clique_graph(groups, intra=10.0, bridge_pairs=[("a1", "b1")])
        strong = clique_graph(groups, intra=1.0, inter=50.0, bridge_pairs=[("a1", "b1")])
        assert louvain(weak).partition.num_clusters == 2
        assert louvain(strong).partition.num_clusters < 4

    def test_empty_weight_graph_rejected(self):
        graph = WeightedGraph()
        graph.add_node("a")
        graph.add_node("b")
        with pytest.raises(ValueError):
            louvain(graph)

    def test_dendrogram_levels_do_not_decrease_modularity(self, two_community_graph):
        result = louvain(two_community_graph)
        scores = [modularity(two_community_graph, level) for level in result.dendrogram]
        assert all(b >= a - 1e-9 for a, b in zip(scores, scores[1:]))
        assert result.levels == len(result.dendrogram) >= 1

    def test_partition_covers_all_nodes(self, two_community_graph):
        result = louvain(two_community_graph)
        assert result.partition.nodes() == set(two_community_graph.nodes())

    def test_deterministic_without_rng(self, two_community_graph):
        a = louvain(two_community_graph)
        b = louvain(two_community_graph)
        assert a.partition == b.partition

    def test_randomised_order_still_finds_structure(self, two_community_graph):
        result = louvain(two_community_graph, rng=np.random.default_rng(3))
        assert result.partition.num_clusters == 2

    def test_isolated_nodes_handled(self):
        graph = WeightedGraph.from_edges([("a", "b", 5.0)], nodes=["a", "b", "lonely"])
        result = louvain(graph)
        assert "lonely" in result.partition.nodes()

    def test_star_graph_single_community(self):
        graph = WeightedGraph.from_edges(
            [("hub", f"leaf{i}", 1.0) for i in range(5)]
        )
        result = louvain(graph)
        # A star has no meaningful sub-communities: everything ends up together
        # or in a couple of clusters, but never as all-singletons.
        assert result.partition.num_clusters < 6
        assert result.modularity >= 0.0 - 1e-9


# --------------------------------------------------------------------- #
# property-based tests
# --------------------------------------------------------------------- #
@st.composite
def random_weighted_graph(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    nodes = list(range(n))
    edges = []
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.integers(min_value=0, max_value=2)) == 0:
                edges.append((i, j, draw(st.floats(min_value=0.1, max_value=20.0))))
    if not edges:
        edges.append((0, 1, 1.0))
    return WeightedGraph.from_edges(edges, nodes=nodes)


@given(random_weighted_graph())
@settings(max_examples=40, deadline=None)
def test_louvain_never_worse_than_singletons_or_whole(graph):
    result = louvain(graph)
    singles = modularity(graph, Partition.singletons(graph.nodes()))
    whole = modularity(graph, Partition.whole(graph.nodes()))
    assert result.modularity >= singles - 1e-9
    assert result.modularity >= whole - 1e-9


@given(random_weighted_graph())
@settings(max_examples=40, deadline=None)
def test_louvain_partition_is_valid(graph):
    result = louvain(graph)
    assert result.partition.nodes() == set(graph.nodes())
    assert sum(result.partition.sizes()) == len(graph)
    assert result.modularity == pytest.approx(
        modularity(graph, result.partition), abs=1e-9
    )


def test_csr_port_pins_dict_implementation_output():
    """Bit-for-bit regression pin for the CSR local-moving port.

    The expected partition, modularity and level count below were produced
    by the pre-CSR dict-adjacency implementation on this deterministic
    graph (three planted communities with noisy cross edges).  The CSR port
    claims identical move decisions — same candidate order, same weight
    accumulation order, same ``> best + 1e-12`` comparison chain — so its
    output must match these values exactly, not approximately.
    """
    rng = np.random.default_rng(2012)
    graph = WeightedGraph()
    names = [f"host-{i:02d}" for i in range(24)]
    for name in names:
        graph.add_node(name)
    for _ in range(160):
        u, v = rng.integers(0, 24, 2)
        weight = 8.0 if u // 8 == v // 8 else 1.0
        graph.add_edge(
            names[int(u)],
            names[int(v)],
            weight * float(rng.uniform(0.5, 1.5)),
            accumulate=True,
        )

    result = louvain(graph)
    clusters = sorted(sorted(c) for c in map(list, result.partition.clusters))
    assert result.modularity == 0.4568953814625537
    assert result.levels == 3
    assert clusters == [
        ["host-00", "host-01", "host-04", "host-05", "host-07"],
        ["host-02", "host-03", "host-06"],
        ["host-08", "host-09", "host-10", "host-12", "host-13"],
        ["host-11", "host-14", "host-15"],
        [
            "host-16", "host-17", "host-18", "host-19",
            "host-20", "host-21", "host-22", "host-23",
        ],
    ]
