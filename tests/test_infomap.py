"""Unit tests for the two-level map-equation (Infomap) clusterer."""

import numpy as np
import pytest

from repro.clustering.infomap import infomap, map_equation
from repro.clustering.partition import Partition
from repro.graph.wgraph import WeightedGraph


class TestMapEquation:
    def test_one_module_has_no_index_codebook_cost(self, two_community_graph):
        whole = Partition.whole(two_community_graph.nodes())
        singles = Partition.singletons(two_community_graph.nodes())
        l_whole = map_equation(two_community_graph, whole)
        l_singles = map_equation(two_community_graph, singles)
        assert l_whole > 0
        # All-singletons wastes bits on the index codebook for this graph.
        assert l_singles > l_whole

    def test_good_partition_has_lower_description_length(self, two_community_graph):
        good = Partition([{f"l{i}" for i in range(4)}, {f"r{i}" for i in range(4)}])
        bad = Partition([
            {"l0", "l1", "r0", "r1"},
            {"l2", "l3", "r2", "r3"},
        ])
        assert map_equation(two_community_graph, good) < map_equation(
            two_community_graph, bad
        )

    def test_zero_weight_graph_rejected(self):
        graph = WeightedGraph()
        graph.add_node("a")
        graph.add_node("b")
        with pytest.raises(ValueError):
            map_equation(graph, Partition.whole(["a", "b"]))


class TestInfomap:
    def test_recovers_two_cliques(self, two_community_graph):
        partition = infomap(two_community_graph)
        expected = Partition([{f"l{i}" for i in range(4)}, {f"r{i}" for i in range(4)}])
        assert partition == expected

    def test_result_covers_all_nodes(self, two_community_graph):
        partition = infomap(two_community_graph)
        assert partition.nodes() == set(two_community_graph.nodes())

    def test_deterministic_without_rng(self, two_community_graph):
        assert infomap(two_community_graph) == infomap(two_community_graph)

    def test_randomised_sweep_order(self, two_community_graph):
        partition = infomap(two_community_graph, rng=np.random.default_rng(5))
        assert partition.num_clusters == 2

    def test_result_never_increases_description_length(self, two_community_graph):
        found = infomap(two_community_graph)
        singles = Partition.singletons(two_community_graph.nodes())
        assert map_equation(two_community_graph, found) <= map_equation(
            two_community_graph, singles
        ) + 1e-9

    def test_zero_weight_graph_rejected(self):
        graph = WeightedGraph()
        graph.add_node("a")
        with pytest.raises(ValueError):
            infomap(graph)
