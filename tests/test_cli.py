"""Tests for the registry-driven command-line interface."""

import json

import pytest

from repro.cli import _parse_overrides, _parse_value, build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        actions = {
            a.dest: a for a in parser._subparsers._group_actions  # noqa: SLF001
        }
        choices = set(actions["command"].choices)
        assert {"list", "run", "sweep"} <= choices

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults_are_scenario_defaults(self):
        args = build_parser().parse_args(["run", "G-T"])
        assert args.iterations is None
        assert args.fragments is None
        assert args.seed is None
        assert args.executor == "serial"

    def test_sweep_requires_param_and_values(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "G-T"])

    def test_unknown_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "G-T", "--executor", "gpu"])


class TestValueParsing:
    def test_scalars(self):
        assert _parse_value("3") == 3
        assert _parse_value("0.5") == 0.5
        assert _parse_value("true") is True
        assert _parse_value("pastel") == "pastel"

    def test_comma_lists(self):
        assert _parse_value("4,6,8") == (4, 6, 8)
        assert _parse_value("0.1,1") == (0.1, 1)

    def test_overrides(self):
        assert _parse_overrides(["per-site=4", "squeeze=0.2"]) == {
            "per_site": 4,
            "squeeze": 0.2,
        }
        with pytest.raises(ValueError):
            _parse_overrides(["nonsense"])


class TestCommands:
    def test_list_shows_all_families_and_paper_datasets(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("2x2", "B", "B-T", "G-T", "B-G-T", "B-G-T-L"):
            assert name in out
        for family in ("paper", "figure", "fat-tree", "random-bottleneck",
                       "hetero-uplink"):
            assert f"family {family}:" in out

    def test_list_single_family(self, capsys):
        assert main(["list", "--family", "paper"]) == 0
        out = capsys.readouterr().out
        assert "family paper:" in out
        assert "family figure:" not in out

    def test_list_unknown_family_fails(self, capsys):
        assert main(["list", "--family", "nope"]) == 2
        assert "unknown family" in capsys.readouterr().err

    def test_run_unknown_scenario_fails(self, capsys):
        assert main(["run", "NOPE"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err
        assert "G-T" in err  # the error lists what is available

    def test_run_dataset_small(self, capsys):
        code = main(
            [
                "run", "G-T",
                "--per-site", "4",
                "--iterations", "3",
                "--fragments", "200",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "clusters found:" in out
        assert "overlapping NMI" in out
        assert "cluster 0" in out

    def test_run_dataset_2x2(self, capsys):
        code = main(["run", "2x2", "--iterations", "3", "--fragments", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "clusters found: 1" in out

    def test_run_netpipe(self, capsys):
        assert main(["run", "netpipe"]) == 0
        out = capsys.readouterr().out
        assert "intra-cluster peak bandwidth" in out
        assert "890" in out

    def test_run_fig5_small(self, capsys):
        code = main(
            ["run", "fig5", "--per-site", "4", "--iterations", "6",
             "--fragments", "150", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "zero-fragment runs" in out

    def test_run_bad_override_fails_cleanly(self, capsys):
        code = main(["run", "netpipe", "--set", "bogus_knob=1"])
        assert code == 2
        assert "bad override" in capsys.readouterr().err

    def test_run_malformed_set_fails_cleanly(self, capsys):
        assert main(["run", "netpipe", "--set", "nonsense"]) == 2
        assert "key=value" in capsys.readouterr().err

    def test_sweep_unknown_param_fails_cleanly(self, capsys):
        code = main(["sweep", "netpipe", "--param", "bogus", "--values", "1,2"])
        assert code == 2
        assert "unknown tunables" in capsys.readouterr().err

    def test_run_json_output(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        code = main(
            ["run", "G-T", "--per-site", "3", "--iterations", "2",
             "--fragments", "120", "--json", str(path)]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["command"] == "run"
        assert payload["scenario"] == "G-T"
        assert payload["executor"] == "serial"
        assert payload["found_clusters"] == 2
        assert "result" not in payload  # heavy objects are stripped

    def test_list_json_output(self, tmp_path, capsys):
        path = tmp_path / "list.json"
        assert main(["list", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        names = {entry["name"] for entry in payload["scenarios"]}
        assert {"B-G-T", "fig4", "FATTREE-4x4", "RANDBOT-1", "HETERO-UPLINK"} <= names

    def test_sweep_json_output(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        code = main(
            ["sweep", "G-T", "--param", "per_site", "--values", "3,4",
             "--iterations", "2", "--fragments", "120", "--json", str(path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per_site=3" in out
        assert "per_site=4" in out
        payload = json.loads(path.read_text())
        assert payload["param"] == "per_site"
        assert payload["values"] == [3, 4]
        assert [row["hosts"] for row in payload["rows"]] == [6, 8]

    def test_sweep_campaign_parameter(self, capsys):
        code = main(
            ["sweep", "G-T", "--param", "iterations", "--values", "1,2",
             "--per-site", "3", "--fragments", "120"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "iterations=1" in out
        assert "iterations=2" in out

    def test_run_with_process_executor(self, capsys):
        code = main(
            ["run", "G-T", "--per-site", "3", "--iterations", "2",
             "--fragments", "120", "--executor", "process", "--workers", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "executor process" in out


class TestDetectionKnobs:
    """Fail-fast validation of --detect-factor/--quorum and `faults list`."""

    def test_detect_factor_below_one_fails_fast(self, capsys):
        code = main(
            ["run", "LINK-BLACKOUT", "--iterations", "3", "--fragments", "80",
             "--per-site", "2", "--detect-factor", "0.9"]
        )
        assert code == 2
        assert "--detect-factor must exceed 1.0" in capsys.readouterr().err

    def test_detect_factor_on_detectorless_scenario_fails(self, capsys):
        code = main(
            ["run", "G-T", "--iterations", "1", "--fragments", "80",
             "--per-site", "2", "--detect-factor", "1.5"]
        )
        assert code == 2
        assert "has no failure detector" in capsys.readouterr().err

    def test_quorum_beyond_iterations_fails_fast(self, capsys):
        code = main(
            ["run", "G-T", "--iterations", "2", "--fragments", "80",
             "--per-site", "2", "--quorum", "9"]
        )
        assert code == 2
        assert "could never be met" in capsys.readouterr().err
        code = main(
            ["run", "G-T", "--fragments", "80", "--per-site", "2",
             "--quorum", "0"]
        )
        assert code == 2
        assert "--quorum must be at least 1" in capsys.readouterr().err

    def test_unknown_fault_preset_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "FAULT-INJECTION", "--faults", "gremlins"]
            )

    def test_faults_list(self, capsys, tmp_path):
        path = tmp_path / "faults.json"
        assert main(["faults", "list", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        for name in ("blackout", "chaos", "none", "route-flap"):
            assert name in out
        payload = json.loads(path.read_text())
        presets = {p["name"]: p for p in payload["presets"]}
        assert presets["blackout"]["kinds"] == {"link-failure": 1}
        assert presets["none"]["injectors"] == 0

    def test_detect_factor_forwarded_to_fault_study(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        code = main(
            ["run", "LINK-BLACKOUT", "--iterations", "3", "--fragments", "80",
             "--per-site", "2", "--detect-factor", "1.1", "--json", str(path)]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["detect_factor"] == 1.1
        assert "time_to_localize_s" in payload
        assert "localization_status" in payload

    def test_sweep_prints_localization_column(self, capsys):
        code = main(
            ["sweep", "LINK-BLACKOUT", "--param", "residual", "--values",
             "0.02,0.05", "--iterations", "4", "--fragments", "150",
             "--per-site", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "time_to_localize_s" in out
