"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        actions = {
            a.dest: a for a in parser._subparsers._group_actions  # noqa: SLF001
        }
        choices = set(actions["command"].choices)
        assert {
            "list-datasets",
            "run-dataset",
            "fig4",
            "fig5",
            "fig13",
            "efficiency",
            "netpipe",
        } <= choices

    def test_run_dataset_requires_known_name(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run-dataset", "NOPE"])

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["run-dataset", "G-T"])
        assert args.per_site == 8
        assert args.iterations == 8
        assert args.fragments == 600
        assert args.seed == 2012


class TestCommands:
    def test_list_datasets(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("2x2", "B", "B-T", "G-T", "B-G-T", "B-G-T-L"):
            assert name in out

    def test_run_dataset_small(self, capsys):
        code = main(
            [
                "run-dataset",
                "G-T",
                "--per-site", "4",
                "--iterations", "3",
                "--fragments", "200",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "clusters found:" in out
        assert "overlapping NMI" in out
        assert "cluster 0" in out

    def test_run_dataset_2x2(self, capsys):
        code = main(["run-dataset", "2x2", "--iterations", "3", "--fragments", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "clusters found: 1" in out

    def test_netpipe(self, capsys):
        assert main(["netpipe"]) == 0
        out = capsys.readouterr().out
        assert "intra-cluster peak bandwidth" in out
        assert "890" in out

    def test_fig5_small(self, capsys):
        code = main(
            ["fig5", "--per-site", "4", "--iterations", "6", "--fragments", "150", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "zero-fragment runs" in out
