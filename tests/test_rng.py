"""Unit tests for seeded random stream management."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.simulation.rng import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_label_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_base_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_result_fits_in_63_bits(self):
        seed = derive_seed(123456789, "broadcast", 17)
        assert 0 <= seed < 2 ** 63

    @given(st.integers(min_value=0, max_value=2 ** 40), st.text(max_size=20))
    def test_always_non_negative(self, base, label):
        assert derive_seed(base, label) >= 0


class TestRandomStreams:
    def test_same_label_returns_same_generator(self):
        streams = RandomStreams(7)
        assert streams.stream("x") is streams.stream("x")

    def test_streams_are_reproducible_across_instances(self):
        a = RandomStreams(7).stream("bt", 3).integers(0, 1000, size=5)
        b = RandomStreams(7).stream("bt", 3).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_different_labels_produce_different_sequences(self):
        streams = RandomStreams(7)
        a = streams.stream("one").integers(0, 10 ** 9, size=8)
        b = streams.stream("two").integers(0, 10 ** 9, size=8)
        assert not np.array_equal(a, b)

    def test_default_seed_is_recorded(self):
        streams = RandomStreams()
        assert isinstance(streams.seed, int)
        clone = RandomStreams(streams.seed)
        assert np.array_equal(
            clone.stream("a").integers(0, 100, size=4),
            RandomStreams(streams.seed).stream("a").integers(0, 100, size=4),
        )

    def test_spawn_creates_independent_family(self):
        parent = RandomStreams(3)
        child = parent.spawn("worker")
        assert child.seed != parent.seed
        assert child.seed == parent.spawn("worker").seed

    def test_shuffled_preserves_elements(self):
        streams = RandomStreams(5)
        items = list(range(20))
        shuffled = streams.shuffled(items, "perm")
        assert sorted(shuffled) == items

    def test_choice_from_empty_raises(self):
        streams = RandomStreams(5)
        with pytest.raises(ValueError):
            streams.choice([], "empty")

    def test_choice_returns_member(self):
        streams = RandomStreams(5)
        items = ["a", "b", "c"]
        assert streams.choice(items, "pick") in items
