"""Unit tests for torrent metadata."""

import pytest

from repro.bittorrent.torrent import (
    FRAGMENT_SIZE,
    PAPER_FILE_SIZE,
    PAPER_FRAGMENT_COUNT,
    TorrentMeta,
)


class TestTorrentMeta:
    def test_paper_default_matches_reported_fragment_count(self):
        torrent = TorrentMeta.paper_default()
        assert torrent.num_fragments == 15_259
        assert torrent.fragment_size == 16_384
        # 15 259 fragments of 16 KiB is the paper's "239 MB" file.
        assert torrent.size == PAPER_FILE_SIZE
        assert torrent.size_megabytes == pytest.approx(250.0, rel=0.01)

    def test_from_size_rounds_to_fragments(self):
        torrent = TorrentMeta.from_size(1_000_000)
        assert torrent.num_fragments == round(1_000_000 / FRAGMENT_SIZE)
        assert torrent.size == torrent.num_fragments * FRAGMENT_SIZE

    def test_from_size_minimum_one_fragment(self):
        assert TorrentMeta.from_size(1.0).num_fragments == 1

    def test_scaled_keeps_fragment_size(self):
        torrent = TorrentMeta.scaled(500)
        assert torrent.num_fragments == 500
        assert torrent.fragment_size == FRAGMENT_SIZE

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            TorrentMeta(num_fragments=0)
        with pytest.raises(ValueError):
            TorrentMeta(num_fragments=10, fragment_size=0)
        with pytest.raises(ValueError):
            TorrentMeta.from_size(0)

    def test_paper_constants_consistent(self):
        assert PAPER_FILE_SIZE == PAPER_FRAGMENT_COUNT * FRAGMENT_SIZE
