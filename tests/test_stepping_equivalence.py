"""Fixed-dt vs event-stepped control loop: exact equivalence suite.

The event-stepped swarm loop (``SwarmConfig.stepping="event"``) must be a
pure scheduling optimisation: on every registered scenario it has to replay
the fixed-dt oracle *bit for bit* — the same fragment-completion event
sequence (every ``(time, downloader, uploader, fragment)`` receipt, in
order), the same per-peer download totals, the same per-host completion
times, and therefore the same pipeline bottleneck matrices.  Any divergence
means a control point was skipped that the oracle acted at (or visited with
different anchored byte state), which is exactly the class of bug the jump
predicates in ``bittorrent/swarm.py`` must never introduce.

The scenarios cover the distinct control regimes: the slot-saturated 2x2
(long inert stretches — the event mode actually jumps), the B-T multi-site
WAN campaign (churny control plane, TCP rate caps), and the oversubscribed
fat-tree from the beyond-paper families.  A fine-``control_dt`` case pins
the high-fidelity regime where the event mode's jumps are largest and its
grid arithmetic is most exposed to float-edge mistakes.
"""

import dataclasses

import numpy as np
import pytest

from repro.bittorrent.swarm import BitTorrentBroadcast
from repro.scenarios import get_scenario
from repro.tomography.pipeline import TomographyPipeline, default_swarm_config

#: Registered scenarios the suite replays, with laptop-scale overrides.
SCENARIOS = {
    "2x2": {},
    "B-T": {"per_site": 4},
    "FATTREE-4x4": {"racks": 3, "hosts_per_rack": 3},
}


def _dataset(name):
    spec = get_scenario(name)
    return spec.build_dataset(**SCENARIOS[name])


def _run_broadcast(ds, config, seed):
    trace = []
    broadcast = BitTorrentBroadcast(ds.topology, config, hosts=ds.hosts)
    result = broadcast.run(rng=np.random.default_rng(seed), trace=trace)
    return result, trace


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_fragment_completion_sequences_identical(name):
    """Both modes produce the identical receipt-event sequence."""
    ds = _dataset(name)
    results = {}
    for stepping in ("fixed", "event"):
        config = default_swarm_config(240, stepping=stepping)
        results[stepping] = _run_broadcast(ds, config, seed=31)
    fixed_result, fixed_trace = results["fixed"]
    event_result, event_trace = results["event"]

    assert event_trace == fixed_trace
    assert event_result.completion_times == fixed_result.completion_times
    assert event_result.duration == fixed_result.duration
    assert np.array_equal(
        event_result.fragments.counts, fixed_result.fragments.counts
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_per_peer_download_totals_identical(name):
    """Per-peer totals (row sums of the directed matrix) match exactly."""
    ds = _dataset(name)
    totals = {}
    for stepping in ("fixed", "event"):
        config = default_swarm_config(180, stepping=stepping)
        result, _ = _run_broadcast(ds, config, seed=77)
        totals[stepping] = {
            host: sum(result.fragments.received_by(host).values())
            for host in result.hosts
        }
    assert totals["event"] == totals["fixed"]


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_pipeline_bottleneck_matrices_identical(name):
    """The full measure→aggregate pipeline yields identical metric matrices
    and identical recovered partitions under both stepping modes."""
    ds = _dataset(name)
    outcomes = {}
    for stepping in ("fixed", "event"):
        pipeline = TomographyPipeline(
            ds.topology,
            hosts=ds.hosts,
            ground_truth=ds.ground_truth,
            config=default_swarm_config(200, stepping=stepping),
            seed=11,
        )
        outcomes[stepping] = pipeline.run(4, track_convergence=False)
    fixed, event = outcomes["fixed"], outcomes["event"]
    assert np.array_equal(event.metric.weights, fixed.metric.weights)
    assert event.metric.labels == fixed.metric.labels
    assert event.partition == fixed.partition or (
        sorted(map(sorted, (map(str, c) for c in event.partition.clusters)))
        == sorted(map(sorted, (map(str, c) for c in fixed.partition.clusters)))
    )
    assert event.modularity == fixed.modularity


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_event_mode_executes_no_more_control_steps(name):
    ds = _dataset(name)
    steps = {}
    for stepping in ("fixed", "event"):
        config = default_swarm_config(240, stepping=stepping)
        result, _ = _run_broadcast(ds, config, seed=31)
        assert result.stepping == stepping
        steps[stepping] = result.control_steps
    assert steps["event"] <= steps["fixed"]


def test_high_fidelity_jumps_stay_exact_and_cut_steps():
    """At fine control_dt (the regime the event core exists for) the jumps
    are large and must still replay the oracle exactly."""
    ds = _dataset("2x2")
    base = default_swarm_config(160)
    fine_dt = base.control_dt / 128
    results = {}
    for stepping in ("fixed", "event"):
        config = dataclasses.replace(base, control_dt=fine_dt, stepping=stepping)
        results[stepping] = _run_broadcast(ds, config, seed=5)
    fixed_result, fixed_trace = results["fixed"]
    event_result, event_trace = results["event"]
    assert event_trace == fixed_trace
    assert event_result.completion_times == fixed_result.completion_times
    assert np.array_equal(
        event_result.fragments.counts, fixed_result.fragments.counts
    )
    # The inert grid points vastly outnumber the true control events here:
    # the whole point of the event-driven core.
    assert event_result.control_steps * 4 <= fixed_result.control_steps


def test_max_sim_time_guard_fires_identically():
    """The did-not-complete guard must trip in both modes on the same config."""
    from repro.bittorrent.torrent import TorrentMeta
    from repro.bittorrent.swarm import SwarmConfig

    ds = _dataset("2x2")
    for stepping in ("fixed", "event"):
        config = SwarmConfig(
            torrent=TorrentMeta.scaled(4000),
            control_dt=0.01,
            rechoke_interval=0.05,
            max_sim_time=0.05,
            stepping=stepping,
        )
        broadcast = BitTorrentBroadcast(ds.topology, config, hosts=ds.hosts)
        with pytest.raises(RuntimeError, match="did not complete"):
            broadcast.run(rng=np.random.default_rng(12))
